//! `lafd` — command-line driver for the local-auth-fd reproduction.
//!
//! ```text
//! lafd keydist  --n 8 [--t 2] [--seed 1] [--scheme tiny|s512|s1024|rsa512]
//! lafd fd       --n 8 [--t 2] [--value "hello"] [--runs 3]
//! lafd run      <protocol> [-n 256] [--t T] [--engine sync|event]
//!               [--latency sync|fixed:D|jitter:E|psync:GST:E]
//!               [--link-latency FROM:TO:MODEL[:ARG]]
//!               [--adversary KIND[:NODES]] [--crash I]
//!               [--drop R:FROM:TO] [--corrupt R:FROM:TO:OFF:MASK]
//!               [--delay R:FROM:TO:BY] [--reorder R:FROM:TO]
//! lafd run      --spec FILE.json   # wire-v1 request (the `lafd serve` format)
//! lafd run      <protocol> --trace out.json [--trace-folded out.folded]
//!               # Chrome trace-event + folded-stack phase traces
//! lafd serve    [--shards 2] [--max-sessions 8] [--stdin] [--listen ADDR]
//!               [--unix PATH] [--clients C] [--metrics PATH]
//!               [--metrics-format json|prometheus]
//! lafd search   <protocol> [--budget N] [--strategy random|greedy] [-n 8]
//!               [--t T] [--seed S] [--latency jitter:2] [--adversary none]
//!               [--threads N] [--json PATH] [--md PATH]
//! lafd vector   --n 5 [--t 1]
//! lafd ba       --n 7 [--t 2] [--crash 1]
//! lafd degrade  --n 7 [--t 2] [--equivocate]   # graded/degradable agreement
//! lafd king     --n 9 [--t 2] [--crash 1]      # Phase-King non-auth baseline
//! lafd rotate   --n 8 [--t 2] [--runs 10]      # key-rotation epochs (3 epochs)
//! lafd tcp      --n 6 [--t 1] [--io-deadline-secs 60]
//! lafd registry [--listen 127.0.0.1:0] [--wait-limit-secs 120]
//! lafd cluster  <protocol> [-n 7] [--t T] [--seed S] [--scheme tiny|...]
//!               [--value V] [--adversary KIND[:NODES]] [--crash I]
//!               [--latency sync|fixed:D|jitter:E|psync:GST:E]
//!               [--io-deadline-secs 60] [--round-wall-us 0]
//!               [--chaos SPEC] [--max-restarts 1] [--registry ADDR]
//!               [--bind HOST]
//!               # one OS process per node over a discovery registry and
//!               # a non-blocking socket mesh; last stdout line is the
//!               # standard report JSON (byte-identical to `lafd run`);
//!               # exit 0 = clean/recovered, 2 = degraded to the crash
//!               # adversary, 1 = failed
//! lafd chaos    <protocol> [-n 4] [--t T] [--seed S] [--max-restarts 1]
//!               [--campaign NAME=SPEC]... [--json PATH]
//!               # seeded fault campaigns over the supervised cluster;
//!               # SPEC: seed=S;kill=N@PHASE[xK|xinf];connect=PCT;
//!               # reset=PCT;accept-delay=PCT:MS;stall=PCT:MS
//! lafd trace    --n 4 [--t 1]     # per-round message flow of one cycle
//! lafd sweep    [--protocols all|chain,nonauth,ba,degrade,ds,king,small]
//!               [--sizes 4,7,10] [--faults auto|0,1,2] [--adversaries none,silent,...]
//!               [--schemes tiny,dsa-tiny,s512] [--seeds 1,2]
//!               [--engines sync,event] [--latencies sync,jitter:1,psync:2:1]
//!               [--link-latency FROM:TO:MODEL[:ARG]] [--search N[:STRATEGY]]
//!               [--remote ADDR] [--threads N] [--json PATH] [--md PATH]
//! lafd bench    [--quick] [--out BENCH_5.json] [--sizes 256,1024,2048,4096]
//!               [--t 1] [--seed 1] [--protocols chain,ds] [--engines sync,event]
//!               [--label PR7] [--cluster-sizes 4,8]   # multi-process cells
//! lafd report   [FILES...] [--md PATH] [--html PATH] [--fresh]
//!               # bench trajectory over committed BENCH_*.json baselines
//! ```
//!
//! Every subcommand that executes a protocol run goes through one request
//! path: flags build a [`SpecBuilder`], the builder validates the shape,
//! and execution happens via [`SpecBuilder::build`] — the same object the
//! `lafd serve` wire format serializes, so a flag invocation and a
//! service request are provably the same run.

use local_auth_fd::core::adversary::AdversarySpec;
use local_auth_fd::core::metrics;
use local_auth_fd::core::report::{parse_bench_doc, BenchCell, BenchDoc, TrendReport};
use local_auth_fd::core::runner::{Cluster, FdRunReport};
use local_auth_fd::core::schedsearch::{run_search_parallel, SearchConfig, Strategy};
use local_auth_fd::core::service::{FdService, MetricsFormat, ServiceConfig};
use local_auth_fd::core::spec::{Protocol, RunSpec, Session, SpecBuilder};
use local_auth_fd::core::sweep::{
    classify, run_sweep_with, AdversaryKind, FaultRule, LocalExecutor, Scenario, ScenarioExecutor,
    SchemeSpec, SearchAxis, SweepMatrix, SweepOutcome,
};
use local_auth_fd::core::wire;
use local_auth_fd::crypto::{SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::fault::LinkFault;
use local_auth_fd::simnet::transport::chaos::{ChaosSpec, COLLATERAL_EXIT};
use local_auth_fd::simnet::{Engine, LatencySpec, LinkLatencySpec, Node, NodeId};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

/// Flags of the classic subcommands that are not part of the run shape
/// (the shape itself lives in the [`SpecBuilder`]).
#[derive(Debug)]
struct Extras {
    value: String,
    runs: usize,
    crash: Option<usize>,
    equivocate: bool,
    io_deadline_secs: u64,
}

/// Parse the classic subcommands' shared flag set into the single request
/// path: a [`SpecBuilder`] (shape) plus the presentation extras. The
/// caller assigns the protocol (it is implied by the subcommand name).
fn parse_common(args: &[String]) -> Result<(SpecBuilder, Extras), String> {
    let mut builder = SpecBuilder::new(Protocol::ChainFd, 7).with_t(2);
    let mut extras = Extras {
        value: "attack at dawn".to_string(),
        runs: 3,
        crash: None,
        equivocate: false,
        io_deadline_secs: 60,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--n" => builder.n = grab()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--t" => builder.t = Some(grab()?.parse().map_err(|e| format!("--t: {e}"))?),
            "--seed" => builder.seed = grab()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scheme" => builder.scheme = grab()?,
            "--value" => extras.value = grab()?,
            "--runs" => extras.runs = grab()?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--crash" => {
                extras.crash = Some(grab()?.parse().map_err(|e| format!("--crash: {e}"))?);
            }
            "--equivocate" => extras.equivocate = true,
            "--io-deadline-secs" => {
                extras.io_deadline_secs = grab()?
                    .parse()
                    .map_err(|e| format!("--io-deadline-secs: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    builder = builder.with_input(extras.value.clone().into_bytes());
    Ok((builder, extras))
}

fn usage() {
    eprintln!(
        "usage: lafd <keydist|fd|run|serve|search|bench|report|cluster|chaos|registry|vector|ba|degrade|king|rotate|tcp|trace|sweep> [--n N] \
         [--t T] [--seed S] [--scheme tiny|s512|s1024|s2048|dsa512|dsa1024|rsa512|rsa1024] \
         [--value V] [--runs K] [--crash I] [--equivocate]\n\
         run: lafd run <chain|nonauth|small|ba|degrade|ds|king> [-n N] [--t T] \
         [--engine sync|event] [--latency sync|fixed:D|jitter:E|psync:GST:E] \
         [--link-latency FROM:TO:MODEL[:ARG]] \
         [--adversary none|silent|crash|tamper|forge|wrongname|equivocate[:NODES]] \
         [--drop R:FROM:TO] [--corrupt R:FROM:TO:OFF:MASK] [--delay R:FROM:TO:BY] \
         [--reorder R:FROM:TO] [--crash I] [--trace OUT.json] [--trace-folded OUT.folded] \
         — or: lafd run --spec FILE.json\n\
         serve: lafd serve [--shards N] [--max-sessions K] [--stdin] [--listen HOST:PORT] \
         [--unix PATH] [--clients C] [--metrics PATH] [--metrics-format json|prometheus]\n\
         search: lafd search <protocol> [--budget N] [--strategy random|greedy] [-n N] \
         [--t T] [--seed S] [--latency jitter:2] [--adversary none|silent|...] \
         [--threads N] [--json PATH] [--md PATH]\n\
         sweep flags: [--protocols all|LIST] [--sizes LIST] [--faults auto|LIST] \
         [--adversaries LIST] [--schemes LIST] [--seeds LIST] [--engines LIST] \
         [--latencies LIST] [--link-latency SPEC] [--search N[:STRATEGY]] \
         [--remote HOST:PORT] [--threads N] [--json PATH] [--md PATH]\n\
         bench: lafd bench [--quick] [--out PATH] [--sizes LIST] [--t T] [--seed S] \
         [--protocols chain,ds] [--engines sync,event] [--label NAME] [--cluster-sizes LIST]\n\
         report: lafd report [FILES...] [--md PATH] [--html PATH] [--fresh] \
         (defaults to BENCH_*.json in the current directory)\n\
         cluster: lafd cluster <chain|nonauth|small|ba|degrade|ds|king> [-n N] [--t T] \
         [--seed S] [--scheme NAME] [--value V] [--adversary KIND[:NODES]] [--crash I] \
         [--latency SPEC] [--io-deadline-secs S] [--round-wall-us U] [--chaos SPEC] \
         [--max-restarts K] [--registry ADDR] [--bind HOST] \
         — spawns a registry plus one worker process per node, restarts crashed \
         workers with incarnation fencing, degrades to the crash adversary past \
         the budget (exit 2)\n\
         chaos: lafd chaos <protocol> [-n N] [--t T] [--seed S] [--max-restarts K] \
         [--campaign NAME=SPEC]... [--json PATH] — seeded fault campaigns; SPEC \
         clauses: seed=S;kill=N@keydist|round:K|teardown[xTIMES|xinf];connect=PCT;\
         reset=PCT;accept-delay=PCT:MS;stall=PCT:MS\n\
         registry: lafd registry [--listen HOST:PORT] [--wait-limit-secs S]"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        // These subcommands have their own flag sets and bypass the
        // common parser.
        "sweep" => return cmd_sweep(rest),
        "run" => return cmd_run(rest),
        "serve" => return cmd_serve(rest),
        "search" => return cmd_search(rest),
        "bench" => return cmd_bench(rest),
        "report" => return cmd_report(rest),
        "registry" => return cmd_registry(rest),
        "cluster" => return cmd_cluster(rest),
        "cluster-worker" => return cmd_cluster_worker(rest),
        "chaos" => return cmd_chaos(rest),
        _ => {}
    }
    let (mut builder, extras) = match parse_common(rest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    // The protocol is implied by the subcommand; every other command uses
    // the chain-FD shape (keydist/vector/tcp/trace/rotate run chain-FD
    // machinery or none at all).
    builder.protocol = match cmd.as_str() {
        "ba" => Protocol::FdToBa,
        "degrade" => Protocol::Degradable,
        "king" => Protocol::PhaseKing,
        _ => Protocol::ChainFd,
    };
    // `--crash I` is sugar for a silent adversary at node I on the
    // commands that script one.
    if matches!(cmd.as_str(), "ba" | "king") {
        if let Some(crash) = extras.crash {
            if crash >= builder.n {
                eprintln!(
                    "error: --crash {crash} is out of range for n = {}",
                    builder.n
                );
                return ExitCode::FAILURE;
            }
            builder = builder.with_adversary(AdversarySpec::scripted_at(
                AdversaryKind::SilentRelay,
                vec![NodeId(crash as u16)],
            ));
        }
    }
    if let Err(e) = builder.validate() {
        eprintln!("error: {e}");
        usage();
        return ExitCode::FAILURE;
    }

    match cmd.as_str() {
        "keydist" => cmd_keydist(&builder),
        "fd" => cmd_fd(&builder, &extras),
        "vector" => cmd_vector(&builder),
        "ba" => cmd_ba(&builder, &extras),
        "degrade" => cmd_degrade(&builder, &extras),
        "king" => cmd_king(&builder, &extras),
        "rotate" => cmd_rotate(&builder, &extras),
        "tcp" => return cmd_tcp(&builder, &extras),
        "trace" => cmd_trace(&builder, &extras),
        other => {
            eprintln!("error: unknown command {other}");
            usage();
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_keydist(builder: &SpecBuilder) {
    let cluster = builder.build_cluster().expect("validated by main");
    let kd = cluster.run_key_distribution();
    println!(
        "key distribution: n = {}, {} messages (3n(n-1) = {}), {} bytes on the wire",
        cluster.n,
        kd.stats.messages_total,
        metrics::keydist_messages(cluster.n),
        kd.stats.bytes_total,
    );
    for (node, anoms) in &kd.anomalies {
        if !anoms.is_empty() {
            println!("  {node} anomalies: {anoms:?}");
        }
    }
    println!(
        "all stores complete: every node accepted {} predicates",
        cluster.n
    );
}

fn cmd_fd(builder: &SpecBuilder, extras: &Extras) {
    let cluster = builder.build_cluster().expect("validated by main");
    let mut session = Session::new(cluster.clone());
    println!(
        "key distribution: {} messages (once)",
        session.keydist().stats.messages_total
    );
    for k in 0..extras.runs {
        let value = format!("{} #{k}", extras.value).into_bytes();
        let run = session.run(&RunSpec::new(Protocol::ChainFd, value.clone()));
        println!(
            "fd run {k}: {} messages, all decided = {}",
            run.stats.messages_total,
            run.all_decided(&value),
        );
    }
    println!(
        "session total: {} messages across {} runs and {} key distribution",
        session.messages_spent(),
        session.runs(),
        session.keydist_runs(),
    );
    println!(
        "baseline per-run cost without authentication: {} messages",
        metrics::non_auth_messages(cluster.n, cluster.t),
    );
}

/// Parse `R:FROM:TO` plus `extra` trailing numeric components.
fn parse_link_spec(spec: &str, extra: usize) -> Result<(u32, NodeId, NodeId, Vec<u64>), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 + extra {
        return Err(format!(
            "fault spec {spec}: expected {} colon-separated fields",
            3 + extra
        ));
    }
    let num = |i: usize, what: &str| -> Result<u64, String> {
        parts[i]
            .parse::<u64>()
            .map_err(|e| format!("fault spec {spec}: {what}: {e}"))
    };
    let node = |i: usize, what: &str| -> Result<NodeId, String> {
        let raw = num(i, what)?;
        u16::try_from(raw)
            .map(NodeId)
            .map_err(|_| format!("fault spec {spec}: {what} {raw} exceeds the node-id range"))
    };
    let raw_round = num(0, "round")?;
    let round = u32::try_from(raw_round)
        .map_err(|_| format!("fault spec {spec}: round {raw_round} exceeds the round range"))?;
    let from = node(1, "from")?;
    let to = node(2, "to")?;
    let rest = (3..parts.len())
        .map(|i| num(i, "parameter"))
        .collect::<Result<Vec<u64>, String>>()?;
    Ok((round, from, to, rest))
}

/// Trace-export destinations of one `lafd run` (presentation flags, not
/// part of the run shape the [`SpecBuilder`] validates).
#[derive(Default)]
struct TraceOuts {
    /// `--trace PATH`: Chrome trace-event JSON.
    chrome: Option<String>,
    /// `--trace-folded PATH`: inferno-compatible folded stacks.
    folded: Option<String>,
}

impl TraceOuts {
    fn requested(&self) -> bool {
        self.chrome.is_some() || self.folded.is_some()
    }
}

/// How `lafd run` was invoked: flags building a request, or a wire-v1
/// request file (`--spec FILE`, the `lafd serve` format).
enum RunInvocation {
    Flags(Box<SpecBuilder>, TraceOuts),
    SpecFile(String),
}

fn parse_run(args: &[String]) -> Result<RunInvocation, String> {
    let Some((proto, rest)) = args.split_first() else {
        return Err(
            "run needs a protocol (chain|nonauth|small|ba|degrade|ds|king) or --spec FILE"
                .to_string(),
        );
    };
    if proto == "--spec" {
        let [path] = rest else {
            return Err("--spec takes exactly one file path and no other flags".to_string());
        };
        return Ok(RunInvocation::SpecFile(path.clone()));
    }
    let mut builder = SpecBuilder::new(Protocol::parse(proto)?, 7)
        .with_input(b"attack at dawn".to_vec())
        .with_default_value(b"default".to_vec());
    let mut crash: Option<usize> = None;
    let mut trace_outs = TraceOuts::default();
    let mut adversary_given = false;
    let mut latency_given = false;
    let mut engine_given = false;
    // Node ids referenced by fault specs, validated against n once the
    // whole flag list (which may set --n later) has been parsed.
    // (SpecBuilder::validate covers link-latency and adversary ranges; the
    // link-fault plan is CLI-only and checked here.)
    let mut fault_nodes: Vec<NodeId> = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "-n" | "--n" => builder.n = grab()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--t" => builder.t = Some(grab()?.parse().map_err(|e| format!("--t: {e}"))?),
            "--seed" => builder.seed = grab()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scheme" => builder.scheme = grab()?,
            "--value" => builder.input = grab()?.into_bytes(),
            "--engine" => {
                builder.engine = Engine::parse(&grab()?)?;
                engine_given = true;
            }
            "--latency" => {
                builder = builder.with_latency(LatencySpec::parse(&grab()?)?);
                latency_given = true;
            }
            "--link-latency" => {
                let link = LinkLatencySpec::parse(&grab()?)?;
                builder.link_latency.push(link);
            }
            "--crash" => crash = Some(grab()?.parse().map_err(|e| format!("--crash: {e}"))?),
            "--trace" => trace_outs.chrome = Some(grab()?),
            "--trace-folded" => trace_outs.folded = Some(grab()?),
            "--adversary" => {
                builder.adversary = AdversarySpec::parse(&grab()?)?;
                adversary_given = true;
            }
            "--drop" => {
                let (r, from, to, _) = parse_link_spec(&grab()?, 0)?;
                fault_nodes.extend([from, to]);
                builder.faults = builder.faults.with(r, from, to, LinkFault::Drop);
            }
            "--corrupt" => {
                let (r, from, to, ps) = parse_link_spec(&grab()?, 2)?;
                fault_nodes.extend([from, to]);
                let fault = LinkFault::Corrupt {
                    offset: usize::try_from(ps[0])
                        .map_err(|_| format!("--corrupt: offset {} too large", ps[0]))?,
                    mask: u8::try_from(ps[1])
                        .map_err(|_| format!("--corrupt: mask {} exceeds a byte", ps[1]))?,
                };
                builder.faults = builder.faults.with(r, from, to, fault);
            }
            "--delay" => {
                let (r, from, to, ps) = parse_link_spec(&grab()?, 1)?;
                fault_nodes.extend([from, to]);
                let rounds = u32::try_from(ps[0])
                    .ok()
                    .filter(|&r| r <= 10_000)
                    .ok_or_else(|| {
                        format!(
                            "--delay: {} rounds is unreasonably large (max 10000)",
                            ps[0]
                        )
                    })?;
                let fault = LinkFault::Delay { rounds };
                builder.faults = builder.faults.with(r, from, to, fault);
            }
            "--reorder" => {
                let (r, from, to, _) = parse_link_spec(&grab()?, 0)?;
                fault_nodes.extend([from, to]);
                builder.faults = builder.faults.with(r, from, to, LinkFault::Reorder);
            }
            other => return Err(format!("unknown run flag {other}")),
        }
    }
    // A latency model implies the event engine; the lockstep engine cannot
    // express one. An *explicit* --engine sync contradicting it is an
    // error, not a silent override. (SpecBuilder::validate would reject
    // the contradiction too; resolving it here keeps the flag UX — the
    // builder itself never auto-upgrades.)
    if latency_given
        && builder.latency != LatencySpec::Synchronous
        && builder.engine == Engine::Sync
    {
        if engine_given {
            return Err(format!(
                "--engine sync cannot express --latency {}; use --engine event",
                builder.latency
            ));
        }
        builder.engine = Engine::Event;
    }
    // Per-link overrides likewise only exist on the event engine.
    if !builder.link_latency.is_empty() && builder.engine == Engine::Sync {
        if engine_given {
            return Err(
                "--engine sync cannot express --link-latency; use --engine event".to_string(),
            );
        }
        builder.engine = Engine::Event;
    }
    if let Some(bad) = fault_nodes.iter().find(|id| id.index() >= builder.n) {
        return Err(format!(
            "fault spec references node {bad} but n = {}",
            builder.n
        ));
    }
    // `--crash I` is sugar for a silent adversary at node I.
    if let Some(crash) = crash {
        if adversary_given {
            return Err("--crash and --adversary cannot be combined".to_string());
        }
        if crash >= builder.n {
            return Err(format!(
                "--crash {crash} is out of range for n = {}",
                builder.n
            ));
        }
        builder.adversary =
            AdversarySpec::scripted_at(AdversaryKind::SilentRelay, vec![NodeId(crash as u16)]);
    }
    builder.validate()?;
    Ok(RunInvocation::Flags(Box::new(builder), trace_outs))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let (builder, trace_outs) = match parse_run(args) {
        Ok(RunInvocation::Flags(builder, outs)) => (*builder, outs),
        Ok(RunInvocation::SpecFile(path)) => return cmd_run_spec_file(&path),
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let t = builder.resolved_t();
    let (cluster, spec) = builder.build().expect("validated by parse_run");

    println!(
        "run {}: n = {}, t = {t}, engine = {}, latency = {}, adversary = {}, \
         {} link override(s), {} link fault(s)",
        builder.protocol,
        builder.n,
        builder.engine,
        builder.latency,
        builder.adversary.name(),
        builder.link_latency.len(),
        builder.faults.len(),
    );

    let mut start = std::time::Instant::now();
    let run = if trace_outs.requested() {
        // The traced path measures keydist/run/report phases itself and
        // exports them; the untraced path keeps the zero-overhead Session.
        let (run, trace) = cluster.run_traced(&spec);
        if let Some(p) = &run.phases {
            if let Some(kd_us) = p.keydist_us {
                println!(
                    "key distribution (setup phase): {} rounds, {kd_us} µs",
                    p.keydist_rounds
                );
            }
            println!(
                "phases ({}): {} rounds traced, verify {} µs, cache {}/{} hit/miss, \
                 peak queue depth {}",
                p.clock.name(),
                p.round_marks.len(),
                p.verify_us,
                p.cache_hits,
                p.cache_misses,
                p.max_queue_depth,
            );
        }
        for (path, rendered, what) in [
            (&trace_outs.chrome, trace.to_chrome_json(), "Chrome trace"),
            (&trace_outs.folded, trace.to_folded(), "folded stacks"),
        ] {
            if let Some(path) = path {
                if let Err(e) = std::fs::write(path, rendered) {
                    eprintln!("error: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("run: {what} written to {path}");
            }
        }
        run
    } else {
        let mut session = Session::new(cluster);
        let kd_start = std::time::Instant::now();
        if builder.protocol.needs_keys() {
            let kd = session.keydist();
            println!(
                "key distribution (setup phase): {} messages (3n(n-1) = {}), {:.2?}",
                kd.stats.messages_total,
                metrics::keydist_messages(builder.n),
                kd_start.elapsed(),
            );
        }
        start = std::time::Instant::now();
        session.run(&spec)
    };
    let elapsed = start.elapsed();

    let network_faulted = !builder.faults.is_empty()
        || builder.latency != LatencySpec::Synchronous
        || !builder.link_latency.is_empty();
    let outcome = classify(&run, network_faulted);
    let clean = builder.adversary.is_honest() && !network_faulted;
    let formula = clean
        .then(|| builder.protocol.expected_messages(builder.n, t))
        .map_or_else(|| "—".to_string(), |m| m.to_string());
    println!(
        "{}: {} messages (formula {formula}), {} bytes, {} comm rounds, {elapsed:.2?}",
        builder.protocol,
        run.stats.messages_total,
        run.stats.bytes_total,
        run.stats.per_round.iter().filter(|&&x| x > 0).count(),
    );
    if builder.n <= 16 {
        for (i, o) in run.outcomes.iter().enumerate() {
            match o {
                Some(o) => println!("  P{i}: {o}"),
                None => println!("  P{i}: (faulty)"),
            }
        }
    } else {
        let outs = run.correct_outcomes();
        let decided = outs.iter().filter(|o| o.decided().is_some()).count();
        let discovered = outs.iter().filter(|o| o.is_discovered()).count();
        println!(
            "  outcomes: {decided} decided, {discovered} discovered, {} pending",
            outs.len() - decided - discovered
        );
    }
    println!("classification: {outcome}");
    if outcome == SweepOutcome::SilentDisagreement {
        eprintln!("error: silent disagreement — the state the paper forbids");
        return ExitCode::FAILURE;
    }
    // A clean run (no faults, no crash, synchronous latency) is held to
    // the paper's failure-free contract: closed-form message count and a
    // unanimous decision on the sender's value.
    if clean {
        let expected = builder.protocol.expected_messages(builder.n, t);
        if run.stats.messages_total != expected {
            eprintln!(
                "error: clean run sent {} messages, formula says {expected}",
                run.stats.messages_total
            );
            return ExitCode::FAILURE;
        }
        if outcome != SweepOutcome::AllDecided || !run.all_decided(&builder.input) {
            eprintln!("error: clean run did not unanimously decide the sender's value");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `lafd run --spec FILE.json`: execute one wire-v1 request (the exact
/// format `lafd serve` accepts) and print the report JSON to stdout.
fn cmd_run_spec_file(path: &str) -> ExitCode {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (builder, id) = match wire::request_from_json(raw.trim()) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = builder.validate() {
        eprintln!("error: {path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(id) = id {
        eprintln!("run --spec: request id {id}");
    }
    let (cluster, spec) = builder.build().expect("validated above");
    let run = cluster.run(&spec);
    println!("{}", run.to_json());
    let network_faulted =
        builder.latency != LatencySpec::Synchronous || !builder.link_latency.is_empty();
    if classify(&run, network_faulted) == SweepOutcome::SilentDisagreement {
        eprintln!("error: silent disagreement — the state the paper forbids");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Configuration of one `lafd serve` invocation.
struct ServeOpts {
    shards: usize,
    max_sessions: usize,
    clients: usize,
    stdin: bool,
    listen: Option<String>,
    unix: Option<String>,
    metrics: Option<String>,
    metrics_format: MetricsFormat,
}

fn parse_serve(args: &[String]) -> Result<ServeOpts, String> {
    let mut opts = ServeOpts {
        shards: 2,
        max_sessions: 8,
        clients: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        stdin: false,
        listen: None,
        unix: None,
        metrics: None,
        metrics_format: MetricsFormat::Json,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--shards" => {
                opts.shards = grab()?.parse().map_err(|e| format!("--shards: {e}"))?;
                if opts.shards == 0 || opts.shards > 256 {
                    return Err("--shards must be in 1..=256".to_string());
                }
            }
            "--max-sessions" => {
                opts.max_sessions = grab()?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?;
                if opts.max_sessions == 0 {
                    return Err("--max-sessions must be at least 1".to_string());
                }
            }
            "--clients" => {
                opts.clients = grab()?.parse().map_err(|e| format!("--clients: {e}"))?;
                if opts.clients == 0 {
                    return Err("--clients must be at least 1".to_string());
                }
            }
            "--stdin" => opts.stdin = true,
            "--listen" => opts.listen = Some(grab()?),
            "--unix" => opts.unix = Some(grab()?),
            "--metrics" => opts.metrics = Some(grab()?),
            "--metrics-format" => opts.metrics_format = MetricsFormat::parse(&grab()?)?,
            other => return Err(format!("unknown serve flag {other}")),
        }
    }
    if opts.listen.is_some() && opts.unix.is_some() {
        return Err("--listen and --unix are mutually exclusive".to_string());
    }
    if opts.stdin && (opts.listen.is_some() || opts.unix.is_some()) {
        return Err("--stdin does not compose with --listen/--unix".to_string());
    }
    Ok(opts)
}

/// Answer one request line: control verbs (`{"op": "metrics"}`,
/// `{"op": "shutdown"}`) are handled here; everything else is a wire-v1
/// `RunSpec` request routed into the service.
fn dispatch_line(
    request: &str,
    service: &FdService,
    stop: &std::sync::atomic::AtomicBool,
) -> String {
    if let Ok(value) = wire::Value::parse(request) {
        if let Some(op) = value.get("op").and_then(wire::Value::as_str) {
            return match op {
                // JSON metrics are compacted onto one line to fit the
                // newline-delimited reply framing; Prometheus text is
                // inherently multi-line and ends with a `# EOF` line so
                // line-framed clients know where the document stops.
                "metrics" => {
                    let format = value
                        .get("format")
                        .and_then(wire::Value::as_str)
                        .map_or(Ok(MetricsFormat::Json), MetricsFormat::parse);
                    match format {
                        Ok(MetricsFormat::Json) => wire::Value::parse(&service.metrics_json())
                            .map_or_else(|e| wire::error_to_json(None, &e), |v| v.to_json()),
                        Ok(MetricsFormat::Prometheus) => service.metrics_prometheus(),
                        Err(e) => wire::error_to_json(None, &e),
                    }
                }
                "shutdown" => {
                    stop.store(true, std::sync::atomic::Ordering::SeqCst);
                    "{\"ok\": true, \"draining\": true}".to_string()
                }
                other => wire::error_to_json(None, &format!("unknown op {other}")),
            };
        }
    }
    service.submit_line(request)
}

/// Serve one accepted connection: newline-delimited requests in, one
/// response line per request out. The stream carries a read timeout so
/// an idle connection notices the shutdown flag.
fn handle_connection<S: Read + Write>(
    stream: S,
    service: &FdService,
    stop: &std::sync::atomic::AtomicBool,
) {
    use std::sync::atomic::Ordering;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let request = line.trim().to_string();
                line.clear();
                if request.is_empty() {
                    continue;
                }
                let response = dispatch_line(&request, service, stop);
                let out = reader.get_mut();
                if out
                    .write_all(response.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    break;
                }
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            // A timed-out read leaves any partial line in the buffer;
            // keep it and poll the shutdown flag.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Accept loop shared by the TCP and Unix listeners: poll a non-blocking
/// accept, hand each connection to a scoped thread, exit when a client
/// sends `{"op": "shutdown"}`.
fn accept_loop<S, A>(mut accept: A, service: &FdService, stop: &std::sync::atomic::AtomicBool)
where
    S: Read + Write + Send,
    A: FnMut() -> Result<Option<S>, String>,
{
    use std::sync::atomic::Ordering;
    std::thread::scope(|scope| loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match accept() {
            Ok(Some(stream)) => {
                scope.spawn(move || handle_connection(stream, service, stop));
            }
            Ok(None) => std::thread::sleep(std::time::Duration::from_millis(25)),
            Err(e) => {
                eprintln!("serve: accept: {e}");
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        }
    });
}

fn serve_tcp(
    service: &FdService,
    addr: &str,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<(), String> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking {addr}: {e}"))?;
    match listener.local_addr() {
        Ok(local) => eprintln!("serve: listening on {local}"),
        Err(_) => eprintln!("serve: listening on {addr}"),
    }
    accept_loop(
        || match listener.accept() {
            Ok((stream, _peer)) => {
                stream
                    .set_nonblocking(false)
                    .and_then(|()| {
                        stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))
                    })
                    .map_err(|e| format!("configuring connection: {e}"))?;
                Ok(Some(stream))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(format!("{e}")),
        },
        service,
        stop,
    );
    Ok(())
}

#[cfg(unix)]
fn serve_unix(
    service: &FdService,
    path: &str,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<(), String> {
    // A stale socket file from a crashed server would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener =
        std::os::unix::net::UnixListener::bind(path).map_err(|e| format!("binding {path}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking {path}: {e}"))?;
    eprintln!("serve: listening on {path}");
    accept_loop(
        || match listener.accept() {
            Ok((stream, _peer)) => {
                stream
                    .set_nonblocking(false)
                    .and_then(|()| {
                        stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))
                    })
                    .map_err(|e| format!("configuring connection: {e}"))?;
                Ok(Some(stream))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(format!("{e}")),
        },
        service,
        stop,
    );
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(not(unix))]
fn serve_unix(
    _service: &FdService,
    _path: &str,
    _stop: &std::sync::atomic::AtomicBool,
) -> Result<(), String> {
    Err("--unix is only available on Unix platforms".to_string())
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let opts = match parse_serve(args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let service = FdService::start(ServiceConfig {
        shards: opts.shards,
        max_sessions: opts.max_sessions,
    });
    let stop = std::sync::atomic::AtomicBool::new(false);
    let served = if let Some(addr) = &opts.listen {
        serve_tcp(&service, addr, &stop)
    } else if let Some(path) = &opts.unix {
        serve_unix(&service, path, &stop)
    } else {
        // Default (and `--stdin`) mode: read the whole batch from stdin,
        // answer on stdout in input order.
        let stdin = std::io::stdin();
        match stdin.lock().lines().collect::<Result<Vec<String>, _>>() {
            Ok(lines) => {
                let lines: Vec<String> =
                    lines.into_iter().filter(|l| !l.trim().is_empty()).collect();
                eprintln!(
                    "serve: {} requests on {} shards, {} clients",
                    lines.len(),
                    opts.shards,
                    opts.clients
                );
                for response in service.submit_batch(&lines, opts.clients) {
                    println!("{response}");
                }
                Ok(())
            }
            Err(e) => Err(format!("reading stdin: {e}")),
        }
    };
    // Drain every in-flight run, then report service-lifetime metrics in
    // the bench-compatible shape (or Prometheus text exposition).
    let metrics = service.shutdown_with(opts.metrics_format);
    let wrote = match &opts.metrics {
        Some(path) => std::fs::write(path, &metrics)
            .map(|()| eprintln!("serve: metrics written to {path}"))
            .map_err(|e| format!("writing {path}: {e}")),
        None => {
            eprintln!("{metrics}");
            Ok(())
        }
    };
    match served.and(wrote) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type SearchArgs = (SearchConfig, usize, Option<String>, Option<String>);

fn parse_search(args: &[String]) -> Result<SearchArgs, String> {
    let Some((proto, rest)) = args.split_first() else {
        return Err("search needs a protocol (chain|nonauth|small|ba|degrade|ds|king)".to_string());
    };
    let mut config = SearchConfig::new(Protocol::parse(proto)?, 8, 2, 1);
    let mut t_given: Option<usize> = None;
    let mut threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut json_path = None;
    let mut md_path = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "-n" | "--n" => config.n = grab()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--t" => t_given = Some(grab()?.parse().map_err(|e| format!("--t: {e}"))?),
            "--seed" => config.seed = grab()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scheme" => config.scheme = SchemeSpec::parse(&grab()?)?,
            "--latency" => config.latency = LatencySpec::parse(&grab()?)?,
            "--adversary" => config.adversary = AdversaryKind::parse(&grab()?)?,
            "--strategy" => config.strategy = Strategy::parse(&grab()?)?,
            "--budget" => {
                config.budget = grab()?.parse().map_err(|e| format!("--budget: {e}"))?;
                if config.budget == 0 || config.budget > 100_000 {
                    return Err("--budget must be in 1..=100000".to_string());
                }
            }
            "--threads" => {
                threads = grab()?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--json" => json_path = Some(grab()?),
            "--md" => md_path = Some(grab()?),
            other => return Err(format!("unknown search flag {other}")),
        }
    }
    if config.n > u16::MAX as usize {
        return Err(format!(
            "--n {} exceeds the node-id range (max {})",
            config.n,
            u16::MAX
        ));
    }
    config.t = t_given
        .unwrap_or_else(|| ((config.n.saturating_sub(1)) / 3).min(config.n.saturating_sub(2)));
    Ok((config, threads, json_path, md_path))
}

fn cmd_search(args: &[String]) -> ExitCode {
    let (config, threads, json_path, md_path) = match parse_search(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "search: {} n = {} t = {} latency = {} strategy = {} budget = {} threads = {}",
        config.protocol,
        config.n,
        config.t,
        config.latency,
        config.strategy,
        config.budget,
        threads
    );
    let start = std::time::Instant::now();
    let report = match run_search_parallel(&config, threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("search: finished in {:?}", start.elapsed());

    print!("{}", report.to_markdown());

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("search: JSON report written to {path}");
    }
    if let Some(path) = md_path {
        if let Err(e) = std::fs::write(&path, report.to_markdown()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("search: markdown report written to {path}");
    }

    if report.silent_found() {
        eprintln!("error: the search found silent disagreement — the state the paper forbids");
        return ExitCode::FAILURE;
    }
    if !report.replay_ok {
        eprintln!("error: the best schedule certificate did not replay identically");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_vector(builder: &SpecBuilder) {
    let cluster = builder.build_cluster().expect("validated by main");
    let kd = cluster.run_key_distribution();
    let values: Vec<Vec<u8>> = (0..cluster.n)
        .map(|i| format!("input-of-P{i}").into_bytes())
        .collect();
    let (report, per_instance) = cluster.run_vector(&kd, &values);
    println!(
        "interactive consistency: n = {}, {} messages (n(n-1) = {})",
        cluster.n,
        report.stats.messages_total,
        cluster.n * (cluster.n - 1),
    );
    for (i, outcomes) in per_instance.iter().enumerate() {
        let decided = outcomes.iter().filter(|o| o.decided().is_some()).count();
        println!("  P{i}: decided {decided}/{} instances", cluster.n);
    }
}

fn cmd_ba(builder: &SpecBuilder, extras: &Extras) {
    // The crash adversary (if any) is already on the builder — main
    // applies the --crash sugar before validation.
    let (cluster, spec) = builder.build().expect("validated by main");
    let run = cluster.run(&spec);
    println!(
        "FD->BA: {} messages{}",
        run.stats.messages_total,
        match extras.crash {
            Some(c) => format!(" (node {c} crashed; fallback engaged)"),
            None => " (failure-free: n-1, the FD cost)".to_string(),
        }
    );
    for (i, o) in run.outcomes.iter().enumerate() {
        match o {
            Some(o) => println!("  P{i}: {o}"),
            None => println!("  P{i}: (faulty)"),
        }
    }
}

fn cmd_degrade(builder: &SpecBuilder, extras: &Extras) {
    use local_auth_fd::core::ba::DgMsg;
    use local_auth_fd::core::chain::ChainMessage;
    use local_auth_fd::simnet::codec::Encode;
    use local_auth_fd::simnet::{Envelope, Outbox};
    use std::any::Any;

    let (cluster, spec) = builder.build().expect("validated by main");
    let cluster = &cluster;
    let value = builder.input.clone();
    let run = if extras.equivocate {
        struct TwoFaced {
            ring: local_auth_fd::core::keys::Keyring,
            scheme: Arc<dyn SignatureScheme>,
            n: usize,
            value: Vec<u8>,
        }
        impl Node for TwoFaced {
            fn id(&self) -> NodeId {
                self.ring.me
            }
            fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
                if round != 0 {
                    return;
                }
                for i in 1..self.n {
                    let v = if i <= self.n / 2 {
                        self.value.clone()
                    } else {
                        b"SABOTAGE".to_vec()
                    };
                    let chain = ChainMessage::originate(
                        self.scheme.as_ref(),
                        &self.ring.sk,
                        self.ring.me,
                        v,
                    )
                    .expect("key well-formed");
                    out.send(NodeId(i as u16), DgMsg { chain }.encode_to_vec());
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        let ring = cluster.keyring(NodeId(0));
        let scheme = Arc::clone(&cluster.scheme);
        let n = cluster.n;
        let v = value.clone();
        let adversary = AdversarySpec::custom(move |id| {
            (id == NodeId(0)).then(|| {
                Box::new(TwoFaced {
                    ring: ring.clone(),
                    scheme: Arc::clone(&scheme),
                    n,
                    value: v.clone(),
                }) as Box<dyn Node>
            })
        });
        cluster.run(&spec.clone().with_adversary(adversary))
    } else {
        cluster.run(&spec)
    };
    let grades = run.grades.clone();
    println!(
        "degradable agreement: {} messages (n(n-1) = {}), 2 comm rounds{}",
        run.stats.messages_total,
        cluster.n * (cluster.n - 1),
        if extras.equivocate {
            " — sender equivocated"
        } else {
            ""
        }
    );
    for (i, o) in run.outcomes.iter().enumerate() {
        match o {
            Some(o) => println!("  P{i}: {o} (grade {:?})", grades[i]),
            None => println!("  P{i}: (faulty)"),
        }
    }
}

fn cmd_king(builder: &SpecBuilder, extras: &Extras) {
    // The n > 4t admissibility bound (and the --crash sugar) were already
    // checked by SpecBuilder::validate in main.
    let (cluster, spec) = builder.build().expect("validated by main");
    let run = cluster.run(&spec);
    println!(
        "phase king (non-authenticated, n > 4t): {} messages, {} comm rounds{}",
        run.stats.messages_total,
        metrics::phase_king_comm_rounds(cluster.t),
        match extras.crash {
            Some(c) => format!(" (node {c} silent)"),
            None => String::new(),
        }
    );
    for (i, o) in run.outcomes.iter().enumerate() {
        match o {
            Some(o) => println!("  P{i}: {o}"),
            None => println!("  P{i}: (faulty)"),
        }
    }
}

fn cmd_rotate(builder: &SpecBuilder, extras: &Extras) {
    use local_auth_fd::core::epoch::EpochManager;
    let cluster = builder.build_cluster().expect("validated by main");
    let (n, t) = (cluster.n, cluster.t);
    let mut epochs = EpochManager::new(cluster);
    for e in 0..3u32 {
        let state = epochs.rotate();
        println!(
            "epoch {e}: key distribution {} messages",
            state.keydist.stats.messages_total
        );
        for k in 0..extras.runs {
            let value = format!("epoch {e} run {k}").into_bytes();
            let run = epochs.run_round(value.clone());
            assert!(run.all_decided(&value));
        }
        println!(
            "  + {} chain-FD runs at {} messages each",
            extras.runs,
            n - 1
        );
    }
    let spent = epochs.messages_spent();
    let baseline = metrics::cumulative_non_auth(n, t, 3 * extras.runs);
    println!(
        "total {spent} messages vs non-auth baseline {baseline} — {}",
        if spent < baseline {
            "rotation amortizes (epoch outlives k*)"
        } else {
            "rotation too frequent (epoch below k*)"
        }
    );
}

fn cmd_tcp(builder: &SpecBuilder, extras: &Extras) -> ExitCode {
    use local_auth_fd::core::keys::Keyring;
    use local_auth_fd::core::localauth::{KeyDistNode, KEYDIST_ROUNDS};
    use local_auth_fd::simnet::transport::TcpCluster;
    let cluster = builder.build_cluster().expect("validated by main");
    let n = cluster.n;
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            let ring = Keyring::generate(cluster.scheme.as_ref(), me, cluster.seed);
            Box::new(KeyDistNode::new(
                me,
                n,
                Arc::clone(&cluster.scheme),
                ring,
                cluster.seed,
            )) as Box<dyn Node>
        })
        .collect();
    let start = std::time::Instant::now();
    let report = TcpCluster::new(KEYDIST_ROUNDS)
        .with_io_deadline(std::time::Duration::from_secs(extras.io_deadline_secs))
        .run(nodes);
    if let Err(first) = report.ok() {
        for error in &report.errors {
            eprintln!("error: {error}");
        }
        eprintln!("error: tcp key distribution failed: {first}");
        return ExitCode::FAILURE;
    }
    println!(
        "key distribution over localhost TCP: {} messages, {} bytes, {:?}",
        report.stats.messages_total,
        report.stats.bytes_total,
        start.elapsed(),
    );
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------
// Deployment layer: `lafd registry`, `lafd cluster`, `lafd cluster-worker`
// ---------------------------------------------------------------------

fn cmd_registry(args: &[String]) -> ExitCode {
    use local_auth_fd::core::deploy::Registry;
    let mut listen = "127.0.0.1:0".to_string();
    let mut wait_limit_secs: u64 = 120;
    let mut it = args.iter();
    let parsed = (|| -> Result<(), String> {
        while let Some(flag) = it.next() {
            let mut grab = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--listen" => listen = grab()?,
                "--wait-limit-secs" => {
                    wait_limit_secs = grab()?
                        .parse()
                        .map_err(|e| format!("--wait-limit-secs: {e}"))?;
                }
                other => return Err(format!("unknown registry flag {other}")),
            }
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        eprintln!("error: {e}");
        usage();
        return ExitCode::FAILURE;
    }
    let registry = match Registry::bind(&listen) {
        Ok(r) => r.with_wait_limit(std::time::Duration::from_secs(wait_limit_secs)),
        Err(e) => {
            eprintln!("error: registry bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The orchestrator (and shell scripts) scrape the bound address from
    // this exact line — keep it first and flushed.
    println!("registry listening on {}", registry.local_addr());
    let _ = std::io::stdout().flush();
    match registry.serve() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: registry accept loop: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Flags of `lafd cluster` beyond the run shape.
#[derive(Debug, Clone)]
struct ClusterOpts {
    io_deadline_secs: u64,
    round_wall_us: u64,
    /// Crashes each worker slot may accrue before it is declared dead
    /// (`--max-restarts`, default 1).
    max_restarts: u64,
    /// Deterministic fault campaign injected into every worker
    /// (`--chaos SPEC`).
    chaos: Option<ChaosSpec>,
    /// External registry address (`--registry ADDR`); `None` spawns a
    /// private localhost registry child.
    registry: Option<String>,
    /// Interface workers bind and advertise (`--bind HOST`).
    bind: String,
}

fn parse_cluster(args: &[String]) -> Result<(SpecBuilder, ClusterOpts), String> {
    let Some((proto, rest)) = args.split_first() else {
        return Err(
            "cluster needs a protocol (chain|nonauth|small|ba|degrade|ds|king)".to_string(),
        );
    };
    let mut builder = SpecBuilder::new(Protocol::parse(proto)?, 7)
        .with_input(b"attack at dawn".to_vec())
        .with_default_value(b"default".to_vec());
    let mut opts = ClusterOpts {
        io_deadline_secs: 60,
        round_wall_us: 0,
        max_restarts: 1,
        chaos: None,
        registry: None,
        bind: "127.0.0.1".to_string(),
    };
    let mut round_wall_given = false;
    let mut adversary_given = false;
    let mut crash: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "-n" | "--n" => builder.n = grab()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--t" => builder.t = Some(grab()?.parse().map_err(|e| format!("--t: {e}"))?),
            "--seed" => builder.seed = grab()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scheme" => builder.scheme = grab()?,
            "--value" => builder.input = grab()?.into_bytes(),
            "--latency" => builder = builder.with_latency(LatencySpec::parse(&grab()?)?),
            "--adversary" => {
                builder.adversary = AdversarySpec::parse(&grab()?)?;
                adversary_given = true;
            }
            "--crash" => crash = Some(grab()?.parse().map_err(|e| format!("--crash: {e}"))?),
            "--io-deadline-secs" => {
                opts.io_deadline_secs = grab()?
                    .parse()
                    .map_err(|e| format!("--io-deadline-secs: {e}"))?;
            }
            "--round-wall-us" => {
                opts.round_wall_us = grab()?
                    .parse()
                    .map_err(|e| format!("--round-wall-us: {e}"))?;
                round_wall_given = true;
            }
            "--max-restarts" => {
                opts.max_restarts = grab()?
                    .parse()
                    .map_err(|e| format!("--max-restarts: {e}"))?;
            }
            "--chaos" => opts.chaos = Some(ChaosSpec::parse(&grab()?)?),
            "--registry" => opts.registry = Some(grab()?),
            "--bind" => opts.bind = grab()?,
            other => return Err(format!("unknown cluster flag {other}")),
        }
    }
    if let Some(crash) = crash {
        if adversary_given {
            return Err("--crash and --adversary cannot be combined".to_string());
        }
        if crash >= builder.n {
            return Err(format!(
                "--crash {crash} is out of range for n = {}",
                builder.n
            ));
        }
        builder.adversary =
            AdversarySpec::scripted_at(AdversaryKind::SilentRelay, vec![NodeId(crash as u16)]);
    }
    // A latency model on the cluster is a wall-clock delay shim over the
    // socket mesh. It needs a nonzero round-wall to scale ticks against;
    // default 2ms per round when the user asked for latency but gave none.
    // The shape still validates against the event engine (the lockstep
    // engine cannot express a latency model).
    if builder.latency != LatencySpec::Synchronous {
        builder.engine = Engine::Event;
        if !round_wall_given {
            opts.round_wall_us = 2_000;
        }
    }
    builder.validate()?;
    Ok((builder, opts))
}

/// Resilience counters of one supervised cluster run.
struct Resilience {
    /// Worker generations launched (1 = the first try succeeded).
    generations: u64,
    /// Transport/registry retries summed over the final generation's
    /// worker summaries.
    retries: u64,
    /// Slots declared dead past their restart budget (sorted).
    dead: Vec<usize>,
    /// Whether the run finished under crash-adversary degradation.
    degraded: bool,
}

/// A supervised cluster run that produced a report.
struct Supervised {
    report: FdRunReport,
    totals: local_auth_fd::core::deploy::ClusterTotals,
    resilience: Resilience,
}

/// How one worker process left its generation.
enum ExitKind {
    /// Exited 0.
    Ok,
    /// Crash-style exit (chaos kill, signal, unknown code): charged to the
    /// slot's restart budget.
    Crash,
    /// [`COLLATERAL_EXIT`]: a failure a restart can heal (lost peer,
    /// expired deadline or retry budget, broken registry exchange) — the
    /// generation restarts without blaming the slot.
    Collateral,
    /// Exit 1 or a panic: a genuine bug; restarting would only mask it.
    Bug,
    /// Stopped by the supervisor after the generation was already lost;
    /// not classified.
    Excluded,
}

struct GenExit {
    node: usize,
    kind: ExitKind,
    desc: String,
}

/// Wait for a generation of workers. Returns every worker's exit
/// classification, or an error if the whole-run guard expired. Once a
/// failure is seen the remaining workers get a bounded window to flush
/// their own exits — short when a culprit is already known, a full I/O
/// deadline when only collateral failures arrived (the culprit may still
/// be timing out) — and stragglers past the window are stopped and
/// excluded from classification.
fn wait_generation(
    mut pending: Vec<(usize, std::process::Child)>,
    opts: &ClusterOpts,
) -> Result<Vec<GenExit>, String> {
    use std::time::{Duration, Instant};

    let guard_secs = opts.io_deadline_secs.saturating_mul(4).saturating_add(30);
    let guard = Instant::now() + Duration::from_secs(guard_secs);
    let grace = Duration::from_secs(opts.io_deadline_secs.min(5));
    let drain = Duration::from_secs(opts.io_deadline_secs.saturating_add(5));
    let mut exits: Vec<GenExit> = Vec::new();
    let mut first_failure: Option<Instant> = None;
    let mut culprit_seen = false;
    loop {
        let mut still = Vec::new();
        for (node, mut child) in pending {
            match child.try_wait() {
                Ok(Some(status)) => {
                    let kind = match status.code() {
                        Some(0) => ExitKind::Ok,
                        Some(code) if code == i32::from(COLLATERAL_EXIT) => ExitKind::Collateral,
                        Some(1) | Some(101) => ExitKind::Bug,
                        _ => ExitKind::Crash,
                    };
                    if !matches!(kind, ExitKind::Ok) && first_failure.is_none() {
                        first_failure = Some(Instant::now());
                    }
                    if matches!(kind, ExitKind::Crash | ExitKind::Bug) {
                        culprit_seen = true;
                    }
                    exits.push(GenExit {
                        node,
                        kind,
                        desc: format!("worker {node} exited with {status}"),
                    });
                }
                Ok(None) => still.push((node, child)),
                Err(e) => {
                    culprit_seen = true;
                    if first_failure.is_none() {
                        first_failure = Some(Instant::now());
                    }
                    exits.push(GenExit {
                        node,
                        kind: ExitKind::Crash,
                        desc: format!("worker {node}: wait failed: {e}"),
                    });
                }
            }
        }
        pending = still;
        if pending.is_empty() {
            return Ok(exits);
        }
        let now = Instant::now();
        if now > guard {
            let stuck: Vec<String> = pending.iter().map(|(node, _)| node.to_string()).collect();
            for (_, child) in pending.iter_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
            return Err(format!(
                "cluster run exceeded the {guard_secs}s guard with workers [{}] still running",
                stuck.join(", ")
            ));
        }
        if let Some(first) = first_failure {
            let window = if culprit_seen { grace } else { drain };
            if now.duration_since(first) > window {
                for (node, mut child) in pending {
                    let _ = child.kill();
                    let _ = child.wait();
                    exits.push(GenExit {
                        node,
                        kind: ExitKind::Excluded,
                        desc: format!("worker {node} stopped by the supervisor (generation lost)"),
                    });
                }
                return Ok(exits);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Run a cluster under supervision: launch worker generations, restart
/// crashed slots up to `--max-restarts` (each generation re-registers
/// under an incremented incarnation the registry fences stale sessions
/// by), and degrade to crash-adversary semantics when a slot dies past
/// its budget — exactly the in-process `silent:I` scripted adversary, so
/// the degraded report stays byte-comparable. A failure beyond `t` dead
/// slots, a genuine worker bug, or an exhausted restart/flake budget
/// aborts loudly.
fn run_supervised(builder: &SpecBuilder, opts: &ClusterOpts) -> Result<Supervised, String> {
    use local_auth_fd::core::deploy;
    use std::collections::HashMap;
    use std::process::{Child, Command, Stdio};
    use std::time::Duration;

    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the lafd binary to re-exec: {e}"))?;
    // With an external registry several clusters may share one namespace;
    // the pid suffix keeps this invocation's run id unique there.
    let run_id = match &opts.registry {
        Some(_) => format!(
            "cluster-{}-n{}-seed{}-p{}",
            builder.protocol.name(),
            builder.n,
            builder.seed,
            std::process::id()
        ),
        None => format!(
            "cluster-{}-n{}-seed{}",
            builder.protocol.name(),
            builder.n,
            builder.seed
        ),
    };

    // The registry is a child process too (unless `--registry` points at
    // an external one), so `lafd cluster` exercises the exact discovery
    // path a hand-rolled deployment would use. It lives across worker
    // generations; incarnation fencing keeps its state consistent.
    let mut registry_child: Option<Child> = None;
    let addr = match &opts.registry {
        Some(addr) => addr.clone(),
        None => {
            let mut child = Command::new(&exe)
                .args([
                    "registry",
                    "--listen",
                    "127.0.0.1:0",
                    "--wait-limit-secs",
                    &opts.io_deadline_secs.to_string(),
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| format!("spawn registry: {e}"))?;
            let mut line = String::new();
            let announced = {
                let stdout = child.stdout.take().expect("stdout was piped");
                let mut reader = BufReader::new(stdout);
                match reader.read_line(&mut line) {
                    Ok(_) => match line.trim().rsplit(' ').next() {
                        Some(addr) if line.starts_with("registry listening on ") => {
                            Some(addr.to_string())
                        }
                        _ => None,
                    },
                    Err(_) => None,
                }
            };
            match announced {
                Some(addr) => {
                    registry_child = Some(child);
                    addr
                }
                None => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(format!(
                        "registry did not announce an address (got {line:?})"
                    ));
                }
            }
        }
    };

    let t = builder.resolved_t();
    let mut crash_count: HashMap<usize, u64> = HashMap::new();
    let mut dead: Vec<usize> = Vec::new();
    let mut degraded = false;
    let mut flake_budget: u32 = 3;
    // Backstop against pathological chaos specs: every slot may burn its
    // full restart budget, plus the degraded generation and the flakes.
    let max_generations = (builder.n as u64)
        .saturating_mul(opts.max_restarts.saturating_add(1))
        .saturating_add(4);
    let mut generation: u64 = 0;

    let outcome = loop {
        if generation >= max_generations {
            break Err(format!(
                "restart budget exhausted after {generation} generations"
            ));
        }
        // The generation's effective shape: once slots are declared dead
        // the run degrades to the scripted crash adversary at exactly
        // those slots (parity with `--crash`), and their kill rules are
        // stripped so the stand-in automata survive.
        let mut effective = builder.clone();
        let mut chaos = opts.chaos.clone();
        if degraded {
            effective = effective.with_adversary(AdversarySpec::scripted_at(
                AdversaryKind::SilentRelay,
                dead.iter().map(|&node| NodeId(node as u16)).collect(),
            ));
            chaos = chaos.map(|spec| spec.without_kills_for(&dead));
        }
        let request = wire::request_to_json(&effective, None)?;
        let chaos_arg = chaos.as_ref().map(ChaosSpec::to_spec_string);
        let mut pending: Vec<(usize, Child)> = Vec::new();
        let mut spawn_error: Option<String> = None;
        for node in 0..builder.n {
            let mut cmd = Command::new(&exe);
            cmd.args([
                "cluster-worker",
                "--registry",
                &addr,
                "--run",
                &run_id,
                "--node",
                &node.to_string(),
                "--incarnation",
                &generation.to_string(),
                "--bind",
                &opts.bind,
                "--io-deadline-secs",
                &opts.io_deadline_secs.to_string(),
                "--round-wall-us",
                &opts.round_wall_us.to_string(),
                "--request",
                &request,
            ]);
            if let Some(spec) = &chaos_arg {
                cmd.args(["--chaos", spec]);
            }
            match cmd
                .stdout(Stdio::inherit())
                .stderr(Stdio::inherit())
                .spawn()
            {
                Ok(child) => pending.push((node, child)),
                Err(e) => {
                    spawn_error = Some(format!("spawn worker {node}: {e}"));
                    break;
                }
            }
        }
        if let Some(e) = spawn_error {
            for (_, child) in pending.iter_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
            break Err(e);
        }
        println!(
            "cluster {}: registry at {addr}, {} worker processes launched (generation {generation})",
            builder.protocol.name(),
            builder.n
        );

        let exits = match wait_generation(pending, opts) {
            Ok(exits) => exits,
            Err(e) => break Err(e),
        };
        let mut culprits: Vec<usize> = Vec::new();
        let mut bug: Option<String> = None;
        let mut clean = true;
        for exit in &exits {
            if !matches!(exit.kind, ExitKind::Ok) {
                clean = false;
                eprintln!("error: {} (generation {generation})", exit.desc);
            }
            match exit.kind {
                ExitKind::Crash => culprits.push(exit.node),
                ExitKind::Bug => bug = Some(exit.desc.clone()),
                _ => {}
            }
        }
        if clean {
            // Collect the final generation's summaries while the registry
            // is still up (each new generation cleared every older one).
            let collected = deploy::registry_call(
                &addr,
                &wire::RegistryRequest::Collect {
                    run: run_id.clone(),
                },
                Duration::from_secs(opts.io_deadline_secs),
            );
            break match collected {
                Ok(wire::RegistryReply::Summaries { workers }) => Ok(workers),
                Ok(other) => Err(format!("registry returned {other:?} instead of summaries")),
                Err(e) => Err(format!("collect summaries: {e}")),
            };
        }
        if let Some(desc) = bug {
            break Err(format!("{desc} — a genuine failure, not a crash"));
        }
        if culprits.is_empty() {
            // Collateral-only generation: nobody to blame; restart on a
            // small flake budget so transient stalls cannot loop forever.
            if flake_budget == 0 {
                break Err(
                    "collateral failures exhausted the flake budget; the cluster cannot make progress"
                        .to_string(),
                );
            }
            flake_budget -= 1;
            eprintln!(
                "cluster: generation {generation} lost to collateral failures; restarting ({flake_budget} flakes left)"
            );
        } else {
            let mut fatal: Option<String> = None;
            for &node in &culprits {
                if dead.contains(&node) {
                    fatal = Some(format!("worker {node} crashed again after degradation"));
                }
                *crash_count.entry(node).or_insert(0) += 1;
            }
            if let Some(e) = fatal {
                break Err(e);
            }
            let mut newly_dead: Vec<usize> = crash_count
                .iter()
                .filter(|&(node, &count)| count > opts.max_restarts && !dead.contains(node))
                .map(|(&node, _)| node)
                .collect();
            newly_dead.sort_unstable();
            if newly_dead.is_empty() {
                let list: Vec<String> = culprits.iter().map(|n| n.to_string()).collect();
                eprintln!(
                    "cluster: restarting after crash of worker(s) [{}] (generation {} next)",
                    list.join(", "),
                    generation + 1
                );
            } else {
                dead.extend(newly_dead);
                dead.sort_unstable();
                let list: Vec<String> = dead.iter().map(|n| n.to_string()).collect();
                if dead.len() > t {
                    break Err(format!(
                        "workers [{}] are dead past their restart budget — {} crash failures exceed t = {t}",
                        list.join(", "),
                        dead.len()
                    ));
                }
                if !builder.adversary.is_honest() {
                    break Err(format!(
                        "workers [{}] are dead past their restart budget and the run already scripts an adversary; cannot degrade",
                        list.join(", ")
                    ));
                }
                degraded = true;
                eprintln!(
                    "cluster: degrading to crash-adversary semantics — nodes [{}] presumed crashed (silent-relay, parity with --crash)",
                    list.join(", ")
                );
            }
        }
        generation += 1;
    };

    if let Some(child) = registry_child.as_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
    let summaries = outcome?;
    let retries: u64 = summaries.iter().map(|worker| worker.retries).sum();
    let (report, totals) = deploy::assemble_report(builder.protocol, builder.n, &summaries)?;
    Ok(Supervised {
        report,
        totals,
        resilience: Resilience {
            generations: generation + 1,
            retries,
            dead,
            degraded,
        },
    })
}

fn cmd_cluster(args: &[String]) -> ExitCode {
    let (builder, opts) = match parse_cluster(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let supervised = match run_supervised(&builder, &opts) {
        Ok(supervised) => supervised,
        Err(e) => {
            eprintln!("error: lafd cluster aborted: {e}");
            return ExitCode::FAILURE;
        }
    };
    let totals = &supervised.totals;
    let report = &supervised.report;
    let res = &supervised.resilience;
    println!(
        "key distribution: {} messages, {} bytes, {} rounds, {} anomalies",
        totals.kd_messages, totals.kd_bytes, totals.kd_rounds, totals.kd_anomalies
    );
    println!(
        "{}: {} messages, {} bytes, {} rounds",
        builder.protocol.name(),
        report.stats.messages_total,
        report.stats.bytes_total,
        report.stats.rounds
    );
    let dead: Vec<String> = res.dead.iter().map(|n| n.to_string()).collect();
    println!(
        "resilience: generations={} retries={} dead=[{}] degraded={}",
        res.generations,
        res.retries,
        dead.join(", "),
        res.degraded
    );
    // The machine-readable result is the last stdout line, so scripts (and
    // the cross-validation tests) can compare it byte-for-byte with the
    // in-process engines' `FdRunReport::to_json`.
    println!("{}", report.to_json());
    if res.degraded {
        // Loud grade: the run finished, but only by presuming crashed
        // workers — scripts must be able to tell this apart from a clean
        // recovery.
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// The outcome a chaos spec should produce under a given fault budget:
/// slots whose kill rules outlive the restart budget stay down, so up to
/// `t` of them degrade the run and more than `t` must fail it.
fn chaos_expected(spec: &ChaosSpec, t: usize, max_restarts: u64) -> &'static str {
    let mut persistent: Vec<usize> = spec
        .kills
        .iter()
        .filter(|kill| kill.times > max_restarts)
        .map(|kill| kill.node)
        .collect();
    persistent.sort_unstable();
    persistent.dedup();
    if persistent.len() > t {
        "failed"
    } else if !persistent.is_empty() {
        "degraded"
    } else {
        "recovered"
    }
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// `lafd chaos`: sweep seeded fault campaigns over the supervised cluster
/// and emit a robustness report. Each campaign is classified recovered /
/// degraded / failed, checked against the outcome its spec predicts, and
/// (where a report was produced) compared byte-for-byte against the
/// matching in-process reference run. Exit 0 iff every campaign behaved.
fn cmd_chaos(args: &[String]) -> ExitCode {
    let mut campaigns: Vec<(String, String)> = Vec::new();
    let mut json_out: Option<String> = None;
    let mut cluster_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    let parsed = (|| -> Result<(), String> {
        while let Some(flag) = it.next() {
            let mut grab = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--campaign" => {
                    let value = grab()?;
                    let (name, spec) = value
                        .split_once('=')
                        .ok_or_else(|| format!("--campaign {value:?}: expected NAME=SPEC"))?;
                    campaigns.push((name.to_string(), spec.to_string()));
                }
                "--json" => json_out = Some(grab()?),
                other => cluster_args.push(other.to_string()),
            }
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        eprintln!("error: {e}");
        usage();
        return ExitCode::FAILURE;
    }
    let (builder, opts) = match parse_cluster(&cluster_args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    if opts.chaos.is_some() {
        eprintln!("error: lafd chaos takes --campaign NAME=SPEC, not --chaos");
        return ExitCode::FAILURE;
    }
    let t = builder.resolved_t();
    let seed = builder.seed;
    if campaigns.is_empty() {
        // The default matrix: pure network noise (must recover in place),
        // a transient kill (must recover via restart), a slot that never
        // comes back (must degrade if the budget allows), and more dead
        // slots than t (must fail loudly).
        campaigns.push((
            "noise".to_string(),
            format!("seed={seed};connect=25;reset=15;accept-delay=30:2;stall=30:2"),
        ));
        if t >= 1 {
            campaigns.push((
                "kill-one-transient".to_string(),
                format!("seed={seed};kill=1@round:1;connect=10"),
            ));
            campaigns.push((
                "kill-one-dead".to_string(),
                format!("seed={seed};kill=1@round:1xinf"),
            ));
            let beyond: Vec<String> = (0..=t)
                .map(|node| format!("kill={node}@round:1xinf"))
                .collect();
            campaigns.push((
                "kill-beyond-t".to_string(),
                format!("seed={seed};{}", beyond.join(";")),
            ));
        }
    }
    // The fault-free reference every recovered campaign must reproduce
    // byte-for-byte.
    let reference = match builder.clone().build() {
        Ok((cluster, spec)) => cluster.run(&spec).to_json(),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rows: Vec<String> = Vec::new();
    let mut all_ok = true;
    for (name, spec_text) in &campaigns {
        let spec = match ChaosSpec::parse(spec_text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: campaign {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let expected = chaos_expected(&spec, t, opts.max_restarts);
        let mut campaign_opts = opts.clone();
        campaign_opts.chaos = Some(spec);
        println!("chaos campaign {name}: spec {spec_text}");
        let result = run_supervised(&builder, &campaign_opts);
        let (outcome, generations, retries, dead, matches) = match &result {
            Ok(supervised) => {
                let res = &supervised.resilience;
                let outcome = if res.degraded {
                    "degraded"
                } else {
                    "recovered"
                };
                // A degraded run must match the in-process run scripted
                // with the same crash set — the degradation contract.
                let expected_report = if res.degraded {
                    let degraded_builder =
                        builder.clone().with_adversary(AdversarySpec::scripted_at(
                            AdversaryKind::SilentRelay,
                            res.dead.iter().map(|&node| NodeId(node as u16)).collect(),
                        ));
                    match degraded_builder.build() {
                        Ok((cluster, spec)) => cluster.run(&spec).to_json(),
                        Err(e) => {
                            eprintln!("error: campaign {name}: degraded reference: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    reference.clone()
                };
                (
                    outcome,
                    res.generations,
                    res.retries,
                    res.dead.clone(),
                    supervised.report.to_json() == expected_report,
                )
            }
            Err(e) => {
                eprintln!("error: campaign {name}: {e}");
                ("failed", 0, 0, Vec::new(), true)
            }
        };
        let ok = outcome == expected && matches;
        all_ok &= ok;
        let dead_list: Vec<String> = dead.iter().map(|n| n.to_string()).collect();
        println!(
            "chaos campaign {name}: {outcome} (expected {expected}) generations={generations} retries={retries} dead=[{}] report-match={matches}",
            dead_list.join(", ")
        );
        rows.push(format!(
            "{{\"name\":\"{}\",\"spec\":\"{}\",\"expected\":\"{expected}\",\"outcome\":\"{outcome}\",\"generations\":{generations},\"retries\":{retries},\"dead\":[{}],\"report_match\":{matches},\"ok\":{ok}}}",
            json_escape(name),
            json_escape(spec_text),
            dead_list.join(",")
        ));
    }
    let doc = format!(
        "{{\"schema\":\"lafd-chaos-report-v1\",\"protocol\":\"{}\",\"n\":{},\"t\":{t},\"max_restarts\":{},\"campaigns\":[{}],\"ok\":{all_ok}}}",
        builder.protocol.name(),
        builder.n,
        opts.max_restarts,
        rows.join(",")
    );
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("error: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Machine-readable robustness matrix as the last stdout line.
    println!("{doc}");
    if all_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: at least one chaos campaign diverged from its expected outcome");
        ExitCode::FAILURE
    }
}

fn cmd_cluster_worker(args: &[String]) -> ExitCode {
    use local_auth_fd::core::deploy;
    let mut registry: Option<String> = None;
    let mut run: Option<String> = None;
    let mut node: Option<usize> = None;
    let mut request: Option<String> = None;
    let mut io_deadline_secs: u64 = 60;
    let mut round_wall_us: u64 = 0;
    let mut incarnation: u64 = 0;
    let mut bind = "127.0.0.1".to_string();
    let mut chaos: Option<ChaosSpec> = None;
    let mut it = args.iter();
    let parsed = (|| -> Result<(), String> {
        while let Some(flag) = it.next() {
            let mut grab = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--registry" => registry = Some(grab()?),
                "--run" => run = Some(grab()?),
                "--node" => node = Some(grab()?.parse().map_err(|e| format!("--node: {e}"))?),
                "--request" => request = Some(grab()?),
                "--io-deadline-secs" => {
                    io_deadline_secs = grab()?
                        .parse()
                        .map_err(|e| format!("--io-deadline-secs: {e}"))?;
                }
                "--round-wall-us" => {
                    round_wall_us = grab()?
                        .parse()
                        .map_err(|e| format!("--round-wall-us: {e}"))?;
                }
                "--incarnation" => {
                    incarnation = grab()?.parse().map_err(|e| format!("--incarnation: {e}"))?;
                }
                "--bind" => bind = grab()?,
                "--chaos" => chaos = Some(ChaosSpec::parse(&grab()?)?),
                other => return Err(format!("unknown cluster-worker flag {other}")),
            }
        }
        Ok(())
    })();
    let (registry, run, node, request) = match (parsed, registry, run, node, request) {
        (Ok(()), Some(registry), Some(run), Some(node), Some(request)) => {
            (registry, run, node, request)
        }
        (Err(e), ..) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        _ => {
            eprintln!("error: cluster-worker needs --registry, --run, --node, and --request");
            return ExitCode::FAILURE;
        }
    };
    // Test hook: the CI cluster-smoke job and the integration tests kill
    // one worker before it registers, to prove a vanished process surfaces
    // as a loud orchestrator failure rather than a hang.
    if std::env::var("LAFD_CLUSTER_KILL_NODE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .is_some_and(|victim| victim == node)
    {
        eprintln!("worker {node}: exiting early (LAFD_CLUSTER_KILL_NODE test hook)");
        std::process::exit(43);
    }
    let builder = match wire::request_from_json(&request) {
        Ok((builder, _id)) => builder,
        Err(e) => {
            eprintln!("error: cluster worker {node}: bad --request: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = deploy::WorkerConfig {
        registry,
        run,
        node,
        io_deadline: std::time::Duration::from_secs(io_deadline_secs),
        round_wall: std::time::Duration::from_micros(round_wall_us),
        incarnation,
        bind,
        retry: Default::default(),
        chaos,
    };
    match deploy::run_worker(&cfg, &builder) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("error: cluster worker {node}: {failure}");
            // The exit code is the supervisor's classification channel:
            // chaos kills are charged to the slot's restart budget,
            // collateral failures restart the generation without blame,
            // and genuine bugs abort the run.
            std::process::exit(failure.exit_code());
        }
    }
}

fn cmd_trace(builder: &SpecBuilder, extras: &Extras) {
    use local_auth_fd::core::fd::{ChainFdNode, ChainFdParams};
    use local_auth_fd::core::keys::Keyring;
    use local_auth_fd::core::localauth::{KeyDistNode, KEYDIST_ROUNDS};
    use local_auth_fd::simnet::SyncNetwork;

    let cluster = builder.build_cluster().expect("validated by main");
    let n = cluster.n;
    println!("message flow, key distribution (n = {n}):");
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            let ring = Keyring::generate(cluster.scheme.as_ref(), me, cluster.seed);
            Box::new(KeyDistNode::new(
                me,
                n,
                Arc::clone(&cluster.scheme),
                ring,
                cluster.seed,
            )) as Box<dyn Node>
        })
        .collect();
    let mut net = SyncNetwork::new(nodes);
    net.enable_trace(10_000);
    net.run_until_done(KEYDIST_ROUNDS);
    print_trace(net.trace().expect("tracing enabled"));
    let stores: Vec<_> = net
        .into_nodes()
        .into_iter()
        .map(|b| {
            b.into_any()
                .downcast::<KeyDistNode>()
                .expect("KeyDistNode")
                .into_parts()
                .0
        })
        .collect();

    println!(
        "\nmessage flow, one chain FD run (value = {:?}):",
        extras.value
    );
    let params = ChainFdParams::new(n, cluster.t);
    let rounds = params.rounds();
    let fd_nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            Box::new(ChainFdNode::new(
                me,
                params.clone(),
                Arc::clone(&cluster.scheme),
                stores[i].clone(),
                Keyring::generate(cluster.scheme.as_ref(), me, cluster.seed),
                (i == 0).then(|| extras.value.clone().into_bytes()),
            )) as Box<dyn Node>
        })
        .collect();
    let mut net = SyncNetwork::new(fd_nodes);
    net.enable_trace(10_000);
    net.run_until_done(rounds);
    print_trace(net.trace().expect("tracing enabled"));
}

/// Parse a comma-separated list with an element parser.
fn parse_list<T>(
    raw: &str,
    what: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, String> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim()))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("--{what} needs at least one entry"));
    }
    Ok(items)
}

/// Parsed `lafd sweep` flags: the matrix, worker threads, JSON/markdown
/// output paths, and the optional remote service address.
struct SweepArgs {
    matrix: SweepMatrix,
    threads: usize,
    json_path: Option<String>,
    md_path: Option<String>,
    remote: Option<String>,
}

fn parse_sweep_matrix(args: &[String]) -> Result<SweepArgs, String> {
    let mut matrix = SweepMatrix::default_matrix();
    let mut threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut json_path = None;
    let mut md_path = None;
    let mut remote = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--protocols" => {
                let raw = grab()?;
                matrix.protocols = if raw == "all" {
                    Protocol::ALL.to_vec()
                } else {
                    parse_list(&raw, "protocols", Protocol::parse)?
                };
            }
            "--sizes" => {
                matrix.sizes = parse_list(&grab()?, "sizes", |s| {
                    let n: usize = s.parse().map_err(|e| format!("--sizes: {e}"))?;
                    if n < 2 {
                        return Err(format!("--sizes: need n >= 2 (got {n})"));
                    }
                    if n > u16::MAX as usize {
                        return Err(format!("--sizes: {n} exceeds the node-id range"));
                    }
                    Ok(n)
                })?;
            }
            "--faults" => {
                let raw = grab()?;
                matrix.fault_rule = if raw == "auto" {
                    FaultRule::Classic
                } else {
                    FaultRule::Explicit(parse_list(&raw, "faults", |s| {
                        s.parse::<usize>().map_err(|e| format!("--faults: {e}"))
                    })?)
                };
            }
            "--adversaries" => {
                matrix.adversaries = parse_list(&grab()?, "adversaries", AdversaryKind::parse)?;
            }
            "--schemes" => matrix.schemes = parse_list(&grab()?, "schemes", SchemeSpec::parse)?,
            "--seeds" => {
                matrix.seeds = parse_list(&grab()?, "seeds", |s| {
                    s.parse::<u64>().map_err(|e| format!("--seeds: {e}"))
                })?;
            }
            "--engines" => matrix.engines = parse_list(&grab()?, "engines", Engine::parse)?,
            "--latencies" => {
                matrix.latencies = parse_list(&grab()?, "latencies", LatencySpec::parse)?;
            }
            "--link-latency" => {
                matrix.link_latency.push(LinkLatencySpec::parse(&grab()?)?);
            }
            "--search" => {
                let raw = grab()?;
                let (budget_raw, strategy) = match raw.split_once(':') {
                    Some((b, s)) => (b.to_string(), Strategy::parse(s)?),
                    None => (raw.clone(), Strategy::Random),
                };
                let budget: usize = budget_raw
                    .parse()
                    .map_err(|e| format!("--search: budget: {e}"))?;
                if budget == 0 || budget > 10_000 {
                    return Err("--search budget must be in 1..=10000".to_string());
                }
                matrix.search = Some(SearchAxis { budget, strategy });
            }
            "--threads" => {
                threads = grab()?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--json" => json_path = Some(grab()?),
            "--md" => md_path = Some(grab()?),
            "--remote" => remote = Some(grab()?),
            other => return Err(format!("unknown sweep flag {other}")),
        }
    }
    // The schedule search mutates adversarial delivery orders in-process;
    // the wire protocol has no way to ship a search axis to a service.
    if remote.is_some() && matrix.search.is_some() {
        return Err(
            "--remote does not compose with --search (the search runs locally)".to_string(),
        );
    }
    // Link overrides must reference nodes that exist in every swept size,
    // and both link overrides and the search axis need the event engine.
    let max_link_id = matrix
        .link_latency
        .iter()
        .flat_map(|l| [l.from.index(), l.to.index()])
        .max();
    if let (Some(max_id), Some(&min_n)) = (max_link_id, matrix.sizes.iter().min()) {
        if max_id >= min_n {
            return Err(format!(
                "--link-latency references node {max_id} but the smallest swept size is {min_n}"
            ));
        }
    }
    if (!matrix.link_latency.is_empty() || matrix.search.is_some())
        && !matrix.engines.contains(&Engine::Event)
    {
        return Err(
            "--link-latency / --search need the event engine (add --engines event)".to_string(),
        );
    }
    // The search explores the base latency envelope; per-link overrides
    // change the delivery times it would have to attack. Rather than
    // silently skipping every row, reject the combination.
    if matrix.search.is_some() && !matrix.link_latency.is_empty() {
        return Err("--search does not compose with --link-latency yet".to_string());
    }
    if matrix.search.is_some() && !matrix.latencies.iter().any(|l| l.has_schedule_freedom()) {
        return Err(
            "--search needs a latency with schedule freedom (e.g. --latencies jitter:1)"
                .to_string(),
        );
    }
    Ok(SweepArgs {
        matrix,
        threads,
        json_path,
        md_path,
        remote,
    })
}

/// A [`ScenarioExecutor`] that ships each sweep scenario to a running
/// `lafd serve` instance as a wire-format request and decodes the
/// response report. One TCP connection per scenario keeps the executor
/// trivially `Sync`; the service amortizes keydist across scenarios that
/// share a session key, so the connection cost is the cheap part.
struct RemoteExecutor {
    addr: String,
}

impl RemoteExecutor {
    fn call(&self, request: &str) -> Result<wire::WireResponse, String> {
        let mut stream = std::net::TcpStream::connect(&self.addr)
            .map_err(|e| format!("connecting to {}: {e}", self.addr))?;
        stream
            .write_all(request.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| format!("sending request to {}: {e}", self.addr))?;
        let mut reply = String::new();
        BufReader::new(&stream)
            .read_line(&mut reply)
            .map_err(|e| format!("reading response from {}: {e}", self.addr))?;
        if reply.trim().is_empty() {
            return Err(format!("service at {} closed without replying", self.addr));
        }
        wire::response_from_json(reply.trim())
    }
}

impl ScenarioExecutor for RemoteExecutor {
    fn execute(
        &self,
        scenario: &Scenario,
        engine: Engine,
        link_latency: &[LinkLatencySpec],
    ) -> Result<(Option<usize>, FdRunReport), String> {
        let builder = SpecBuilder::new(scenario.protocol, scenario.n)
            .with_t(scenario.t)
            .with_seed(scenario.seed)
            .with_scheme(scenario.scheme.name())
            .with_engine(engine)
            .with_latency(scenario.latency)
            .with_link_latency(if engine == Engine::Event {
                link_latency.to_vec()
            } else {
                Vec::new()
            })
            .with_input(scenario.value())
            .with_default_value(b"sweep-default".to_vec())
            .with_adversary(AdversarySpec::scripted(scenario.adversary));
        let request = wire::request_to_json(&builder, None)?;
        let response = self.call(&request)?;
        let report = response.report?;
        Ok((response.keydist_messages, report))
    }
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let sweep = match parse_sweep_matrix(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let SweepArgs {
        matrix,
        threads,
        json_path,
        md_path,
        remote,
    } = sweep;
    let scenarios = matrix.scenarios().len();
    if scenarios == 0 {
        eprintln!("error: the matrix expands to zero admissible scenarios");
        return ExitCode::FAILURE;
    }
    match &remote {
        Some(addr) => eprintln!("sweep: {scenarios} scenarios on {threads} clients -> {addr}"),
        None => eprintln!("sweep: {scenarios} scenarios on {threads} threads"),
    }
    let start = std::time::Instant::now();
    let result = match &remote {
        Some(addr) => run_sweep_with(&matrix, threads, &RemoteExecutor { addr: addr.clone() }),
        None => run_sweep_with(&matrix, threads, &LocalExecutor),
    };
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();

    print!("{}", report.to_markdown());
    eprintln!("sweep: finished in {elapsed:?}");

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("sweep: JSON report written to {path}");
    }
    if let Some(path) = md_path {
        if let Err(e) = std::fs::write(&path, report.to_markdown()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("sweep: markdown report written to {path}");
    }

    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "sweep: {} of {} scenarios FAILED their checks",
            report.failures().len(),
            scenarios
        );
        ExitCode::FAILURE
    }
}

/// Configuration of one `lafd bench` invocation.
struct BenchOpts {
    sizes: Vec<usize>,
    t: usize,
    seed: u64,
    protocols: Vec<Protocol>,
    engines: Vec<Engine>,
    quick: bool,
    out: String,
    label: Option<String>,
    /// `--cluster-sizes LIST`: also measure chain FD end-to-end through
    /// `lafd cluster` (one OS process per node over the registry and the
    /// non-blocking socket mesh) at these sizes, recorded as
    /// `engine: "cluster"` cells.
    cluster_sizes: Vec<usize>,
}

fn parse_bench(args: &[String]) -> Result<BenchOpts, String> {
    let mut opts = BenchOpts {
        sizes: vec![256, 1024, 2048, 4096],
        t: 1,
        seed: 1,
        protocols: vec![Protocol::ChainFd, Protocol::DolevStrong],
        engines: vec![Engine::Sync, Engine::Event],
        quick: false,
        out: "BENCH_5.json".to_string(),
        label: None,
        cluster_sizes: Vec::new(),
    };
    let mut sizes_given = false;
    let mut out_given = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                opts.out = grab()?;
                out_given = true;
            }
            "--t" => opts.t = grab()?.parse().map_err(|e| format!("--t: {e}"))?,
            "--seed" => opts.seed = grab()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--sizes" => {
                opts.sizes = parse_list(&grab()?, "sizes", |s| {
                    let n: usize = s.parse().map_err(|e| format!("--sizes: {e}"))?;
                    if n > u16::MAX as usize {
                        return Err(format!("--sizes: {n} exceeds the node-id range"));
                    }
                    Ok(n)
                })?;
                sizes_given = true;
            }
            "--protocols" => {
                opts.protocols = parse_list(&grab()?, "protocols", Protocol::parse)?;
            }
            "--engines" => opts.engines = parse_list(&grab()?, "engines", Engine::parse)?,
            "--label" => opts.label = Some(grab()?),
            "--cluster-sizes" => {
                opts.cluster_sizes = parse_list(&grab()?, "cluster-sizes", |s| {
                    let n: usize = s.parse().map_err(|e| format!("--cluster-sizes: {e}"))?;
                    if n > 64 {
                        return Err(format!(
                            "--cluster-sizes: {n} processes is unreasonable for one host"
                        ));
                    }
                    Ok(n)
                })?;
            }
            other => return Err(format!("unknown bench flag {other}")),
        }
    }
    if opts.quick && !sizes_given {
        opts.sizes = vec![64, 256];
    }
    // A quick run must not silently replace the committed full-matrix
    // baseline; it gets its own default output file.
    if opts.quick && !out_given {
        opts.out = "bench-quick.json".to_string();
    }
    for &n in opts.sizes.iter().chain(&opts.cluster_sizes) {
        if opts.t + 2 > n {
            return Err(format!("bench size {n} needs t + 2 <= n (t = {})", opts.t));
        }
        for &p in &opts.protocols {
            if !p.admissible(n, opts.t) {
                return Err(format!(
                    "protocol {p} inadmissible at n = {n}, t = {}",
                    opts.t
                ));
            }
        }
    }
    Ok(opts)
}

/// The `lafd bench` matrix: `{protocol} × {n} × {engine}` protocol runs on
/// trusted-dealer stores (the setup phase is excluded so the numbers
/// isolate the message/verification hot path), with wall time, message and
/// byte counts, and the distinct key-store allocation count recorded as
/// machine-readable JSON (the committed `BENCH_5.json` baseline).
fn cmd_bench(args: &[String]) -> ExitCode {
    let opts = match parse_bench(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    // Process warm-up (allocator, page cache, lazy statics) so the first
    // measured cell is not systematically inflated.
    {
        let warm = Cluster::new(64, 1, Arc::new(SchnorrScheme::test_tiny()), opts.seed);
        let kd = warm.dealer_keydist();
        let mut session = Session::with_keydist(warm, kd);
        let _ = session.run(&RunSpec::new(Protocol::ChainFd, b"warm-up".to_vec()));
    }
    let mut results = Vec::new();
    for &protocol in &opts.protocols {
        for &n in &opts.sizes {
            for &engine in &opts.engines {
                let cluster =
                    Cluster::new(n, opts.t, Arc::new(SchnorrScheme::test_tiny()), opts.seed)
                        .with_engine(engine);
                // Dealer stores: one shared predicate table, zero setup
                // messages — the run isolates the protocol hot path.
                let kd = cluster.dealer_keydist();
                let key_allocs = kd
                    .predicates
                    .as_ref()
                    .map_or(0, |table| table.distinct_allocations());
                let mut session = Session::with_keydist(cluster, kd);
                let spec = RunSpec::new(protocol, b"bench-value".to_vec())
                    .with_default_value(b"bench-default".to_vec());
                let start = std::time::Instant::now();
                let run = session.run(&spec);
                let wall = start.elapsed();
                if !run.all_decided(b"bench-value") {
                    eprintln!(
                        "error: bench cell {protocol}/n={n}/{engine} did not decide the value"
                    );
                    return ExitCode::FAILURE;
                }
                let expected = protocol.expected_messages(n, opts.t);
                if run.stats.messages_total != expected {
                    eprintln!(
                        "error: bench cell {protocol}/n={n}/{engine} sent {} messages, formula says {expected}",
                        run.stats.messages_total
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "bench: {protocol:>12} n={n:<5} {engine:<5} {:>10.2?}  {} msgs, {} bytes, {key_allocs} key allocs",
                    wall, run.stats.messages_total, run.stats.bytes_total
                );
                results.push(format!(
                    "    {{\"protocol\": \"{}\", \"n\": {}, \"t\": {}, \"engine\": \"{}\", \
                     \"scheme\": \"tiny\", \"wall_us\": {}, \"messages\": {}, \"bytes\": {}, \
                     \"comm_rounds\": {}, \"key_allocs\": {}}}",
                    protocol.name(),
                    n,
                    opts.t,
                    engine.name(),
                    wall.as_micros(),
                    run.stats.messages_total,
                    run.stats.bytes_total,
                    run.stats.per_round.iter().filter(|&&x| x > 0).count(),
                    key_allocs,
                ));
            }
        }
    }
    // The live-socket column: chain FD through `lafd cluster`, i.e. one
    // OS process per node over the discovery registry and the
    // non-blocking mesh. Wall time is deliberately end-to-end (process
    // spawn, registry barrier, socket keydist, protocol, aggregation) —
    // that is the number a deployment pays; the message/byte/round
    // counters come from the aggregated report and stay byte-identical
    // to the in-process engines.
    for &n in &opts.cluster_sizes {
        let exe = std::env::current_exe().expect("current_exe");
        let start = std::time::Instant::now();
        let out = std::process::Command::new(&exe)
            .args([
                "cluster",
                "chain",
                "-n",
                &n.to_string(),
                "--seed",
                &opts.seed.to_string(),
                "--t",
                &opts.t.to_string(),
                "--value",
                "bench-value",
            ])
            .output();
        let wall = start.elapsed();
        let out = match out {
            Ok(out) if out.status.success() => out,
            Ok(out) => {
                eprintln!(
                    "error: bench cell chain_fd/n={n}/cluster failed: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: bench cell chain_fd/n={n}/cluster: spawn: {e}");
                return ExitCode::FAILURE;
            }
        };
        let stdout = String::from_utf8_lossy(&out.stdout);
        let report = match wire::report_from_json(stdout.lines().last().unwrap_or_default()) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: bench cell chain_fd/n={n}/cluster: bad report: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !report.all_decided(b"bench-value") {
            eprintln!("error: bench cell chain_fd/n={n}/cluster did not decide the value");
            return ExitCode::FAILURE;
        }
        let expected = Protocol::ChainFd.expected_messages(n, opts.t);
        if report.stats.messages_total != expected {
            eprintln!(
                "error: bench cell chain_fd/n={n}/cluster sent {} messages, formula says {expected}",
                report.stats.messages_total
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench: {:>12} n={n:<5} {:<5} {:>10.2?}  {} msgs, {} bytes (end-to-end, {} processes)",
            "chain_fd",
            "cluster",
            wall,
            report.stats.messages_total,
            report.stats.bytes_total,
            n + 1,
        );
        results.push(format!(
            "    {{\"protocol\": \"chain_fd\", \"n\": {}, \"t\": {}, \"engine\": \"cluster\", \
             \"scheme\": \"tiny\", \"wall_us\": {}, \"messages\": {}, \"bytes\": {}, \
             \"comm_rounds\": {}, \"key_allocs\": {}}}",
            n,
            opts.t,
            wall.as_micros(),
            report.stats.messages_total,
            report.stats.bytes_total,
            report.stats.per_round.iter().filter(|&&x| x > 0).count(),
            n,
        ));
    }
    let label = opts
        .label
        .as_ref()
        .map(|l| format!("  \"label\": \"{l}\",\n"))
        .unwrap_or_default();
    let json = format!(
        "{{\n  \"schema\": \"lafd-bench-v1\",\n{label}  \"git_rev\": \"{}\",\n  \
         \"quick\": {},\n  \"seed\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        git_short_rev(),
        opts.quick,
        opts.seed,
        results.join(",\n")
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("error: writing {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    eprintln!("bench: {} cells written to {}", results.len(), opts.out);
    ExitCode::SUCCESS
}

/// The short git revision of the working tree, or `"unknown"` when git is
/// unavailable (e.g. running from an unpacked tarball).
fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Parsed `lafd report` flags: explicit baseline files (default: scan the
/// current directory for `BENCH_*.json`), output paths, and whether to
/// append a fresh in-process measurement column.
struct ReportOpts {
    files: Vec<String>,
    md_path: Option<String>,
    html_path: Option<String>,
    fresh: bool,
}

fn parse_report(args: &[String]) -> Result<ReportOpts, String> {
    let mut opts = ReportOpts {
        files: Vec::new(),
        md_path: None,
        html_path: None,
        fresh: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {arg} needs a value"))
        };
        match arg.as_str() {
            "--md" => opts.md_path = Some(grab()?),
            "--html" => opts.html_path = Some(grab()?),
            "--fresh" => opts.fresh = true,
            flag if flag.starts_with("--") => return Err(format!("unknown report flag {flag}")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() {
        let dir = std::fs::read_dir(".").map_err(|e| format!("scanning current dir: {e}"))?;
        for entry in dir.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                opts.files.push(name);
            }
        }
        opts.files.sort();
        if opts.files.is_empty() && !opts.fresh {
            return Err(
                "no BENCH_*.json baselines in the current directory (pass files or --fresh)"
                    .to_string(),
            );
        }
    }
    Ok(opts)
}

/// Measure a fresh quick-bench column in process: one clean run per
/// `{chain,ds} × {64,256} × {sync,event}` cell on dealer stores, the same
/// hot path `lafd bench --quick` isolates.
fn fresh_bench_cells() -> Vec<BenchCell> {
    let mut cells = Vec::new();
    for protocol in [Protocol::ChainFd, Protocol::DolevStrong] {
        for n in [64usize, 256] {
            for engine in [Engine::Sync, Engine::Event] {
                let cluster =
                    Cluster::new(n, 1, Arc::new(SchnorrScheme::test_tiny()), 1).with_engine(engine);
                let kd = cluster.dealer_keydist();
                let mut session = Session::with_keydist(cluster, kd);
                let start = std::time::Instant::now();
                let run = session.run(&RunSpec::new(protocol, b"bench-value".to_vec()));
                cells.push(BenchCell {
                    protocol: protocol.name().to_string(),
                    n: n as u64,
                    engine: engine.name().to_string(),
                    wall_us: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
                    messages: run.stats.messages_total as u64,
                    bytes: run.stats.bytes_total as u64,
                });
            }
        }
    }
    cells
}

/// `lafd report`: render the bench trajectory over committed
/// `BENCH_*.json` baselines (markdown to stdout; `--md`/`--html` files on
/// request), optionally appending a fresh in-process column.
fn cmd_report(args: &[String]) -> ExitCode {
    let opts = match parse_report(args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let mut docs = Vec::new();
    for path in &opts.files {
        let raw = match std::fs::read_to_string(path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let stem = std::path::Path::new(path)
            .file_stem()
            .map_or_else(|| path.clone(), |s| s.to_string_lossy().to_string());
        match parse_bench_doc(&stem, &raw) {
            Ok(doc) => docs.push(doc),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.fresh {
        eprintln!("report: measuring a fresh quick-bench column");
        docs.push(BenchDoc::from_cells(
            "fresh".to_string(),
            Some(git_short_rev()),
            fresh_bench_cells(),
        ));
    }
    let report = TrendReport::new(docs);
    eprintln!(
        "report: {} baseline column(s), {} cell delta(s)",
        report.docs().len(),
        report.delta_count()
    );
    print!("{}", report.to_markdown());
    if let Some(path) = &opts.md_path {
        if let Err(e) = std::fs::write(path, report.to_markdown()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report: markdown written to {path}");
    }
    if let Some(path) = &opts.html_path {
        if let Err(e) = std::fs::write(path, report.to_html()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report: HTML written to {path}");
    }
    ExitCode::SUCCESS
}

fn print_trace(trace: &local_auth_fd::simnet::Trace) {
    let mut round = u32::MAX;
    for ev in trace.events() {
        if ev.round != round {
            round = ev.round;
            println!("  round {round}:");
        }
        let kind = match ev.tag {
            Some(0x01) => "announce",
            Some(0x02) => "challenge",
            Some(0x03) => "response",
            Some(0x10) => "chain",
            _ => "msg",
        };
        println!("    {} -> {}  {:<9} ({} B)", ev.from, ev.to, kind, ev.len);
    }
}
