//! `lafd` — command-line driver for the local-auth-fd reproduction.
//!
//! ```text
//! lafd keydist  --n 8 [--t 2] [--seed 1] [--scheme tiny|s512|s1024|rsa512]
//! lafd fd       --n 8 [--t 2] [--value "hello"] [--runs 3]
//! lafd run      <protocol> [-n 256] [--t T] [--engine sync|event]
//!               [--latency sync|fixed:D|jitter:E|psync:GST:E]
//!               [--link-latency FROM:TO:MODEL[:ARG]]
//!               [--adversary KIND[:NODES]] [--crash I]
//!               [--drop R:FROM:TO] [--corrupt R:FROM:TO:OFF:MASK]
//!               [--delay R:FROM:TO:BY] [--reorder R:FROM:TO]
//! lafd search   <protocol> [--budget N] [--strategy random|greedy] [-n 8]
//!               [--t T] [--seed S] [--latency jitter:2] [--adversary none]
//!               [--threads N] [--json PATH] [--md PATH]
//! lafd vector   --n 5 [--t 1]
//! lafd ba       --n 7 [--t 2] [--crash 1]
//! lafd degrade  --n 7 [--t 2] [--equivocate]   # graded/degradable agreement
//! lafd king     --n 9 [--t 2] [--crash 1]      # Phase-King non-auth baseline
//! lafd rotate   --n 8 [--t 2] [--runs 10]      # key-rotation epochs (3 epochs)
//! lafd tcp      --n 6 [--t 1]
//! lafd trace    --n 4 [--t 1]     # per-round message flow of one cycle
//! lafd sweep    [--protocols all|chain,nonauth,ba,degrade,ds,king,small]
//!               [--sizes 4,7,10] [--faults auto|0,1,2] [--adversaries none,silent,...]
//!               [--schemes tiny,dsa-tiny,s512] [--seeds 1,2]
//!               [--engines sync,event] [--latencies sync,jitter:1,psync:2:1]
//!               [--link-latency FROM:TO:MODEL[:ARG]] [--search N[:STRATEGY]]
//!               [--threads N] [--json PATH] [--md PATH]
//! lafd bench    [--quick] [--out BENCH_5.json] [--sizes 256,1024,2048,4096]
//!               [--t 1] [--seed 1] [--protocols chain,ds] [--engines sync,event]
//! ```

use local_auth_fd::core::adversary::AdversarySpec;
use local_auth_fd::core::metrics;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::schedsearch::{run_search_parallel, SearchConfig, Strategy};
use local_auth_fd::core::spec::{Protocol, RunSpec, Session};
use local_auth_fd::core::sweep::{
    classify, run_sweep, AdversaryKind, FaultRule, SchemeSpec, SearchAxis, SweepMatrix,
    SweepOutcome,
};
use local_auth_fd::crypto::{DsaScheme, RsaScheme, SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::fault::{FaultPlan, LinkFault};
use local_auth_fd::simnet::{Engine, LatencySpec, LinkLatencySpec, Node, NodeId};
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Debug)]
struct Opts {
    n: usize,
    t: usize,
    seed: u64,
    scheme: String,
    value: String,
    runs: usize,
    crash: Option<usize>,
    equivocate: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            n: 7,
            t: 2,
            seed: 1,
            scheme: "tiny".to_string(),
            value: "attack at dawn".to_string(),
            runs: 3,
            crash: None,
            equivocate: false,
        }
    }
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--n" => opts.n = grab()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--t" => opts.t = grab()?.parse().map_err(|e| format!("--t: {e}"))?,
            "--seed" => opts.seed = grab()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scheme" => opts.scheme = grab()?,
            "--value" => opts.value = grab()?,
            "--runs" => opts.runs = grab()?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--crash" => opts.crash = Some(grab()?.parse().map_err(|e| format!("--crash: {e}"))?),
            "--equivocate" => opts.equivocate = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.t + 2 > opts.n {
        return Err(format!("need t + 2 <= n (got n={}, t={})", opts.n, opts.t));
    }
    Ok(opts)
}

fn scheme_by_name(name: &str) -> Result<Arc<dyn SignatureScheme>, String> {
    Ok(match name {
        "tiny" => Arc::new(SchnorrScheme::test_tiny()),
        "s512" => Arc::new(SchnorrScheme::s512()),
        "s1024" => Arc::new(SchnorrScheme::s1024()),
        "s2048" => Arc::new(SchnorrScheme::s2048()),
        "dsa512" => Arc::new(DsaScheme::s512()),
        "dsa1024" => Arc::new(DsaScheme::s1024()),
        "rsa512" => Arc::new(RsaScheme::new(512)),
        "rsa1024" => Arc::new(RsaScheme::new(1024)),
        other => {
            return Err(format!(
                "unknown scheme {other} (tiny|s512|s1024|s2048|dsa512|dsa1024|rsa512|rsa1024)"
            ))
        }
    })
}

fn usage() {
    eprintln!(
        "usage: lafd <keydist|fd|run|search|bench|vector|ba|degrade|king|rotate|tcp|trace|sweep> [--n N] \
         [--t T] [--seed S] [--scheme tiny|s512|s1024|s2048|dsa512|dsa1024|rsa512|rsa1024] \
         [--value V] [--runs K] [--crash I] [--equivocate]\n\
         run: lafd run <chain|nonauth|small|ba|degrade|ds|king> [-n N] [--t T] \
         [--engine sync|event] [--latency sync|fixed:D|jitter:E|psync:GST:E] \
         [--link-latency FROM:TO:MODEL[:ARG]] \
         [--adversary none|silent|crash|tamper|forge|wrongname|equivocate[:NODES]] \
         [--drop R:FROM:TO] [--corrupt R:FROM:TO:OFF:MASK] [--delay R:FROM:TO:BY] \
         [--reorder R:FROM:TO] [--crash I]\n\
         search: lafd search <protocol> [--budget N] [--strategy random|greedy] [-n N] \
         [--t T] [--seed S] [--latency jitter:2] [--adversary none|silent|...] \
         [--threads N] [--json PATH] [--md PATH]\n\
         sweep flags: [--protocols all|LIST] [--sizes LIST] [--faults auto|LIST] \
         [--adversaries LIST] [--schemes LIST] [--seeds LIST] [--engines LIST] \
         [--latencies LIST] [--link-latency SPEC] [--search N[:STRATEGY]] \
         [--threads N] [--json PATH] [--md PATH]\n\
         bench: lafd bench [--quick] [--out PATH] [--sizes LIST] [--t T] [--seed S] \
         [--protocols chain,ds] [--engines sync,event]"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        return ExitCode::FAILURE;
    };
    if cmd == "sweep" {
        // The sweep subcommand has its own flag set (a matrix, not one
        // shape), so it bypasses the common parser.
        return cmd_sweep(rest);
    }
    if cmd == "run" {
        // So does `run` (engine/latency/fault flags).
        return cmd_run(rest);
    }
    if cmd == "search" {
        // And `search` (budget/strategy flags).
        return cmd_search(rest);
    }
    if cmd == "bench" {
        // And `bench` (size/output flags).
        return cmd_bench(rest);
    }
    let opts = match parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let scheme = match scheme_by_name(&opts.scheme) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = Cluster::new(opts.n, opts.t, scheme, opts.seed);

    match cmd.as_str() {
        "keydist" => cmd_keydist(&cluster),
        "fd" => cmd_fd(&cluster, &opts),
        "vector" => cmd_vector(&cluster),
        "ba" => cmd_ba(&cluster, &opts),
        "degrade" => cmd_degrade(&cluster, &opts),
        "king" => cmd_king(&cluster, &opts),
        "rotate" => cmd_rotate(cluster.clone(), &opts),
        "tcp" => cmd_tcp(&cluster, &opts),
        "trace" => cmd_trace(&cluster, &opts),
        other => {
            eprintln!("error: unknown command {other}");
            usage();
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_keydist(cluster: &Cluster) {
    let kd = cluster.run_key_distribution();
    println!(
        "key distribution: n = {}, {} messages (3n(n-1) = {}), {} bytes on the wire",
        cluster.n,
        kd.stats.messages_total,
        metrics::keydist_messages(cluster.n),
        kd.stats.bytes_total,
    );
    for (node, anoms) in &kd.anomalies {
        if !anoms.is_empty() {
            println!("  {node} anomalies: {anoms:?}");
        }
    }
    println!(
        "all stores complete: every node accepted {} predicates",
        cluster.n
    );
}

fn cmd_fd(cluster: &Cluster, opts: &Opts) {
    let mut session = Session::new(cluster.clone());
    println!(
        "key distribution: {} messages (once)",
        session.keydist().stats.messages_total
    );
    for k in 0..opts.runs {
        let value = format!("{} #{k}", opts.value).into_bytes();
        let run = session.run(&RunSpec::new(Protocol::ChainFd, value.clone()));
        println!(
            "fd run {k}: {} messages, all decided = {}",
            run.stats.messages_total,
            run.all_decided(&value),
        );
    }
    println!(
        "session total: {} messages across {} runs and {} key distribution",
        session.messages_spent(),
        session.runs(),
        session.keydist_runs(),
    );
    println!(
        "baseline per-run cost without authentication: {} messages",
        metrics::non_auth_messages(cluster.n, cluster.t),
    );
}

/// Parse `R:FROM:TO` plus `extra` trailing numeric components.
fn parse_link_spec(spec: &str, extra: usize) -> Result<(u32, NodeId, NodeId, Vec<u64>), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 + extra {
        return Err(format!(
            "fault spec {spec}: expected {} colon-separated fields",
            3 + extra
        ));
    }
    let num = |i: usize, what: &str| -> Result<u64, String> {
        parts[i]
            .parse::<u64>()
            .map_err(|e| format!("fault spec {spec}: {what}: {e}"))
    };
    let node = |i: usize, what: &str| -> Result<NodeId, String> {
        let raw = num(i, what)?;
        u16::try_from(raw)
            .map(NodeId)
            .map_err(|_| format!("fault spec {spec}: {what} {raw} exceeds the node-id range"))
    };
    let raw_round = num(0, "round")?;
    let round = u32::try_from(raw_round)
        .map_err(|_| format!("fault spec {spec}: round {raw_round} exceeds the round range"))?;
    let from = node(1, "from")?;
    let to = node(2, "to")?;
    let rest = (3..parts.len())
        .map(|i| num(i, "parameter"))
        .collect::<Result<Vec<u64>, String>>()?;
    Ok((round, from, to, rest))
}

struct RunOpts {
    protocol: Protocol,
    n: usize,
    t: Option<usize>,
    seed: u64,
    scheme: String,
    value: String,
    engine: Engine,
    latency: LatencySpec,
    link_latency: Vec<LinkLatencySpec>,
    faults: FaultPlan,
    adversary: AdversarySpec,
}

fn parse_run(args: &[String]) -> Result<RunOpts, String> {
    let Some((proto, rest)) = args.split_first() else {
        return Err("run needs a protocol (chain|nonauth|small|ba|degrade|ds|king)".to_string());
    };
    let mut opts = RunOpts {
        protocol: Protocol::parse(proto)?,
        n: 7,
        t: None,
        seed: 1,
        scheme: "tiny".to_string(),
        value: "attack at dawn".to_string(),
        engine: Engine::Sync,
        latency: LatencySpec::Synchronous,
        link_latency: Vec::new(),
        faults: FaultPlan::new(),
        adversary: AdversarySpec::Honest,
    };
    let mut crash: Option<usize> = None;
    let mut adversary_given = false;
    let mut latency_given = false;
    let mut engine_given = false;
    // Node ids referenced by fault specs, validated against n once the
    // whole flag list (which may set --n later) has been parsed.
    let mut fault_nodes: Vec<NodeId> = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "-n" | "--n" => opts.n = grab()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--t" => opts.t = Some(grab()?.parse().map_err(|e| format!("--t: {e}"))?),
            "--seed" => opts.seed = grab()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scheme" => opts.scheme = grab()?,
            "--value" => opts.value = grab()?,
            "--engine" => {
                opts.engine = Engine::parse(&grab()?)?;
                engine_given = true;
            }
            "--latency" => {
                opts.latency = LatencySpec::parse(&grab()?)?;
                latency_given = true;
            }
            "--link-latency" => {
                let link = LinkLatencySpec::parse(&grab()?)?;
                fault_nodes.extend([link.from, link.to]);
                opts.link_latency.push(link);
            }
            "--crash" => crash = Some(grab()?.parse().map_err(|e| format!("--crash: {e}"))?),
            "--adversary" => {
                opts.adversary = AdversarySpec::parse(&grab()?)?;
                adversary_given = true;
            }
            "--drop" => {
                let (r, from, to, _) = parse_link_spec(&grab()?, 0)?;
                fault_nodes.extend([from, to]);
                opts.faults = opts.faults.with(r, from, to, LinkFault::Drop);
            }
            "--corrupt" => {
                let (r, from, to, ps) = parse_link_spec(&grab()?, 2)?;
                fault_nodes.extend([from, to]);
                let fault = LinkFault::Corrupt {
                    offset: usize::try_from(ps[0])
                        .map_err(|_| format!("--corrupt: offset {} too large", ps[0]))?,
                    mask: u8::try_from(ps[1])
                        .map_err(|_| format!("--corrupt: mask {} exceeds a byte", ps[1]))?,
                };
                opts.faults = opts.faults.with(r, from, to, fault);
            }
            "--delay" => {
                let (r, from, to, ps) = parse_link_spec(&grab()?, 1)?;
                fault_nodes.extend([from, to]);
                let rounds = u32::try_from(ps[0])
                    .ok()
                    .filter(|&r| r <= 10_000)
                    .ok_or_else(|| {
                        format!(
                            "--delay: {} rounds is unreasonably large (max 10000)",
                            ps[0]
                        )
                    })?;
                let fault = LinkFault::Delay { rounds };
                opts.faults = opts.faults.with(r, from, to, fault);
            }
            "--reorder" => {
                let (r, from, to, _) = parse_link_spec(&grab()?, 0)?;
                fault_nodes.extend([from, to]);
                opts.faults = opts.faults.with(r, from, to, LinkFault::Reorder);
            }
            other => return Err(format!("unknown run flag {other}")),
        }
    }
    // A latency model implies the event engine; the lockstep engine cannot
    // express one. An *explicit* --engine sync contradicting it is an
    // error, not a silent override.
    if latency_given && opts.latency != LatencySpec::Synchronous && opts.engine == Engine::Sync {
        if engine_given {
            return Err(format!(
                "--engine sync cannot express --latency {}; use --engine event",
                opts.latency
            ));
        }
        opts.engine = Engine::Event;
    }
    // Per-link overrides likewise only exist on the event engine.
    if !opts.link_latency.is_empty() && opts.engine == Engine::Sync {
        if engine_given {
            return Err(
                "--engine sync cannot express --link-latency; use --engine event".to_string(),
            );
        }
        opts.engine = Engine::Event;
    }
    if opts.n > u16::MAX as usize {
        return Err(format!(
            "--n {} exceeds the node-id range (max {})",
            opts.n,
            u16::MAX
        ));
    }
    if let Some(bad) = fault_nodes.iter().find(|id| id.index() >= opts.n) {
        return Err(format!(
            "fault or link-latency spec references node {bad} but n = {}",
            opts.n
        ));
    }
    // `--crash I` is sugar for a silent adversary at node I.
    if let Some(crash) = crash {
        if adversary_given {
            return Err("--crash and --adversary cannot be combined".to_string());
        }
        if crash >= opts.n {
            return Err(format!(
                "--crash {crash} is out of range for n = {}",
                opts.n
            ));
        }
        opts.adversary =
            AdversarySpec::scripted_at(AdversaryKind::SilentRelay, vec![NodeId(crash as u16)]);
    }
    if let Some(bad) = opts
        .adversary
        .corrupt_set()
        .iter()
        .find(|id| id.index() >= opts.n)
    {
        return Err(format!(
            "--adversary references node {bad} but n = {}",
            opts.n
        ));
    }
    if !opts.adversary.applies_to(opts.protocol) {
        return Err(format!(
            "adversary {} cannot speak protocol {} (chain-specific misbehaviours need chain FD)",
            opts.adversary.name(),
            opts.protocol
        ));
    }
    let t = opts
        .t
        .unwrap_or_else(|| ((opts.n.saturating_sub(1)) / 3).min(opts.n.saturating_sub(2)));
    if !opts.protocol.admissible(opts.n, t) {
        return Err(format!(
            "protocol {} is not admissible at n={}, t={t}",
            opts.protocol, opts.n
        ));
    }
    opts.t = Some(t);
    Ok(opts)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let opts = match parse_run(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let scheme = match scheme_by_name(&opts.scheme) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t = opts.t.expect("resolved by parse_run");
    let cluster = Cluster::new(opts.n, t, scheme, opts.seed)
        .with_engine(opts.engine)
        .with_latency(opts.latency)
        .with_link_latency(opts.link_latency.clone())
        .with_faults(opts.faults.clone());

    println!(
        "run {}: n = {}, t = {t}, engine = {}, latency = {}, adversary = {}, \
         {} link override(s), {} link fault(s)",
        opts.protocol,
        opts.n,
        opts.engine,
        opts.latency,
        opts.adversary.name(),
        opts.link_latency.len(),
        opts.faults.len(),
    );

    let mut session = Session::new(cluster);
    let kd_start = std::time::Instant::now();
    if opts.protocol.needs_keys() {
        let kd = session.keydist();
        println!(
            "key distribution (setup phase): {} messages (3n(n-1) = {}), {:.2?}",
            kd.stats.messages_total,
            metrics::keydist_messages(opts.n),
            kd_start.elapsed(),
        );
    }
    let start = std::time::Instant::now();
    let value = opts.value.clone().into_bytes();
    let spec = RunSpec::new(opts.protocol, value.clone())
        .with_default_value(b"default".to_vec())
        .with_adversary(opts.adversary.clone());
    let run = session.run(&spec);
    let elapsed = start.elapsed();

    let network_faulted = !opts.faults.is_empty()
        || opts.latency != LatencySpec::Synchronous
        || !opts.link_latency.is_empty();
    let outcome = classify(&run, network_faulted);
    let clean = opts.adversary.is_honest() && !network_faulted;
    let formula = clean
        .then(|| opts.protocol.expected_messages(opts.n, t))
        .map_or_else(|| "—".to_string(), |m| m.to_string());
    println!(
        "{}: {} messages (formula {formula}), {} bytes, {} comm rounds, {elapsed:.2?}",
        opts.protocol,
        run.stats.messages_total,
        run.stats.bytes_total,
        run.stats.per_round.iter().filter(|&&x| x > 0).count(),
    );
    if opts.n <= 16 {
        for (i, o) in run.outcomes.iter().enumerate() {
            match o {
                Some(o) => println!("  P{i}: {o}"),
                None => println!("  P{i}: (faulty)"),
            }
        }
    } else {
        let outs = run.correct_outcomes();
        let decided = outs.iter().filter(|o| o.decided().is_some()).count();
        let discovered = outs.iter().filter(|o| o.is_discovered()).count();
        println!(
            "  outcomes: {decided} decided, {discovered} discovered, {} pending",
            outs.len() - decided - discovered
        );
    }
    println!("classification: {outcome}");
    if outcome == SweepOutcome::SilentDisagreement {
        eprintln!("error: silent disagreement — the state the paper forbids");
        return ExitCode::FAILURE;
    }
    // A clean run (no faults, no crash, synchronous latency) is held to
    // the paper's failure-free contract: closed-form message count and a
    // unanimous decision on the sender's value.
    if clean {
        let expected = opts.protocol.expected_messages(opts.n, t);
        if run.stats.messages_total != expected {
            eprintln!(
                "error: clean run sent {} messages, formula says {expected}",
                run.stats.messages_total
            );
            return ExitCode::FAILURE;
        }
        if outcome != SweepOutcome::AllDecided || !run.all_decided(&value) {
            eprintln!("error: clean run did not unanimously decide the sender's value");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

type SearchArgs = (SearchConfig, usize, Option<String>, Option<String>);

fn parse_search(args: &[String]) -> Result<SearchArgs, String> {
    let Some((proto, rest)) = args.split_first() else {
        return Err("search needs a protocol (chain|nonauth|small|ba|degrade|ds|king)".to_string());
    };
    let mut config = SearchConfig::new(Protocol::parse(proto)?, 8, 2, 1);
    let mut t_given: Option<usize> = None;
    let mut threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut json_path = None;
    let mut md_path = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "-n" | "--n" => config.n = grab()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--t" => t_given = Some(grab()?.parse().map_err(|e| format!("--t: {e}"))?),
            "--seed" => config.seed = grab()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scheme" => config.scheme = SchemeSpec::parse(&grab()?)?,
            "--latency" => config.latency = LatencySpec::parse(&grab()?)?,
            "--adversary" => config.adversary = AdversaryKind::parse(&grab()?)?,
            "--strategy" => config.strategy = Strategy::parse(&grab()?)?,
            "--budget" => {
                config.budget = grab()?.parse().map_err(|e| format!("--budget: {e}"))?;
                if config.budget == 0 || config.budget > 100_000 {
                    return Err("--budget must be in 1..=100000".to_string());
                }
            }
            "--threads" => {
                threads = grab()?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--json" => json_path = Some(grab()?),
            "--md" => md_path = Some(grab()?),
            other => return Err(format!("unknown search flag {other}")),
        }
    }
    if config.n > u16::MAX as usize {
        return Err(format!(
            "--n {} exceeds the node-id range (max {})",
            config.n,
            u16::MAX
        ));
    }
    config.t = t_given
        .unwrap_or_else(|| ((config.n.saturating_sub(1)) / 3).min(config.n.saturating_sub(2)));
    Ok((config, threads, json_path, md_path))
}

fn cmd_search(args: &[String]) -> ExitCode {
    let (config, threads, json_path, md_path) = match parse_search(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "search: {} n = {} t = {} latency = {} strategy = {} budget = {} threads = {}",
        config.protocol,
        config.n,
        config.t,
        config.latency,
        config.strategy,
        config.budget,
        threads
    );
    let start = std::time::Instant::now();
    let report = match run_search_parallel(&config, threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("search: finished in {:?}", start.elapsed());

    print!("{}", report.to_markdown());

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("search: JSON report written to {path}");
    }
    if let Some(path) = md_path {
        if let Err(e) = std::fs::write(&path, report.to_markdown()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("search: markdown report written to {path}");
    }

    if report.silent_found() {
        eprintln!("error: the search found silent disagreement — the state the paper forbids");
        return ExitCode::FAILURE;
    }
    if !report.replay_ok {
        eprintln!("error: the best schedule certificate did not replay identically");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_vector(cluster: &Cluster) {
    let kd = cluster.run_key_distribution();
    let values: Vec<Vec<u8>> = (0..cluster.n)
        .map(|i| format!("input-of-P{i}").into_bytes())
        .collect();
    let (report, per_instance) = cluster.run_vector_fd(&kd, &values);
    println!(
        "interactive consistency: n = {}, {} messages (n(n-1) = {})",
        cluster.n,
        report.stats.messages_total,
        cluster.n * (cluster.n - 1),
    );
    for (i, outcomes) in per_instance.iter().enumerate() {
        let decided = outcomes.iter().filter(|o| o.decided().is_some()).count();
        println!("  P{i}: decided {decided}/{} instances", cluster.n);
    }
}

fn cmd_ba(cluster: &Cluster, opts: &Opts) {
    let mut spec = RunSpec::new(Protocol::FdToBa, opts.value.clone().into_bytes())
        .with_default_value(b"default".to_vec());
    if let Some(crash) = opts.crash {
        spec = spec.with_adversary(AdversarySpec::scripted_at(
            AdversaryKind::SilentRelay,
            vec![NodeId(crash as u16)],
        ));
    }
    let run = cluster.run(&spec);
    println!(
        "FD->BA: {} messages{}",
        run.stats.messages_total,
        match opts.crash {
            Some(c) => format!(" (node {c} crashed; fallback engaged)"),
            None => " (failure-free: n-1, the FD cost)".to_string(),
        }
    );
    for (i, o) in run.outcomes.iter().enumerate() {
        match o {
            Some(o) => println!("  P{i}: {o}"),
            None => println!("  P{i}: (faulty)"),
        }
    }
}

fn cmd_degrade(cluster: &Cluster, opts: &Opts) {
    use local_auth_fd::core::ba::DgMsg;
    use local_auth_fd::core::chain::ChainMessage;
    use local_auth_fd::simnet::codec::Encode;
    use local_auth_fd::simnet::{Envelope, Outbox};
    use std::any::Any;

    let value = opts.value.clone().into_bytes();
    let spec =
        RunSpec::new(Protocol::Degradable, value.clone()).with_default_value(b"default".to_vec());
    let run = if opts.equivocate {
        struct TwoFaced {
            ring: local_auth_fd::core::keys::Keyring,
            scheme: Arc<dyn SignatureScheme>,
            n: usize,
            value: Vec<u8>,
        }
        impl Node for TwoFaced {
            fn id(&self) -> NodeId {
                self.ring.me
            }
            fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
                if round != 0 {
                    return;
                }
                for i in 1..self.n {
                    let v = if i <= self.n / 2 {
                        self.value.clone()
                    } else {
                        b"SABOTAGE".to_vec()
                    };
                    let chain = ChainMessage::originate(
                        self.scheme.as_ref(),
                        &self.ring.sk,
                        self.ring.me,
                        v,
                    )
                    .expect("key well-formed");
                    out.send(NodeId(i as u16), DgMsg { chain }.encode_to_vec());
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        let ring = cluster.keyring(NodeId(0));
        let scheme = Arc::clone(&cluster.scheme);
        let n = cluster.n;
        let v = value.clone();
        let adversary = AdversarySpec::custom(move |id| {
            (id == NodeId(0)).then(|| {
                Box::new(TwoFaced {
                    ring: ring.clone(),
                    scheme: Arc::clone(&scheme),
                    n,
                    value: v.clone(),
                }) as Box<dyn Node>
            })
        });
        cluster.run(&spec.clone().with_adversary(adversary))
    } else {
        cluster.run(&spec)
    };
    let grades = run.grades.clone();
    println!(
        "degradable agreement: {} messages (n(n-1) = {}), 2 comm rounds{}",
        run.stats.messages_total,
        cluster.n * (cluster.n - 1),
        if opts.equivocate {
            " — sender equivocated"
        } else {
            ""
        }
    );
    for (i, o) in run.outcomes.iter().enumerate() {
        match o {
            Some(o) => println!("  P{i}: {o} (grade {:?})", grades[i]),
            None => println!("  P{i}: (faulty)"),
        }
    }
}

fn cmd_king(cluster: &Cluster, opts: &Opts) {
    if cluster.n <= 4 * cluster.t {
        eprintln!(
            "phase king requires n > 4t (got n={}, t={})",
            cluster.n, cluster.t
        );
        return;
    }
    let value = opts.value.clone().into_bytes();
    let mut spec =
        RunSpec::new(Protocol::PhaseKing, value.clone()).with_default_value(b"default".to_vec());
    if let Some(crash) = opts.crash {
        spec = spec.with_adversary(AdversarySpec::scripted_at(
            AdversaryKind::SilentRelay,
            vec![NodeId(crash as u16)],
        ));
    }
    let run = cluster.run(&spec);
    println!(
        "phase king (non-authenticated, n > 4t): {} messages, {} comm rounds{}",
        run.stats.messages_total,
        metrics::phase_king_comm_rounds(cluster.t),
        match opts.crash {
            Some(c) => format!(" (node {c} silent)"),
            None => String::new(),
        }
    );
    for (i, o) in run.outcomes.iter().enumerate() {
        match o {
            Some(o) => println!("  P{i}: {o}"),
            None => println!("  P{i}: (faulty)"),
        }
    }
}

fn cmd_rotate(cluster: Cluster, opts: &Opts) {
    use local_auth_fd::core::epoch::EpochManager;
    let (n, t) = (cluster.n, cluster.t);
    let mut epochs = EpochManager::new(cluster);
    for e in 0..3u32 {
        let state = epochs.rotate();
        println!(
            "epoch {e}: key distribution {} messages",
            state.keydist.stats.messages_total
        );
        for k in 0..opts.runs {
            let value = format!("epoch {e} run {k}").into_bytes();
            let run = epochs.run_round(value.clone());
            assert!(run.all_decided(&value));
        }
        println!("  + {} chain-FD runs at {} messages each", opts.runs, n - 1);
    }
    let spent = epochs.messages_spent();
    let baseline = metrics::cumulative_non_auth(n, t, 3 * opts.runs);
    println!(
        "total {spent} messages vs non-auth baseline {baseline} — {}",
        if spent < baseline {
            "rotation amortizes (epoch outlives k*)"
        } else {
            "rotation too frequent (epoch below k*)"
        }
    );
}

fn cmd_tcp(cluster: &Cluster, _opts: &Opts) {
    use local_auth_fd::core::keys::Keyring;
    use local_auth_fd::core::localauth::{KeyDistNode, KEYDIST_ROUNDS};
    use local_auth_fd::simnet::transport::TcpCluster;
    let n = cluster.n;
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            let ring = Keyring::generate(cluster.scheme.as_ref(), me, cluster.seed);
            Box::new(KeyDistNode::new(
                me,
                n,
                Arc::clone(&cluster.scheme),
                ring,
                cluster.seed,
            )) as Box<dyn Node>
        })
        .collect();
    let start = std::time::Instant::now();
    let report = TcpCluster::new(KEYDIST_ROUNDS).run(nodes);
    println!(
        "key distribution over localhost TCP: {} messages, {} bytes, {:?}",
        report.stats.messages_total,
        report.stats.bytes_total,
        start.elapsed(),
    );
}

fn cmd_trace(cluster: &Cluster, opts: &Opts) {
    use local_auth_fd::core::fd::{ChainFdNode, ChainFdParams};
    use local_auth_fd::core::keys::Keyring;
    use local_auth_fd::core::localauth::{KeyDistNode, KEYDIST_ROUNDS};
    use local_auth_fd::simnet::SyncNetwork;

    let n = cluster.n;
    println!("message flow, key distribution (n = {n}):");
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            let ring = Keyring::generate(cluster.scheme.as_ref(), me, cluster.seed);
            Box::new(KeyDistNode::new(
                me,
                n,
                Arc::clone(&cluster.scheme),
                ring,
                cluster.seed,
            )) as Box<dyn Node>
        })
        .collect();
    let mut net = SyncNetwork::new(nodes);
    net.enable_trace(10_000);
    net.run_until_done(KEYDIST_ROUNDS);
    print_trace(net.trace().expect("tracing enabled"));
    let stores: Vec<_> = net
        .into_nodes()
        .into_iter()
        .map(|b| {
            b.into_any()
                .downcast::<KeyDistNode>()
                .expect("KeyDistNode")
                .into_parts()
                .0
        })
        .collect();

    println!(
        "\nmessage flow, one chain FD run (value = {:?}):",
        opts.value
    );
    let params = ChainFdParams::new(n, cluster.t);
    let rounds = params.rounds();
    let fd_nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            Box::new(ChainFdNode::new(
                me,
                params.clone(),
                Arc::clone(&cluster.scheme),
                stores[i].clone(),
                Keyring::generate(cluster.scheme.as_ref(), me, cluster.seed),
                (i == 0).then(|| opts.value.clone().into_bytes()),
            )) as Box<dyn Node>
        })
        .collect();
    let mut net = SyncNetwork::new(fd_nodes);
    net.enable_trace(10_000);
    net.run_until_done(rounds);
    print_trace(net.trace().expect("tracing enabled"));
}

/// Parse a comma-separated list with an element parser.
fn parse_list<T>(
    raw: &str,
    what: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, String> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim()))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("--{what} needs at least one entry"));
    }
    Ok(items)
}

fn parse_sweep_matrix(
    args: &[String],
) -> Result<(SweepMatrix, usize, Option<String>, Option<String>), String> {
    let mut matrix = SweepMatrix::default_matrix();
    let mut threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut json_path = None;
    let mut md_path = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--protocols" => {
                let raw = grab()?;
                matrix.protocols = if raw == "all" {
                    Protocol::ALL.to_vec()
                } else {
                    parse_list(&raw, "protocols", Protocol::parse)?
                };
            }
            "--sizes" => {
                matrix.sizes = parse_list(&grab()?, "sizes", |s| {
                    let n: usize = s.parse().map_err(|e| format!("--sizes: {e}"))?;
                    if n < 2 {
                        return Err(format!("--sizes: need n >= 2 (got {n})"));
                    }
                    if n > u16::MAX as usize {
                        return Err(format!("--sizes: {n} exceeds the node-id range"));
                    }
                    Ok(n)
                })?;
            }
            "--faults" => {
                let raw = grab()?;
                matrix.fault_rule = if raw == "auto" {
                    FaultRule::Classic
                } else {
                    FaultRule::Explicit(parse_list(&raw, "faults", |s| {
                        s.parse::<usize>().map_err(|e| format!("--faults: {e}"))
                    })?)
                };
            }
            "--adversaries" => {
                matrix.adversaries = parse_list(&grab()?, "adversaries", AdversaryKind::parse)?;
            }
            "--schemes" => matrix.schemes = parse_list(&grab()?, "schemes", SchemeSpec::parse)?,
            "--seeds" => {
                matrix.seeds = parse_list(&grab()?, "seeds", |s| {
                    s.parse::<u64>().map_err(|e| format!("--seeds: {e}"))
                })?;
            }
            "--engines" => matrix.engines = parse_list(&grab()?, "engines", Engine::parse)?,
            "--latencies" => {
                matrix.latencies = parse_list(&grab()?, "latencies", LatencySpec::parse)?;
            }
            "--link-latency" => {
                matrix.link_latency.push(LinkLatencySpec::parse(&grab()?)?);
            }
            "--search" => {
                let raw = grab()?;
                let (budget_raw, strategy) = match raw.split_once(':') {
                    Some((b, s)) => (b.to_string(), Strategy::parse(s)?),
                    None => (raw.clone(), Strategy::Random),
                };
                let budget: usize = budget_raw
                    .parse()
                    .map_err(|e| format!("--search: budget: {e}"))?;
                if budget == 0 || budget > 10_000 {
                    return Err("--search budget must be in 1..=10000".to_string());
                }
                matrix.search = Some(SearchAxis { budget, strategy });
            }
            "--threads" => {
                threads = grab()?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--json" => json_path = Some(grab()?),
            "--md" => md_path = Some(grab()?),
            other => return Err(format!("unknown sweep flag {other}")),
        }
    }
    // Link overrides must reference nodes that exist in every swept size,
    // and both link overrides and the search axis need the event engine.
    let max_link_id = matrix
        .link_latency
        .iter()
        .flat_map(|l| [l.from.index(), l.to.index()])
        .max();
    if let (Some(max_id), Some(&min_n)) = (max_link_id, matrix.sizes.iter().min()) {
        if max_id >= min_n {
            return Err(format!(
                "--link-latency references node {max_id} but the smallest swept size is {min_n}"
            ));
        }
    }
    if (!matrix.link_latency.is_empty() || matrix.search.is_some())
        && !matrix.engines.contains(&Engine::Event)
    {
        return Err(
            "--link-latency / --search need the event engine (add --engines event)".to_string(),
        );
    }
    // The search explores the base latency envelope; per-link overrides
    // change the delivery times it would have to attack. Rather than
    // silently skipping every row, reject the combination.
    if matrix.search.is_some() && !matrix.link_latency.is_empty() {
        return Err("--search does not compose with --link-latency yet".to_string());
    }
    if matrix.search.is_some() && !matrix.latencies.iter().any(|l| l.has_schedule_freedom()) {
        return Err(
            "--search needs a latency with schedule freedom (e.g. --latencies jitter:1)"
                .to_string(),
        );
    }
    Ok((matrix, threads, json_path, md_path))
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let (matrix, threads, json_path, md_path) = match parse_sweep_matrix(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let scenarios = matrix.scenarios().len();
    if scenarios == 0 {
        eprintln!("error: the matrix expands to zero admissible scenarios");
        return ExitCode::FAILURE;
    }
    eprintln!("sweep: {scenarios} scenarios on {threads} threads");
    let start = std::time::Instant::now();
    let report = run_sweep(&matrix, threads);
    let elapsed = start.elapsed();

    print!("{}", report.to_markdown());
    eprintln!("sweep: finished in {elapsed:?}");

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("sweep: JSON report written to {path}");
    }
    if let Some(path) = md_path {
        if let Err(e) = std::fs::write(&path, report.to_markdown()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("sweep: markdown report written to {path}");
    }

    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "sweep: {} of {} scenarios FAILED their checks",
            report.failures().len(),
            scenarios
        );
        ExitCode::FAILURE
    }
}

/// Configuration of one `lafd bench` invocation.
struct BenchOpts {
    sizes: Vec<usize>,
    t: usize,
    seed: u64,
    protocols: Vec<Protocol>,
    engines: Vec<Engine>,
    quick: bool,
    out: String,
}

fn parse_bench(args: &[String]) -> Result<BenchOpts, String> {
    let mut opts = BenchOpts {
        sizes: vec![256, 1024, 2048, 4096],
        t: 1,
        seed: 1,
        protocols: vec![Protocol::ChainFd, Protocol::DolevStrong],
        engines: vec![Engine::Sync, Engine::Event],
        quick: false,
        out: "BENCH_5.json".to_string(),
    };
    let mut sizes_given = false;
    let mut out_given = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                opts.out = grab()?;
                out_given = true;
            }
            "--t" => opts.t = grab()?.parse().map_err(|e| format!("--t: {e}"))?,
            "--seed" => opts.seed = grab()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--sizes" => {
                opts.sizes = parse_list(&grab()?, "sizes", |s| {
                    let n: usize = s.parse().map_err(|e| format!("--sizes: {e}"))?;
                    if n > u16::MAX as usize {
                        return Err(format!("--sizes: {n} exceeds the node-id range"));
                    }
                    Ok(n)
                })?;
                sizes_given = true;
            }
            "--protocols" => {
                opts.protocols = parse_list(&grab()?, "protocols", Protocol::parse)?;
            }
            "--engines" => opts.engines = parse_list(&grab()?, "engines", Engine::parse)?,
            other => return Err(format!("unknown bench flag {other}")),
        }
    }
    if opts.quick && !sizes_given {
        opts.sizes = vec![64, 256];
    }
    // A quick run must not silently replace the committed full-matrix
    // baseline; it gets its own default output file.
    if opts.quick && !out_given {
        opts.out = "bench-quick.json".to_string();
    }
    for &n in &opts.sizes {
        if opts.t + 2 > n {
            return Err(format!("bench size {n} needs t + 2 <= n (t = {})", opts.t));
        }
        for &p in &opts.protocols {
            if !p.admissible(n, opts.t) {
                return Err(format!(
                    "protocol {p} inadmissible at n = {n}, t = {}",
                    opts.t
                ));
            }
        }
    }
    Ok(opts)
}

/// The `lafd bench` matrix: `{protocol} × {n} × {engine}` protocol runs on
/// trusted-dealer stores (the setup phase is excluded so the numbers
/// isolate the message/verification hot path), with wall time, message and
/// byte counts, and the distinct key-store allocation count recorded as
/// machine-readable JSON (the committed `BENCH_5.json` baseline).
fn cmd_bench(args: &[String]) -> ExitCode {
    let opts = match parse_bench(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    // Process warm-up (allocator, page cache, lazy statics) so the first
    // measured cell is not systematically inflated.
    {
        let warm = Cluster::new(64, 1, Arc::new(SchnorrScheme::test_tiny()), opts.seed);
        let kd = warm.dealer_keydist();
        let mut session = Session::with_keydist(warm, kd);
        let _ = session.run(&RunSpec::new(Protocol::ChainFd, b"warm-up".to_vec()));
    }
    let mut results = Vec::new();
    for &protocol in &opts.protocols {
        for &n in &opts.sizes {
            for &engine in &opts.engines {
                let cluster =
                    Cluster::new(n, opts.t, Arc::new(SchnorrScheme::test_tiny()), opts.seed)
                        .with_engine(engine);
                // Dealer stores: one shared predicate table, zero setup
                // messages — the run isolates the protocol hot path.
                let kd = cluster.dealer_keydist();
                let key_allocs = kd
                    .predicates
                    .as_ref()
                    .map_or(0, |table| table.distinct_allocations());
                let mut session = Session::with_keydist(cluster, kd);
                let spec = RunSpec::new(protocol, b"bench-value".to_vec())
                    .with_default_value(b"bench-default".to_vec());
                let start = std::time::Instant::now();
                let run = session.run(&spec);
                let wall = start.elapsed();
                if !run.all_decided(b"bench-value") {
                    eprintln!(
                        "error: bench cell {protocol}/n={n}/{engine} did not decide the value"
                    );
                    return ExitCode::FAILURE;
                }
                let expected = protocol.expected_messages(n, opts.t);
                if run.stats.messages_total != expected {
                    eprintln!(
                        "error: bench cell {protocol}/n={n}/{engine} sent {} messages, formula says {expected}",
                        run.stats.messages_total
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "bench: {protocol:>12} n={n:<5} {engine:<5} {:>10.2?}  {} msgs, {} bytes, {key_allocs} key allocs",
                    wall, run.stats.messages_total, run.stats.bytes_total
                );
                results.push(format!(
                    "    {{\"protocol\": \"{}\", \"n\": {}, \"t\": {}, \"engine\": \"{}\", \
                     \"scheme\": \"tiny\", \"wall_us\": {}, \"messages\": {}, \"bytes\": {}, \
                     \"comm_rounds\": {}, \"key_allocs\": {}}}",
                    protocol.name(),
                    n,
                    opts.t,
                    engine.name(),
                    wall.as_micros(),
                    run.stats.messages_total,
                    run.stats.bytes_total,
                    run.stats.per_round.iter().filter(|&&x| x > 0).count(),
                    key_allocs,
                ));
            }
        }
    }
    let json = format!(
        "{{\n  \"schema\": \"lafd-bench-v1\",\n  \"quick\": {},\n  \"seed\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        opts.quick,
        opts.seed,
        results.join(",\n")
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("error: writing {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    eprintln!("bench: {} cells written to {}", results.len(), opts.out);
    ExitCode::SUCCESS
}

fn print_trace(trace: &local_auth_fd::simnet::Trace) {
    let mut round = u32::MAX;
    for ev in trace.events() {
        if ev.round != round {
            round = ev.round;
            println!("  round {round}:");
        }
        let kind = match ev.tag {
            Some(0x01) => "announce",
            Some(0x02) => "challenge",
            Some(0x03) => "response",
            Some(0x10) => "chain",
            _ => "msg",
        };
        println!("    {} -> {}  {:<9} ({} B)", ev.from, ev.to, kind, ev.len);
    }
}
