//! # local-auth-fd
//!
//! A production-quality Rust reproduction of
//! **Malte Borcherding, "Efficient Failure Discovery with Limited
//! Authentication", ICDCS 1995**.
//!
//! The paper introduces *local authentication*: a 3-round, `3n(n−1)`-message
//! key distribution protocol that works with **any** number of byzantine
//! nodes and no trusted dealer, after which the authenticated
//! failure-discovery protocol of Hadzilacos & Halpern runs at `n − 1`
//! messages per agreement instead of the non-authenticated `O(n·t)`.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`bigint`] — from-scratch big integers (the numeric substrate).
//! * [`crypto`] — SHA-256, ChaCha20 DRBG, Schnorr, DSA and RSA signatures
//!   (the paper's S1–S3 assumption, instantiated — DSA and RSA are the two
//!   schemes the paper cites by name).
//! * [`simnet`] — the round-synchronous network model (N1/N2) with two
//!   deterministic simulators (lockstep rounds and discrete events over
//!   virtual time) plus thread and TCP transports.
//! * [`core`] — the paper's contribution: local authentication (§3,
//!   Fig. 1), chain signatures (§4), failure-discovery protocols (§5,
//!   Fig. 2), BA extensions (Dolev–Strong, EIG, Phase King, degradable
//!   agreement; §7), key-rotation epochs, adversaries (byzantine,
//!   benign-fault wrappers, rushing, declarative `AdversarySpec`s), the
//!   closed-form message formulas, the unified `RunSpec`/`Session`
//!   execution API (one typed entry point per protocol run, keydist
//!   amortized across a session), the parallel scenario-sweep engine,
//!   and the adversarial scheduler search with replayable schedule
//!   certificates.
//!
//! `docs/ARCHITECTURE.md` in the repository maps the crates onto the
//! paper's sections and walks one message through the engines.
//!
//! ## Quickstart
//!
//! ```
//! use local_auth_fd::core::runner::Cluster;
//! use local_auth_fd::core::spec::{Protocol, RunSpec, Session};
//! use std::sync::Arc;
//!
//! let cluster = Cluster::new(7, 2, Arc::new(local_auth_fd::crypto::SchnorrScheme::test_tiny()), 1);
//! let mut session = Session::new(cluster);                  // keydist once: 3n(n-1)
//! let run = session.run(&RunSpec::new(Protocol::ChainFd, b"go".to_vec())); // each: n-1
//! assert!(run.all_decided(b"go"));
//! assert_eq!(session.keydist_runs(), 1);
//! ```
//!
//! See `examples/` for runnable scenarios and `EXPERIMENTS.md` for the
//! reproduction of every quantitative claim in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fd_bigint as bigint;
pub use fd_core as core;
pub use fd_crypto as crypto;
pub use fd_simnet as simnet;

/// Crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
