//! The fault hierarchy under failure discovery: crash ⊂ omission ⊂ timing
//! ⊂ byzantine, all run against the same chain-FD protocol (experiment T8).
//!
//! The paper's model is purely byzantine; this example shows executably
//! that the benign fault classes are subsumed — every class either leaves
//! the run indistinguishable from failure-free or is *discovered*, never
//! producing silent disagreement.
//!
//! ```sh
//! cargo run --example fault_hierarchy
//! ```

use local_auth_fd::core::adversary::{AdversaryKind, AdversarySpec, LaggardNode, OmissiveNode};
use local_auth_fd::core::fd::{ChainFdNode, ChainFdParams};
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec, Session};
use local_auth_fd::crypto::SchnorrScheme;
use local_auth_fd::simnet::{Node, NodeId};
use std::sync::Arc;

fn main() {
    let (n, t) = (7usize, 2usize);
    let seeds = 50u64;
    println!("== fault hierarchy vs chain FD: n = {n}, t = {t}, {seeds} seeds/class ==\n");

    let classes: &[&str] = &[
        "crash-stop (mid-relay)",
        "send-omission (30%)",
        "timing (one round late)",
        "byzantine (silent)",
    ];

    for &class in classes {
        let mut discovered = 0usize;
        let mut clean = 0usize;
        let mut disagreements = 0usize;
        for seed in 0..seeds {
            let mut session = Session::new(Cluster::new(
                n,
                t,
                Arc::new(SchnorrScheme::test_tiny()),
                seed,
            ));
            let faulty = NodeId(1); // the first chain relay

            // Crash and silence are scripted adversary kinds; the two
            // benign wrappers ride in through the custom escape hatch,
            // closing over an honest relay automaton.
            let honest = {
                let scheme = Arc::clone(&session.cluster().scheme);
                let store = session.keydist().store(faulty).clone();
                let ring = session.cluster().keyring(faulty);
                move || -> Box<dyn Node> {
                    Box::new(ChainFdNode::new(
                        faulty,
                        ChainFdParams::new(n, t),
                        Arc::clone(&scheme),
                        store.clone(),
                        ring.clone(),
                        None,
                    ))
                }
            };
            let adversary = match class {
                "crash-stop (mid-relay)" => AdversarySpec::scripted(AdversaryKind::CrashRelay),
                "send-omission (30%)" => AdversarySpec::custom(move |id| {
                    (id == faulty)
                        .then(|| Box::new(OmissiveNode::new(honest(), seed, 300)) as Box<dyn Node>)
                }),
                "timing (one round late)" => AdversarySpec::custom(move |id| {
                    (id == faulty).then(|| Box::new(LaggardNode::new(honest())) as Box<dyn Node>)
                }),
                _ => AdversarySpec::scripted(AdversaryKind::SilentRelay),
            };
            let run = session
                .run(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()).with_adversary(adversary));

            let outcomes = run.correct_outcomes();
            let any_discovery = outcomes.iter().any(|o| o.is_discovered());
            let distinct: std::collections::BTreeSet<Vec<u8>> = outcomes
                .iter()
                .filter_map(|o| o.decided().map(<[u8]>::to_vec))
                .collect();
            if any_discovery {
                discovered += 1;
            } else if distinct.len() <= 1 {
                clean += 1;
            } else {
                disagreements += 1;
            }
        }
        println!(
            "{class:<26} discovered {discovered:>2}/{seeds}, clean {clean:>2}/{seeds}, \
             silent disagreement {disagreements}/{seeds}"
        );
        assert_eq!(disagreements, 0, "the paper's F2 would be violated");
    }

    println!(
        "\nEvery class sits inside byzantine, and the protocol's guarantee —\n\
         agree or somebody discovers — holds for all of them."
    );
}
