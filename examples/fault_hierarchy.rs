//! The fault hierarchy under failure discovery: crash ⊂ omission ⊂ timing
//! ⊂ byzantine, all run against the same chain-FD protocol (experiment T8).
//!
//! The paper's model is purely byzantine; this example shows executably
//! that the benign fault classes are subsumed — every class either leaves
//! the run indistinguishable from failure-free or is *discovered*, never
//! producing silent disagreement.
//!
//! ```sh
//! cargo run --example fault_hierarchy
//! ```

use local_auth_fd::core::adversary::{CrashNode, LaggardNode, OmissiveNode, SilentNode};
use local_auth_fd::core::fd::{ChainFdNode, ChainFdParams};
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::crypto::SchnorrScheme;
use local_auth_fd::simnet::{Node, NodeId};
use std::sync::Arc;

fn main() {
    let (n, t) = (7usize, 2usize);
    let seeds = 50u64;
    println!("== fault hierarchy vs chain FD: n = {n}, t = {t}, {seeds} seeds/class ==\n");

    let classes: &[&str] = &[
        "crash-stop (mid-relay)",
        "send-omission (30%)",
        "timing (one round late)",
        "byzantine (silent)",
    ];

    for &class in classes {
        let mut discovered = 0usize;
        let mut clean = 0usize;
        let mut disagreements = 0usize;
        for seed in 0..seeds {
            let cluster = Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), seed);
            let keydist = cluster.run_key_distribution();
            let faulty = NodeId(1); // the first chain relay

            // An honest relay automaton to wrap with a benign fault.
            let honest = || -> Box<dyn Node> {
                Box::new(ChainFdNode::new(
                    faulty,
                    ChainFdParams::new(n, t),
                    Arc::clone(&cluster.scheme),
                    keydist.store(faulty).clone(),
                    cluster.keyring(faulty),
                    None,
                ))
            };
            let run = cluster.run_chain_fd_with(&keydist, b"v".to_vec(), &mut |id| {
                (id == faulty).then(|| -> Box<dyn Node> {
                    match class {
                        "crash-stop (mid-relay)" => Box::new(CrashNode::new(honest(), 1, 0)),
                        "send-omission (30%)" => Box::new(OmissiveNode::new(honest(), seed, 300)),
                        "timing (one round late)" => Box::new(LaggardNode::new(honest())),
                        _ => Box::new(SilentNode { me: faulty }),
                    }
                })
            });

            let outcomes = run.correct_outcomes();
            let any_discovery = outcomes.iter().any(|o| o.is_discovered());
            let distinct: std::collections::BTreeSet<Vec<u8>> = outcomes
                .iter()
                .filter_map(|o| o.decided().map(<[u8]>::to_vec))
                .collect();
            if any_discovery {
                discovered += 1;
            } else if distinct.len() <= 1 {
                clean += 1;
            } else {
                disagreements += 1;
            }
        }
        println!(
            "{class:<26} discovered {discovered:>2}/{seeds}, clean {clean:>2}/{seeds}, \
             silent disagreement {disagreements}/{seeds}"
        );
        assert_eq!(disagreements, 0, "the paper's F2 would be violated");
    }

    println!(
        "\nEvery class sits inside byzantine, and the protocol's guarantee —\n\
         agree or somebody discovers — holds for all of them."
    );
}
