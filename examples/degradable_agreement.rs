//! Degradable (crusader/graded) agreement under local authentication —
//! the weaker-agreement direction the paper's §7 points to (its ref [7]).
//!
//! Shows the three-way trade against full agreement:
//! constant 2 communication rounds (vs `t + 1`), `n(n−1)` messages, and a
//! *graded* decision: grade 2 (strong support), grade 1 (enough support),
//! grade 0 (default — no or conflicting support).
//!
//! ```sh
//! cargo run --example degradable_agreement
//! ```

use local_auth_fd::core::adversary::AdversarySpec;
use local_auth_fd::core::ba::Grade;
use local_auth_fd::core::chain::ChainMessage;
use local_auth_fd::core::keys::Keyring;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec, Session};
use local_auth_fd::crypto::{SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::codec::Encode;
use local_auth_fd::simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;
use std::sync::Arc;

fn main() {
    let (n, t) = (7usize, 2usize);
    println!("== degradable agreement under local authentication: n = {n}, t = {t} ==\n");

    let mut session = Session::new(Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), 99));
    let spec = RunSpec::new(Protocol::Degradable, b"commit".to_vec()).with_default_value(b"abort");

    // Failure-free: everyone decides the sender's value with grade 2, in 2
    // communication rounds regardless of t. The per-node grades ride in
    // the run report.
    let run = session.run(&spec);
    println!("failure-free run:");
    println!(
        "  {} messages (n(n-1) = {}), 2 communication rounds",
        run.stats.messages_total,
        n * (n - 1)
    );
    for (i, grade) in run.grades.iter().enumerate() {
        assert_eq!(*grade, Some(Grade::Two));
        let outcome = run.outcomes[i].as_ref().unwrap();
        println!("  node {i}: {outcome} (grade {grade:?})");
    }

    // Equivocating sender: it signs "commit" for half the nodes and
    // "abort!" for the other half. Every correct node ends up holding
    // signed proof of the equivocation and decides the default — the
    // *degraded* agreement of Vaidya–Pradhan: at most two decision values,
    // one of which is the default.
    println!("\nequivocating sender (signs two different values):");
    let scheme = Arc::clone(&session.cluster().scheme);
    let ring = session.cluster().keyring(NodeId(0));
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(0)).then(|| {
            Box::new(TwoFacedSender {
                ring: ring.clone(),
                scheme: Arc::clone(&scheme),
                n,
            }) as Box<dyn Node>
        })
    });
    let run = session.run(&spec.with_adversary(adversary));
    for (i, grade) in run.grades.iter().enumerate().skip(1) {
        let outcome = run.outcomes[i].as_ref().unwrap();
        println!("  node {i}: {outcome} (grade {grade:?})");
        assert_eq!(outcome.decided(), Some(&b"abort"[..]));
        assert_eq!(*grade, Some(Grade::Zero));
    }
    println!("\nAll correct nodes saw the two signatures, proved the sender");
    println!("two-faced, and fell back to the default — in the same 2 rounds.");
}

/// A sender signing different values for different halves of the cluster.
struct TwoFacedSender {
    ring: Keyring,
    scheme: Arc<dyn SignatureScheme>,
    n: usize,
}

impl Node for TwoFacedSender {
    fn id(&self) -> NodeId {
        self.ring.me
    }

    fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
        if round != 0 {
            return;
        }
        for i in 1..self.n {
            let value = if i <= self.n / 2 {
                &b"commit"[..]
            } else {
                &b"sabotage"[..]
            };
            let chain = ChainMessage::originate(
                self.scheme.as_ref(),
                &self.ring.sk,
                self.ring.me,
                value.to_vec(),
            )
            .expect("adversary key well-formed");
            let msg = local_auth_fd::core::ba::DgMsg { chain };
            out.send(NodeId(i as u16), msg.encode_to_vec());
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}
