//! Quickstart: establish local authentication once, then run cheap
//! authenticated failure-discovery rounds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use local_auth_fd::core::metrics;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec, Session};
use local_auth_fd::crypto::SchnorrScheme;
use std::sync::Arc;

fn main() {
    let (n, t) = (7, 2);
    println!("== local-auth-fd quickstart: n = {n}, t = {t} ==\n");

    // A Session owns the cluster and runs the paper's Fig. 1 key
    // distribution exactly once, lazily — each node distributes its own
    // test predicate and proves key possession via challenge-response.
    // No trusted dealer, works under any number of byzantine nodes.
    let cluster = Cluster::new(n, t, Arc::new(SchnorrScheme::s512()), 2026);
    let mut session = Session::new(cluster);
    let keydist = session.keydist();
    println!(
        "key distribution: {} messages in 3 communication rounds (formula 3n(n-1) = {})",
        keydist.stats.messages_total,
        metrics::keydist_messages(n),
    );
    for (node, anomalies) in &keydist.anomalies {
        assert!(anomalies.is_empty(), "{node} saw anomalies: {anomalies:?}");
    }

    // Phase 2: arbitrarily many failure-discovery runs (paper Fig. 2),
    // each at n-1 messages instead of the non-authenticated (t+2)(n-1) —
    // every run is one RunSpec against the cached keys.
    println!("\nrunning 5 failure-discovery rounds:");
    for k in 0..5u8 {
        let value = format!("command #{k}: advance at {}00 hours", k + 1);
        let run = session.run(&RunSpec::new(Protocol::ChainFd, value.clone().into_bytes()));
        assert!(run.all_decided(value.as_bytes()));
        println!(
            "  run {k}: {:>2} messages, decided {:?} at every node",
            run.stats.messages_total, value,
        );
    }
    assert_eq!(session.keydist_runs(), 1, "one keydist amortizes all runs");

    // The baseline for contrast (needs no keys, so it does not touch the
    // session's key distribution accounting).
    let baseline = session.run(&RunSpec::new(Protocol::NonAuthFd, b"baseline".to_vec()));
    println!(
        "\nnon-authenticated baseline: {} messages per run ((t+2)(n-1) = {})",
        baseline.stats.messages_total,
        metrics::non_auth_messages(n, t),
    );
    println!(
        "amortization crossover: key distribution pays for itself after {} runs",
        metrics::amortization_crossover(n, t).unwrap(),
    );
}
