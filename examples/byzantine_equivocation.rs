//! The paper's central subtlety, live: a faulty node equivocates its
//! public key during key distribution (the G3 failure of §3.2), then signs
//! a failure-discovery chain — and Theorem 4 guarantees the inconsistency
//! is *discovered* by some correct node rather than causing silent
//! disagreement.
//!
//! ```sh
//! cargo run --example byzantine_equivocation
//! ```

use local_auth_fd::core::adversary::{
    AdversarySpec, ChainFdAdversary, ChainMisbehavior, EquivocatingKeyDist,
};
use local_auth_fd::core::fd::ChainFdParams;
use local_auth_fd::core::keys::Keyring;
use local_auth_fd::core::props::check_fd;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec};
use local_auth_fd::crypto::{SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::{Node, NodeId};
use std::sync::Arc;

fn main() {
    let (n, t) = (7, 2);
    let faulty = NodeId(2); // a chain relay
    let split = NodeId(4); // nodes < 4 get predicate A, >= 4 get B
    println!("== key equivocation attack: n = {n}, t = {t}, faulty = {faulty} ==\n");

    let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
    let cluster = Cluster::new(n, t, Arc::clone(&scheme), 404);

    // Key distribution with the equivocator in place.
    let keydist = cluster.run_key_distribution_with(&mut |id| {
        (id == faulty).then(|| {
            Box::new(EquivocatingKeyDist::new(
                faulty,
                n,
                Arc::clone(&scheme),
                31337,
                split,
            )) as Box<dyn Node>
        })
    });

    println!("after key distribution, who accepted which predicate for {faulty}?");
    for i in 0..n {
        if i == faulty.index() {
            continue;
        }
        let store = keydist.store(NodeId(i as u16));
        let pk = store.accepted(faulty).expect("accepted (challenge passed)");
        println!("  P{i}: predicate {:02x}{:02x}…", pk.0[0], pk.0[1]);
    }
    println!("  (two camps — G3 does NOT hold under local authentication)\n");

    // FD run: the equivocator relays the chain signing with predicate A's
    // key. Camp A verifies; camp B's test predicate fails -> discovery.
    // The bespoke automaton rides in through the spec's custom-adversary
    // escape hatch; the stores come from the equivocated key distribution.
    let reference = EquivocatingKeyDist::new(faulty, n, Arc::clone(&scheme), 31337, split);
    let sk_a = reference.key_for(NodeId(0)).0.clone();
    let adversary = {
        let scheme = Arc::clone(&scheme);
        let ring = Keyring::generate(scheme.as_ref(), faulty, cluster.seed);
        AdversarySpec::custom(move |id| {
            (id == faulty).then(|| {
                Box::new(ChainFdAdversary::new(
                    faulty,
                    ChainFdParams::new(n, t),
                    Arc::clone(&scheme),
                    ring.clone(),
                    ChainMisbehavior::SignWithKey { sk: sk_a.clone() },
                    None,
                )) as Box<dyn Node>
            })
        })
    };
    let run = cluster.run_with_keys(
        &RunSpec::new(Protocol::ChainFd, b"attack at dawn".to_vec()).with_adversary(adversary),
        Some(&keydist),
    );

    println!("failure-discovery run outcomes:");
    for (i, outcome) in run.outcomes.iter().enumerate() {
        match outcome {
            Some(o) => println!("  P{i}: {o}"),
            None => println!("  P{i}: (faulty)"),
        }
    }

    let report = check_fd(&run.correct_outcomes(), Some(b"attack at dawn"));
    println!("\nF1 termination: {}", report.f1_termination);
    println!(
        "F2 agreement (vacuous on discovery): {}",
        report.f2_agreement
    );
    println!(
        "F3 validity  (vacuous on discovery): {}",
        report.f3_validity
    );
    println!(
        "discovery happened: {} — Theorem 4 in action",
        report.any_discovery
    );
    assert!(report.all_ok() && report.any_discovery);
}
