//! The discrete-event engine: same protocols, first-class delivery time.
//!
//! Runs chain FD (1) on both engines under synchronous latency — provably
//! identical, (2) under seeded jitter — timing faults are *discovered*,
//! (3) with a single delayed link — the victim names the missing round,
//! and (4) at n = 128 to show the engine at scale.
//!
//! ```sh
//! cargo run --example event_engine
//! ```

use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec, Session};
use local_auth_fd::core::sweep::classify;
use local_auth_fd::crypto::SchnorrScheme;
use local_auth_fd::simnet::fault::{FaultPlan, LinkFault};
use local_auth_fd::simnet::{Engine, LatencySpec, NodeId};
use std::sync::Arc;

fn main() {
    let (n, t) = (7usize, 2usize);
    println!("== discrete-event engine: n = {n}, t = {t} ==\n");

    let sync = Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), 2026);
    let event = sync.clone().with_engine(Engine::Event);
    let spec = RunSpec::new(Protocol::ChainFd, b"attack at dawn".to_vec());

    // 1. Under synchronous latency the event engine IS the paper's model:
    //    byte-identical statistics and outcomes.
    let kd = event.setup_keydist();
    let run_s = sync.run(&spec);
    let run_e = event.run_with_keys(&spec, Some(&kd));
    assert_eq!(run_s.stats, run_e.stats);
    assert_eq!(run_s.outcomes, run_e.outcomes);
    println!(
        "synchronous latency: sync and event engines agree exactly \
         ({} messages, {} bytes)",
        run_e.stats.messages_total, run_e.stats.bytes_total
    );

    // 2. Seeded jitter (up to one extra round per hop): the chain misses
    //    its round schedule, and every correct node *discovers* the timing
    //    fault — never a silent disagreement.
    let jittery = event.clone().with_latency(LatencySpec::Jitter { extra: 1 });
    let run = jittery.run_with_keys(&spec, Some(&kd));
    println!(
        "\njitter:1 — outcome classification: {}",
        classify(&run, true)
    );
    for (i, outcome) in run.outcomes.iter().enumerate() {
        println!("  P{i}: {}", outcome.as_ref().expect("all honest"));
    }

    // 3. One delayed link, everything else synchronous: P2 names the round
    //    in which the chain failed to arrive.
    let delayed = event.clone().with_faults(FaultPlan::new().with(
        1,
        NodeId(1),
        NodeId(2),
        LinkFault::Delay { rounds: 2 },
    ));
    let run = delayed.run_with_keys(&spec, Some(&kd));
    println!("\ndelay fault on P1->P2 (round 1, +2 rounds):");
    for (i, outcome) in run.outcomes.iter().enumerate() {
        println!("  P{i}: {}", outcome.as_ref().expect("all honest"));
    }
    assert!(run.any_discovery());

    // 4. Large n: dealer-free key distribution plus one chain FD run at
    //    n = 128 — the event engine's heap handles tens of thousands of
    //    deliveries without lockstep.
    let (n, t) = (128usize, 42usize);
    let big =
        Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), 7).with_engine(Engine::Event);
    let mut session = Session::new(big);
    let start = std::time::Instant::now();
    let run = session.run(&RunSpec::new(Protocol::ChainFd, b"scale".to_vec()));
    println!(
        "\nn = {n}: keydist {} + chain FD {} messages in {:.2?} — {}",
        session.keydist_messages().expect("chain FD needs keys"),
        run.stats.messages_total,
        start.elapsed(),
        classify(&run, false),
    );
    assert!(run.all_decided(b"scale"));
}
