//! Byzantine Agreement on top of Failure Discovery (paper §4): failure-free
//! runs cost n-1 messages, faults trigger a uniform fall-back that still
//! reaches agreement — contrasted with always-quadratic Dolev–Strong.
//!
//! ```sh
//! cargo run --example byzantine_agreement
//! ```

use local_auth_fd::core::adversary::{AdversaryKind, AdversarySpec};
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec, Session};
use local_auth_fd::crypto::SchnorrScheme;
use local_auth_fd::simnet::NodeId;
use std::sync::Arc;

fn main() {
    let (n, t) = (7, 2);
    println!("== FD -> BA extension vs Dolev-Strong: n = {n}, t = {t} ==\n");

    let mut session = Session::new(Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), 11));
    let spec =
        |p: Protocol| RunSpec::new(p, b"launch".to_vec()).with_default_value(b"abort".to_vec());

    // Failure-free: the extension costs exactly the FD protocol.
    let ba = session.run(&spec(Protocol::FdToBa));
    let ds = session.run(&spec(Protocol::DolevStrong));
    println!("failure-free Byzantine Agreement on the same cluster:");
    println!(
        "  FD->BA extension: {:>3} messages (= n-1), all decided {:?}",
        ba.stats.messages_total,
        String::from_utf8_lossy(ba.correct_outcomes()[0].decided().unwrap()),
    );
    println!(
        "  Dolev-Strong:     {:>3} messages (= n(n-1)), all decided {:?}",
        ds.stats.messages_total,
        String::from_utf8_lossy(ds.correct_outcomes()[0].decided().unwrap()),
    );

    // Now crash a chain relay: discovery -> alarms -> uniform fallback.
    // The silent relay is a declarative adversary — one spec field, no
    // hand-written substitution closure.
    let crashed = NodeId(1);
    let faulty_run = session.run(&spec(Protocol::FdToBa).with_adversary(
        AdversarySpec::scripted_at(AdversaryKind::SilentRelay, vec![crashed]),
    ));
    println!("\nwith {crashed} crashed mid-chain:");
    println!(
        "  messages: {} (alarm relay + EIG fallback kick in)",
        faulty_run.stats.messages_total
    );
    for (i, outcome) in faulty_run.outcomes.iter().enumerate() {
        match outcome {
            Some(o) => println!(
                "  P{i}: {o}{}",
                if faulty_run.used_fallback[i] {
                    "  [via fallback]"
                } else {
                    ""
                }
            ),
            None => println!("  P{i}: (crashed)"),
        }
    }
    let outs = faulty_run.correct_outcomes();
    assert!(outs.iter().all(|o| o.decided() == Some(&b"launch"[..])));
    println!("\nagreement + validity preserved through the fallback.");
}
