//! Key rotation: re-running local authentication in epochs, and what it
//! does to the paper's amortization argument (experiment F4).
//!
//! Also demonstrates the security property rotation is *for*: a signature
//! chain from a previous epoch is dead on arrival — the fresh test
//! predicates reject it, and the receiver discovers the replay.
//!
//! ```sh
//! cargo run --example key_rotation
//! ```

use local_auth_fd::core::chain::ChainMessage;
use local_auth_fd::core::epoch::EpochManager;
use local_auth_fd::core::metrics;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::crypto::SchnorrScheme;
use local_auth_fd::simnet::NodeId;
use std::sync::Arc;

fn main() {
    let (n, t) = (8usize, 2usize);
    println!("== key rotation over local authentication: n = {n}, t = {t} ==\n");

    let base = Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), 2026);
    let mut epochs = EpochManager::new(base);

    // Three epochs of ten agreement rounds each.
    for epoch in 0..3u32 {
        let opened = epochs.rotate();
        println!(
            "epoch {epoch}: key distribution {} messages (3n(n-1) = {})",
            opened.keydist.stats.messages_total,
            metrics::keydist_messages(n)
        );
        for k in 0..10u8 {
            let value = vec![epoch as u8, k];
            let run = epochs.run_round(value.clone());
            assert!(run.all_decided(&value));
        }
        println!("  + 10 chain-FD runs at {} messages each", n - 1);
    }

    let total = epochs.messages_spent();
    let formula = metrics::cumulative_with_rotations(n, 3, 10);
    let baseline = metrics::cumulative_non_auth(n, t, 30);
    println!("\ncumulative: {total} messages (formula {formula}), non-auth baseline {baseline}");
    assert_eq!(total, formula);
    println!(
        "rotation every 10 runs {} the F1 crossover k* = {}, so local auth still wins",
        if 10 > metrics::amortization_crossover(n, t).unwrap() {
            "outlives"
        } else {
            "does not outlive"
        },
        metrics::amortization_crossover(n, t).unwrap()
    );

    // The replay attack rotation defends against: a chain signed with
    // epoch-0 keys presented under epoch-2 stores.
    let scheme = SchnorrScheme::test_tiny();
    let stale_ring = epochs.keyring_for(0, NodeId(0));
    let stale = ChainMessage::originate(&scheme, &stale_ring.sk, NodeId(0), b"replay!".to_vec())
        .expect("key well-formed");
    let verdict = stale.verify(
        &scheme,
        epochs.current().unwrap().keydist.store(NodeId(3)),
        NodeId(0),
    );
    println!("\nepoch-0 chain replayed into epoch 2: {verdict:?}");
    assert!(verdict.is_err(), "stale signatures must be discovered");
}
