//! The same protocol automata on a real network: a full-mesh localhost TCP
//! cluster runs key distribution and a failure-discovery round, with
//! wall-clock timings.
//!
//! ```sh
//! cargo run --release --example tcp_cluster
//! ```

use local_auth_fd::core::fd::{ChainFdNode, ChainFdParams};
use local_auth_fd::core::keys::{KeyStore, Keyring};
use local_auth_fd::core::localauth::{KeyDistNode, KEYDIST_ROUNDS};
use local_auth_fd::core::Outcome;
use local_auth_fd::crypto::{SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::transport::TcpCluster;
use local_auth_fd::simnet::{Node, NodeId};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let (n, t, seed) = (8usize, 2usize, 99u64);
    let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::s512());
    println!(
        "== TCP cluster: n = {n}, t = {t}, scheme = {} ==\n",
        scheme.name()
    );

    // Key distribution over TCP.
    let keydist_nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            let ring = Keyring::generate(scheme.as_ref(), me, seed);
            Box::new(KeyDistNode::new(me, n, Arc::clone(&scheme), ring, seed)) as Box<dyn Node>
        })
        .collect();
    let start = Instant::now();
    let report = TcpCluster::new(KEYDIST_ROUNDS).run(keydist_nodes);
    let kd_elapsed = start.elapsed();
    println!(
        "key distribution over TCP: {} messages, {} bytes, {:?}",
        report.stats.messages_total, report.stats.bytes_total, kd_elapsed
    );

    let stores: Vec<KeyStore> = report
        .nodes
        .into_iter()
        .map(|b| {
            b.into_any()
                .downcast::<KeyDistNode>()
                .expect("KeyDistNode")
                .into_parts()
                .0
        })
        .collect();
    for (i, s) in stores.iter().enumerate() {
        assert_eq!(s.accepted_count(), n, "P{i} accepted everyone");
    }

    // One authenticated FD round over TCP.
    let fd_nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            Box::new(ChainFdNode::new(
                me,
                ChainFdParams::new(n, t),
                Arc::clone(&scheme),
                stores[i].clone(),
                Keyring::generate(scheme.as_ref(), me, seed),
                (i == 0).then(|| b"over the wire".to_vec()),
            )) as Box<dyn Node>
        })
        .collect();
    let start = Instant::now();
    let fd_report = TcpCluster::new(ChainFdParams::new(n, t).rounds()).run(fd_nodes);
    let fd_elapsed = start.elapsed();
    println!(
        "chain FD over TCP:         {} messages, {} bytes, {:?}",
        fd_report.stats.messages_total, fd_report.stats.bytes_total, fd_elapsed
    );

    for (i, b) in fd_report.nodes.into_iter().enumerate() {
        let node = b.into_any().downcast::<ChainFdNode>().expect("ChainFdNode");
        assert_eq!(
            node.outcome(),
            &Outcome::Decided(b"over the wire".to_vec()),
            "P{i}"
        );
    }
    println!("\nall {n} nodes decided \"over the wire\" — N1/N2 realized on real sockets.");
}
