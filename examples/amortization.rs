//! The paper's headline economics: cumulative message counts of
//! "key distribution once + cheap authenticated runs" versus
//! "non-authenticated runs forever", with the measured crossover.
//!
//! ```sh
//! cargo run --example amortization
//! ```

use local_auth_fd::core::metrics;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec, Session};
use local_auth_fd::crypto::SchnorrScheme;
use std::sync::Arc;

fn main() {
    println!("== amortization of local authentication (paper §6) ==\n");

    for (n, t) in [(8usize, 2usize), (16, 5), (32, 10)] {
        let mut session = Session::new(Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), 7));
        let auth_run = session
            .run(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()))
            .stats
            .messages_total;
        let plain_run = session
            .run(&RunSpec::new(Protocol::NonAuthFd, b"v".to_vec()))
            .stats
            .messages_total;
        let setup = session.keydist_messages().expect("chain FD ran keydist");
        let k_star = metrics::amortization_crossover(n, t).unwrap();

        println!("n = {n:>2}, t = {t:>2}:");
        println!("  key distribution (once):   {setup:>6} messages");
        println!("  authenticated FD per run:  {auth_run:>6} messages");
        println!("  non-auth FD per run:       {plain_run:>6} messages");
        println!("  measured crossover:        after {k_star} runs\n");
        println!("  runs | cumulative auth | cumulative non-auth");
        for k in [1usize, k_star / 2, k_star - 1, k_star, k_star + 5, 100] {
            let a = setup + k * auth_run;
            let b = k * plain_run;
            let marker = if a < b { "  <-- auth wins" } else { "" };
            println!("  {k:>4} | {a:>15} | {b:>19}{marker}");
        }
        println!();
    }
}
