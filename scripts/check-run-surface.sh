#!/usr/bin/env bash
# API-surface gate for the unified RunSpec execution API.
#
# The per-protocol `Cluster::run_*` / `run_*_with` methods were collapsed
# into `Cluster::run(&RunSpec)`; the old names live on solely as deprecated
# shims in crates/core/src/compat.rs. This gate fails the build if a new
# per-protocol run variant is (re)defined anywhere else, so the surface
# cannot silently regrow.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern='fn run_(chain_fd|non_auth_fd|small_range|fd_to_ba|degradable|dolev_strong|phase_king|vector_fd)'

matches=$(grep -rnE "$pattern" \
    --include='*.rs' \
    crates src examples \
    | grep -v 'crates/core/src/compat.rs' || true)

if [ -n "$matches" ]; then
    echo "error: per-protocol run_* variants outside the deprecated-shim module" >&2
    echo "       (crates/core/src/compat.rs). Route execution through" >&2
    echo "       Cluster::run(&RunSpec) / Session instead:" >&2
    echo "$matches" >&2
    exit 1
fi
echo "run-surface gate: OK (no per-protocol run_* variants outside compat.rs)"
