#!/usr/bin/env bash
# API-surface gate for the unified RunSpec execution API.
#
# The per-protocol `Cluster::run_*` / `run_*_with` methods were collapsed
# into `Cluster::run(&RunSpec)`; the old names live on solely as deprecated
# shims in crates/core/src/compat.rs, behind the off-by-default `compat`
# cargo feature. This gate fails the build if:
#
#   1. a new per-protocol run variant is (re)defined anywhere else, or
#   2. deprecated shim names are *called* outside the shim module and the
#      compat-gated half of the equivalence suite, or
#   3. a file-level `#![allow(deprecated)]` pin appears outside those two
#      places — new code must target the RunSpec API, not silence the
#      deprecation.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Gate 1: no per-protocol run_* definitions outside the shim module.
def_pattern='fn run_(chain_fd|non_auth_fd|small_range|fd_to_ba|degradable|dolev_strong|phase_king|vector_fd)'
matches=$(grep -rnE "$def_pattern" \
    --include='*.rs' \
    crates src examples \
    | grep -v 'crates/core/src/compat.rs' || true)
if [ -n "$matches" ]; then
    echo "error: per-protocol run_* variants defined outside the deprecated-shim" >&2
    echo "       module (crates/core/src/compat.rs). Route execution through" >&2
    echo "       Cluster::run(&RunSpec) / Session instead:" >&2
    echo "$matches" >&2
    fail=1
fi

# Gate 2: no deprecated call sites outside compat.rs, its gated re-export
# in sweep.rs, and the equivalence suite's compat-gated legacy module.
# `run_keydist_for`/`run_protocol_with` are the free-function shims; the
# method pattern covers `c.run_chain_fd(...)`-style calls.
call_pattern='\.run_(chain_fd|non_auth_fd|small_range|fd_to_ba|degradable|dolev_strong|phase_king|vector_fd)(_with)?\(|run_keydist_for\(|run_protocol_with\('
matches=$(grep -rnE "$call_pattern" \
    --include='*.rs' \
    crates src examples tests 2>/dev/null \
    | grep -v 'crates/core/src/compat.rs' \
    | grep -v 'tests/runspec_equivalence.rs' || true)
if [ -n "$matches" ]; then
    echo "error: deprecated pre-RunSpec API call sites outside compat.rs /" >&2
    echo "       the compat-gated equivalence suite. Migrate to" >&2
    echo "       Cluster::run(&RunSpec) / run_with_keys:" >&2
    echo "$matches" >&2
    fail=1
fi

# Gate 3: no blanket deprecation silencing outside the sanctioned places.
matches=$(grep -rn --include='*.rs' -F '#![allow(deprecated)]' \
    crates src examples tests 2>/dev/null \
    | grep -v 'crates/core/src/compat.rs' \
    | grep -v 'tests/runspec_equivalence.rs' || true)
if [ -n "$matches" ]; then
    echo "error: file/module-level #![allow(deprecated)] outside compat.rs /" >&2
    echo "       the equivalence suite — migrate the code instead of pinning it:" >&2
    echo "$matches" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "run-surface gate: OK (definitions, call sites, and deprecation pins all clean)"
