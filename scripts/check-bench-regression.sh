#!/usr/bin/env bash
# Compare a fresh `lafd bench` run against the committed baseline
# (BENCH_10.json).
#
# Usage: check-bench-regression.sh CURRENT.json [BASELINE.json]
#
# Cells are matched by (protocol, n, engine); cells present in only one
# file are ignored (a --quick run checks only the sizes it ran — in
# particular the n = 16384 cell is a local full-run concern). Two kinds
# of checks:
#
#   * deterministic counters (messages, bytes, comm_rounds, key_allocs)
#     must match the baseline EXACTLY — they are byte-deterministic, any
#     drift is a real behaviour change;
#   * wall_us may drift within ±BENCH_WALL_TOLERANCE_PCT percent
#     (default 20). Wall time is hardware-dependent, so CI may want a
#     looser bound than a like-for-like local rerun.
#
# BENCH_REQUIRE_N (comma-separated n values) additionally *gates* sizes:
# the check fails unless every listed size was present in CURRENT.json
# and compared against a baseline counterpart. CI's large-cell job uses
# it to keep the PR8 n = 8192 Dolev–Strong cell from being skipped
# silently.
set -euo pipefail

usage() {
    cat <<'EOF'
usage: check-bench-regression.sh CURRENT.json [BASELINE.json]

Compare a fresh `lafd bench` run against a committed baseline
(default: BENCH_10.json). Cells are matched by (protocol, n, engine).

Checks:
  * deterministic counters (messages, bytes, comm_rounds, key_allocs)
    must match the baseline EXACTLY;
  * wall_us may drift within +/-BENCH_WALL_TOLERANCE_PCT percent.

Environment:
  BENCH_WALL_TOLERANCE_PCT   Allowed wall-clock drift in integer percent
                             (default 20). Wall time is hardware- and
                             load-dependent: keep the default for
                             like-for-like local reruns, and set a looser
                             bound (CI uses 300) on shared runners whose
                             absolute timings are not comparable to the
                             committed baseline's hardware. Counter checks
                             are unaffected — they stay exact at any
                             tolerance.
  BENCH_REQUIRE_N            Comma-separated n values that MUST appear in
                             CURRENT.json and be compared against the
                             baseline; missing ones fail the check. Unset
                             by default, so quick runs naturally skip the
                             large cells (n = 16384 in particular).

Exit status: 0 all checks passed, 1 a check failed, 2 usage/input error.
EOF
}

if [[ "${1:-}" == "-h" || "${1:-}" == "--help" ]]; then
    usage
    exit 0
fi

current="${1:?usage: check-bench-regression.sh CURRENT.json [BASELINE.json] (--help for details)}"
baseline="${2:-BENCH_10.json}"
tolerance="${BENCH_WALL_TOLERANCE_PCT:-20}"
require_n="${BENCH_REQUIRE_N:-}"

for f in "$current" "$baseline"; do
    [[ -f "$f" ]] || { echo "error: $f not found" >&2; exit 2; }
done

# Flatten result lines to: protocol n engine wall_us messages bytes comm_rounds key_allocs
flatten() {
    grep -o '{"protocol":[^}]*}' "$1" | sed 's/[",]/ /g' | awk '
        {
            for (i = 1; i <= NF; i++) {
                if ($i == "protocol")    proto = $(i+2);
                if ($i == "n")           n = $(i+2);
                if ($i == "engine")      engine = $(i+2);
                if ($i == "wall_us")     wall = $(i+2);
                if ($i == "messages")    msgs = $(i+2);
                if ($i == "bytes")       bytes = $(i+2);
                if ($i == "comm_rounds") rounds = $(i+2);
                if ($i == "key_allocs")  allocs = $(i+2);
            }
            print proto, n, engine, wall, msgs, bytes, rounds, allocs;
        }'
}

fail=0
compared=0
skipped=0
while read -r proto n engine wall msgs bytes rounds allocs; do
    base_line=$(flatten "$baseline" | awk -v p="$proto" -v n="$n" -v e="$engine" \
        '$1 == p && $2 == n && $3 == e { print; exit }')
    if [[ -z "$base_line" ]]; then
        echo "skip $proto n=$n $engine: no baseline counterpart" >&2
        skipped=$((skipped + 1))
        continue
    fi
    compared=$((compared + 1))
    read -r _ _ _ bwall bmsgs bbytes brounds ballocs <<<"$base_line"
    for pair in "messages:$msgs:$bmsgs" "bytes:$bytes:$bbytes" \
                "comm_rounds:$rounds:$brounds" "key_allocs:$allocs:$ballocs"; do
        IFS=: read -r field cur base <<<"$pair"
        if [[ "$cur" != "$base" ]]; then
            echo "FAIL $proto n=$n $engine: $field $cur != baseline $base" >&2
            fail=1
        fi
    done
    # Wall time within ±tolerance% (integer arithmetic; baseline 0 is skipped).
    if [[ "$bwall" -gt 0 ]]; then
        lo=$((bwall * (100 - tolerance) / 100))
        hi=$((bwall * (100 + tolerance) / 100))
        if [[ "$wall" -lt "$lo" || "$wall" -gt "$hi" ]]; then
            echo "FAIL $proto n=$n $engine: wall_us $wall outside ±$tolerance% of baseline $bwall" >&2
            fail=1
        else
            echo "ok   $proto n=$n $engine: wall_us $wall vs $bwall (±$tolerance%)"
        fi
    fi
done < <(flatten "$current")

if [[ "$compared" -eq 0 ]]; then
    echo "error: no comparable cells between $current and $baseline" >&2
    exit 2
fi

# Required-size gate: every size in BENCH_REQUIRE_N must have produced at
# least one compared cell, or the run silently skipped a gated size.
if [[ -n "$require_n" ]]; then
    IFS=, read -ra required <<<"$require_n"
    for rn in "${required[@]}"; do
        if ! flatten "$current" | awk -v n="$rn" '$2 == n { found = 1 } END { exit !found }'; then
            echo "FAIL required size n=$rn missing from $current (BENCH_REQUIRE_N=$require_n)" >&2
            fail=1
        elif ! flatten "$baseline" | awk -v n="$rn" '$2 == n { found = 1 } END { exit !found }'; then
            echo "FAIL required size n=$rn has no baseline counterpart in $baseline" >&2
            fail=1
        else
            echo "ok   required size n=$rn present and compared"
        fi
    done
fi

echo "bench regression check: $compared cells compared against $baseline ($skipped skipped)"
exit "$fail"
