//! Property-based tests over the protocol stack: random system shapes,
//! seeds, values, and fault placements must never violate F1–F3 or the
//! message-count formulas.

use local_auth_fd::core::adversary::{
    AdversarySpec, ChainFdAdversary, ChainMisbehavior, SilentNode,
};
use local_auth_fd::core::fd::ChainFdParams;
use local_auth_fd::core::keys::Keyring;
use local_auth_fd::core::props::check_fd;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec};
use local_auth_fd::core::{metrics, Outcome};
use local_auth_fd::crypto::{SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::{Node, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

fn scheme() -> Arc<dyn SignatureScheme> {
    Arc::new(SchnorrScheme::test_tiny())
}

/// (n, t) shapes valid for the chain FD protocol.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (3usize..10).prop_flat_map(|n| (Just(n), 0usize..=(n - 2).min(4)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn honest_runs_always_decide_with_exact_counts(
        (n, t) in shape(),
        seed in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let c = Cluster::new(n, t, scheme(), seed);
        let kd = c.run_key_distribution();
        prop_assert_eq!(kd.stats.messages_total, metrics::keydist_messages(n));
        let run = c.run_with_keys(&RunSpec::new(Protocol::ChainFd, value.clone()), Some(&kd));
        prop_assert_eq!(run.stats.messages_total, metrics::chain_fd_messages(n));
        prop_assert!(run.all_decided(&value));
        let report = check_fd(&run.correct_outcomes(), Some(&value));
        prop_assert!(report.all_ok());
        prop_assert!(!report.any_discovery);
    }

    #[test]
    fn non_auth_honest_runs_always_decide(
        (n, t) in shape(),
        seed in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let c = Cluster::new(n, t, scheme(), seed);
        let run = c.run(&RunSpec::new(Protocol::NonAuthFd, value.clone()));
        prop_assert_eq!(run.stats.messages_total, metrics::non_auth_messages(n, t));
        prop_assert!(run.all_decided(&value));
    }

    #[test]
    fn one_faulty_relay_never_silent_disagreement(
        (n, t) in (4usize..9).prop_flat_map(|n| (Just(n), 1usize..=(n - 2).min(3))),
        seed in any::<u64>(),
        which in any::<usize>(),
        behavior_pick in 0u8..4,
    ) {
        let c = Cluster::new(n, t, scheme(), seed);
        let kd = c.run_key_distribution();
        let faulty = NodeId((1 + which % t) as u16); // a chain relay
        let behavior = match behavior_pick {
            0 => ChainMisbehavior::Silent,
            1 => ChainMisbehavior::TamperBody { new_body: vec![0xee] },
            2 => ChainMisbehavior::WrongAssigneeName {
                claim: NodeId((which % n) as u16),
            },
            _ => ChainMisbehavior::ForgeOrigin { value: vec![0xdd] },
        };
        let adv_behavior = behavior.clone();
        let spec = RunSpec::new(Protocol::ChainFd, b"honest-value".to_vec()).with_adversary(
            AdversarySpec::custom(move |id| {
                (id == faulty).then(|| {
                    Box::new(ChainFdAdversary::new(
                        faulty,
                        ChainFdParams::new(n, t),
                        scheme(),
                        Keyring::generate(scheme().as_ref(), faulty, seed),
                        adv_behavior.clone(),
                        None,
                    )) as Box<dyn Node>
                })
            }),
        );
        let run = c.run_with_keys(&spec, Some(&kd));
        let report = check_fd(&run.correct_outcomes(), Some(b"honest-value"));
        prop_assert!(report.all_ok(), "seed={seed} behavior={behavior:?}: {report:?}");
    }

    #[test]
    fn crashed_nodes_anywhere_never_break_f_properties(
        (n, t) in (4usize..9).prop_flat_map(|n| (Just(n), 1usize..=(n - 2).min(3))),
        seed in any::<u64>(),
        crash in any::<usize>(),
    ) {
        let c = Cluster::new(n, t, scheme(), seed);
        let crash_id = NodeId((crash % n) as u16);
        let kd = c.run_key_distribution_with(&mut |id| {
            (id == crash_id).then(|| Box::new(SilentNode { me: crash_id }) as Box<dyn Node>)
        });
        let sender_correct = crash_id != NodeId(0);
        let spec = RunSpec::new(Protocol::ChainFd, b"v".to_vec()).with_adversary(
            AdversarySpec::custom(move |id| {
                (id == crash_id).then(|| Box::new(SilentNode { me: crash_id }) as Box<dyn Node>)
            }),
        );
        let run = c.run_with_keys(&spec, Some(&kd));
        let report = check_fd(
            &run.correct_outcomes(),
            sender_correct.then_some(&b"v"[..]),
        );
        prop_assert!(report.all_ok(), "crash={crash_id}: {report:?}");
        // A crashed *chain* node must actually be noticed by someone.
        if crash_id.index() <= t {
            prop_assert!(report.any_discovery, "crash={crash_id} went unnoticed");
        }
    }

    #[test]
    fn fd_to_ba_one_crash_always_agreement(
        seed in any::<u64>(),
        crash in 1usize..7,
    ) {
        let (n, t) = (7usize, 2usize);
        let c = Cluster::new(n, t, scheme(), seed);
        let crash_id = NodeId(crash as u16);
        let kd = c.run_key_distribution();
        let spec = RunSpec::new(Protocol::FdToBa, b"v".to_vec())
            .with_default_value(b"d".to_vec())
            .with_adversary(AdversarySpec::custom(move |id| {
                (id == crash_id).then(|| Box::new(SilentNode { me: crash_id }) as Box<dyn Node>)
            }));
        let run = c.run_with_keys(&spec, Some(&kd));
        // BA: all correct nodes decide, and on the same value; sender
        // correct here, so validity pins it to v.
        let outs = run.correct_outcomes();
        for o in &outs {
            prop_assert_eq!(o.decided(), Some(&b"v"[..]), "crash={}", crash_id);
        }
        let _ = Outcome::Pending; // silence unused import lint paths
    }
}

/// (n, t) shapes valid for degradable agreement (`n > 3t`).
fn degradable_shape() -> impl Strategy<Value = (usize, usize)> {
    (4usize..12).prop_flat_map(|n| (Just(n), 1usize..=((n - 1) / 3).max(1)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn degradable_honest_runs_grade_two(
        (n, t) in degradable_shape(),
        seed in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        use local_auth_fd::core::ba::Grade;
        use local_auth_fd::core::props::check_degradable;

        let c = Cluster::new(n, t, scheme(), seed);
        let kd = c.run_key_distribution();
        let run = c.run_with_keys(
            &RunSpec::new(Protocol::Degradable, value.clone())
                .with_default_value(b"dflt".to_vec()),
            Some(&kd),
        );
        let grades = run.grades.clone();
        prop_assert_eq!(run.stats.messages_total, metrics::degradable_messages(n));
        prop_assert!(run.all_decided(&value));
        prop_assert!(grades.iter().all(|g| *g == Some(Grade::Two)));
        prop_assert!(check_degradable(&run.correct_outcomes(), b"dflt").all_ok());
    }

    #[test]
    fn degradable_contract_survives_random_partial_senders(
        (n, t) in degradable_shape(),
        seed in any::<u64>(),
        reach_mask in any::<u16>(),
    ) {
        use local_auth_fd::core::ba::DgMsg;
        use local_auth_fd::core::chain::ChainMessage;
        use local_auth_fd::core::props::check_degradable;
        use local_auth_fd::simnet::codec::Encode;
        use local_auth_fd::simnet::{Envelope, Outbox};
        use std::any::Any;

        // A sender that reaches only the peers selected by `reach_mask`,
        // possibly with two different (validly signed) values.
        struct MaskedSender {
            ring: Keyring,
            scheme: Arc<dyn SignatureScheme>,
            n: usize,
            mask: u16,
        }
        impl Node for MaskedSender {
            fn id(&self) -> NodeId {
                self.ring.me
            }
            fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
                if round != 0 {
                    return;
                }
                for i in 1..self.n {
                    if self.mask & (1 << (i % 16)) == 0 {
                        continue;
                    }
                    // Half the reached peers get "v", the others get "w".
                    let v = if i % 2 == 0 { b"v".to_vec() } else { b"w".to_vec() };
                    let chain = ChainMessage::originate(
                        self.scheme.as_ref(),
                        &self.ring.sk,
                        self.ring.me,
                        v,
                    )
                    .unwrap();
                    out.send(NodeId(i as u16), DgMsg { chain }.encode_to_vec());
                }
            }
            fn as_any(&self) -> &dyn Any { self }
            fn as_any_mut(&mut self) -> &mut dyn Any { self }
            fn into_any(self: Box<Self>) -> Box<dyn Any> { self }
        }

        let c = Cluster::new(n, t, scheme(), seed);
        let kd = c.run_key_distribution();
        let ring = c.keyring(NodeId(0));
        let s = Arc::clone(&c.scheme);
        let spec = RunSpec::new(Protocol::Degradable, b"v".to_vec())
            .with_default_value(b"dflt".to_vec())
            .with_adversary(AdversarySpec::custom(move |id| {
                (id == NodeId(0)).then(|| {
                    Box::new(MaskedSender {
                        ring: ring.clone(),
                        scheme: Arc::clone(&s),
                        n,
                        mask: reach_mask,
                    }) as Box<dyn Node>
                })
            }));
        let run = c.run_with_keys(&spec, Some(&kd));
        // The equivocating/partial sender is faulty; the degradation
        // contract must still hold among the correct nodes.
        let outs: Vec<Outcome> = run.outcomes.iter().skip(1).flatten().cloned().collect();
        let report = check_degradable(&outs, b"dflt");
        prop_assert!(report.all_ok(), "contract violated: {:?}", outs);
    }

    #[test]
    fn phase_king_agrees_under_any_single_silent_node(
        seed in any::<u64>(),
        silent in 0usize..9,
        value in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let (n, t) = (9usize, 2usize);
        let c = Cluster::new(n, t, scheme(), seed);
        let spec = RunSpec::new(Protocol::PhaseKing, value.clone())
            .with_default_value(b"dflt".to_vec())
            .with_adversary(AdversarySpec::custom(move |id| {
                (id == NodeId(silent as u16))
                    .then(|| Box::new(SilentNode { me: NodeId(silent as u16) }) as Box<dyn Node>)
            }));
        let run = c.run(&spec);
        let outs = run.correct_outcomes();
        // Full agreement: exactly one decision value among correct nodes.
        let distinct: std::collections::BTreeSet<_> =
            outs.iter().filter_map(|o| o.decided()).collect();
        prop_assert_eq!(distinct.len(), 1, "{:?}", outs);
        // Validity: if the sender is correct, that value is the sender's.
        if silent != 0 {
            prop_assert_eq!(*distinct.iter().next().unwrap(), &value[..]);
        }
    }
}
