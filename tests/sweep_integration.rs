//! Integration tests for the scenario-sweep engine: determinism of the
//! report across thread counts and re-runs, formula conformance of the
//! default matrix, and the `lafd sweep` CLI surface.

use local_auth_fd::core::sweep::{
    run_sweep, AdversaryKind, FaultRule, Protocol, SchemeSpec, SweepMatrix, SweepOutcome,
};
use std::process::Command;

/// Same seed + same matrix ⇒ byte-identical JSON report, no matter how
/// many threads execute it or how often it reruns.
#[test]
fn sweep_report_is_reproducible_byte_for_byte() {
    let matrix = SweepMatrix {
        protocols: vec![Protocol::ChainFd, Protocol::Degradable, Protocol::PhaseKing],
        sizes: vec![5, 9],
        fault_rule: FaultRule::Classic,
        adversaries: vec![AdversaryKind::None, AdversaryKind::SilentRelay],
        schemes: vec![SchemeSpec::Tiny],
        seeds: vec![7, 8],
        ..SweepMatrix::quick()
    };
    let first = run_sweep(&matrix, 1);
    let second = run_sweep(&matrix, 4);
    let third = run_sweep(&matrix, 4);
    assert_eq!(first.to_json(), second.to_json());
    assert_eq!(second.to_json(), third.to_json());
    assert_eq!(first.to_markdown(), second.to_markdown());
}

/// The default matrix is the acceptance matrix: ≥ 24 scenarios, every row
/// matching the paper's closed-form formulas.
#[test]
fn default_matrix_matches_closed_forms() {
    let matrix = SweepMatrix::default_matrix();
    assert!(matrix.scenarios().len() >= 24);
    let report = run_sweep(&matrix, 4);
    assert!(report.all_ok(), "failures: {:?}", report.failures());
    for row in &report.rows {
        if row.scenario.adversary == AdversaryKind::None {
            assert_eq!(
                row.expected_messages,
                Some(row.messages),
                "formula mismatch: {row:?}"
            );
            assert_eq!(row.outcome, SweepOutcome::AllDecided, "{row:?}");
        } else {
            assert_ne!(row.outcome, SweepOutcome::SilentDisagreement, "{row:?}");
        }
    }
}

/// Scheme choice changes bytes on the wire but never message counts.
#[test]
fn schemes_change_bytes_not_messages() {
    let base = SweepMatrix {
        protocols: vec![Protocol::ChainFd],
        sizes: vec![5],
        fault_rule: FaultRule::Classic,
        adversaries: vec![AdversaryKind::None],
        schemes: vec![SchemeSpec::Tiny, SchemeSpec::DsaTiny],
        seeds: vec![1],
        ..SweepMatrix::quick()
    };
    let report = run_sweep(&base, 2);
    assert_eq!(report.rows.len(), 2);
    assert_eq!(report.rows[0].messages, report.rows[1].messages);
    assert!(report.all_ok());
}

fn lafd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lafd"))
}

/// `lafd sweep` smoke test: a small matrix on 4 threads succeeds and
/// prints the report table.
#[test]
fn cli_sweep_smoke() {
    let out = lafd()
        .args([
            "sweep",
            "--threads",
            "4",
            "--protocols",
            "chain,nonauth",
            "--sizes",
            "4,6",
            "--seeds",
            "1",
        ])
        .output()
        .expect("run lafd");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("| chain_fd | 4 |"), "stdout: {stdout}");
    assert!(stdout.contains("0 failed"), "stdout: {stdout}");
}

/// `lafd sweep --json` writes the same bytes the library produces, and a
/// second invocation reproduces them exactly.
#[test]
fn cli_sweep_json_is_deterministic() {
    let dir = std::env::temp_dir();
    let path_a = dir.join("lafd-sweep-test-a.json");
    let path_b = dir.join("lafd-sweep-test-b.json");
    for path in [&path_a, &path_b] {
        let out = lafd()
            .args([
                "sweep",
                "--threads",
                "2",
                "--protocols",
                "chain,ds",
                "--sizes",
                "4,7",
                "--seeds",
                "3",
                "--json",
                path.to_str().expect("utf8 temp path"),
            ])
            .output()
            .expect("run lafd");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = std::fs::read(&path_a).expect("read a");
    let b = std::fs::read(&path_b).expect("read b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "JSON reports differ between identical invocations");
    let _ = std::fs::remove_file(path_a);
    let _ = std::fs::remove_file(path_b);
}

/// Bad flags fail fast with a usage message, not a panic.
#[test]
fn cli_sweep_rejects_unknown_flags() {
    let out = lafd()
        .args(["sweep", "--bogus", "1"])
        .output()
        .expect("run lafd");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown sweep flag"), "stderr: {stderr}");
}
