//! Transport-agnosticism: the same protocol automata produce the same
//! message counts and outcomes on the deterministic simulator, the
//! lock-step thread cluster, and the localhost TCP cluster.

use local_auth_fd::core::fd::{ChainFdNode, ChainFdParams};
use local_auth_fd::core::keys::{KeyStore, Keyring};
use local_auth_fd::core::localauth::{KeyDistNode, KEYDIST_ROUNDS};
use local_auth_fd::core::metrics;
use local_auth_fd::core::Outcome;
use local_auth_fd::crypto::{SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::transport::{TcpCluster, ThreadCluster};
use local_auth_fd::simnet::{Node, NodeId, SyncNetwork};
use std::sync::Arc;

fn scheme() -> Arc<dyn SignatureScheme> {
    Arc::new(SchnorrScheme::test_tiny())
}

fn keydist_nodes(n: usize, seed: u64) -> Vec<Box<dyn Node>> {
    let sch = scheme();
    (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            let ring = Keyring::generate(sch.as_ref(), me, seed);
            Box::new(KeyDistNode::new(me, n, Arc::clone(&sch), ring, seed)) as Box<dyn Node>
        })
        .collect()
}

fn extract_stores(nodes: Vec<Box<dyn Node>>) -> Vec<KeyStore> {
    nodes
        .into_iter()
        .map(|b| {
            let node = b.into_any().downcast::<KeyDistNode>().expect("KeyDistNode");
            node.into_parts().0
        })
        .collect()
}

fn chain_fd_nodes(
    n: usize,
    t: usize,
    seed: u64,
    stores: &[KeyStore],
    value: &[u8],
) -> Vec<Box<dyn Node>> {
    let sch = scheme();
    (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            Box::new(ChainFdNode::new(
                me,
                ChainFdParams::new(n, t),
                Arc::clone(&sch),
                stores[i].clone(),
                Keyring::generate(sch.as_ref(), me, seed),
                (i == 0).then(|| value.to_vec()),
            )) as Box<dyn Node>
        })
        .collect()
}

fn extract_outcomes(nodes: Vec<Box<dyn Node>>) -> Vec<Outcome> {
    nodes
        .into_iter()
        .map(|b| {
            b.into_any()
                .downcast::<ChainFdNode>()
                .expect("ChainFdNode")
                .outcome()
                .clone()
        })
        .collect()
}

#[test]
fn keydist_same_counts_on_all_transports() {
    let (n, seed) = (5usize, 71u64);

    let mut sim = SyncNetwork::new(keydist_nodes(n, seed));
    sim.run_until_done(KEYDIST_ROUNDS);
    let sim_msgs = sim.stats().messages_total;

    let threads = ThreadCluster::new(KEYDIST_ROUNDS).run(keydist_nodes(n, seed));
    let tcp = TcpCluster::new(KEYDIST_ROUNDS).run(keydist_nodes(n, seed));

    assert_eq!(sim_msgs, metrics::keydist_messages(n));
    assert_eq!(threads.stats.messages_total, sim_msgs);
    assert_eq!(tcp.stats.messages_total, sim_msgs);

    // Stores agree across transports.
    let s_sim = extract_stores(sim.into_nodes());
    let s_thr = extract_stores(threads.nodes);
    let s_tcp = extract_stores(tcp.nodes);
    for i in 0..n {
        for peer in NodeId::all(n) {
            assert_eq!(s_sim[i].accepted(peer), s_thr[i].accepted(peer));
            assert_eq!(s_sim[i].accepted(peer), s_tcp[i].accepted(peer));
        }
    }
}

#[test]
fn chain_fd_same_outcomes_on_all_transports() {
    let (n, t, seed) = (6usize, 2usize, 73u64);
    // Key distribution once, on the simulator.
    let mut sim = SyncNetwork::new(keydist_nodes(n, seed));
    sim.run_until_done(KEYDIST_ROUNDS);
    let stores = extract_stores(sim.into_nodes());

    let rounds = ChainFdParams::new(n, t).rounds();
    let mut sim_fd = SyncNetwork::new(chain_fd_nodes(n, t, seed, &stores, b"v"));
    sim_fd.run_until_done(rounds);
    let sim_msgs = sim_fd.stats().messages_total;
    let sim_out = extract_outcomes(sim_fd.into_nodes());

    let thr = ThreadCluster::new(rounds).run(chain_fd_nodes(n, t, seed, &stores, b"v"));
    let tcp = TcpCluster::new(rounds).run(chain_fd_nodes(n, t, seed, &stores, b"v"));

    assert_eq!(sim_msgs, n - 1);
    assert_eq!(thr.stats.messages_total, sim_msgs);
    assert_eq!(tcp.stats.messages_total, sim_msgs);
    assert_eq!(extract_outcomes(thr.nodes), sim_out);
    assert_eq!(extract_outcomes(tcp.nodes), sim_out);
    for o in sim_out {
        assert_eq!(o, Outcome::Decided(b"v".to_vec()));
    }
}

#[test]
fn tcp_cluster_scales_to_a_dozen_nodes() {
    let (n, seed) = (12usize, 79u64);
    let tcp = TcpCluster::new(KEYDIST_ROUNDS).run(keydist_nodes(n, seed));
    assert_eq!(tcp.stats.messages_total, metrics::keydist_messages(n));
    let stores = extract_stores(tcp.nodes);
    for s in &stores {
        assert_eq!(s.accepted_count(), n);
    }
}
