//! Integration tests for the adversarial scheduler search: certificate
//! replay across seeds and strategies, report determinism, the
//! timing-faulted classification of search-induced schedules, and the
//! `lafd search` / `--link-latency` CLI surfaces.

use local_auth_fd::core::schedsearch::{replay, run_search, SearchConfig, Strategy};
use local_auth_fd::core::sweep::{Protocol, SweepOutcome};
use local_auth_fd::simnet::LatencySpec;
use std::process::Command;

/// Satellite contract: a found schedule re-executed on a fresh
/// `EventNetwork` reproduces identical message counts, bytes, and outcome
/// — ≥ 10 seeds, both strategies.
#[test]
fn schedule_certs_replay_identically_across_seeds_and_strategies() {
    for strategy in Strategy::ALL {
        for seed in 0..10u64 {
            let config = SearchConfig {
                strategy,
                budget: 5,
                ..SearchConfig::new(Protocol::ChainFd, 6, 1, seed)
            };
            let report = run_search(&config).expect("valid config");
            assert!(
                report.replay_ok,
                "{strategy} seed {seed}: in-search replay failed"
            );
            report.best.validate().expect("cert within latency bounds");
            // Independent replay from scratch (fresh cluster, fresh key
            // distribution, fresh network) must measure the same run.
            let replayed = replay(&report.best);
            assert_eq!(replayed.messages, report.best_messages, "{strategy} {seed}");
            assert_eq!(replayed.bytes, report.best_bytes, "{strategy} {seed}");
            assert_eq!(replayed.outcome, report.best_outcome, "{strategy} {seed}");
            assert_eq!(replayed.score, report.best_score, "{strategy} {seed}");
            // And replaying twice is idempotent.
            assert_eq!(replay(&report.best), replayed, "{strategy} {seed}");
        }
    }
}

/// Acceptance: the same search config yields byte-identical JSON and
/// markdown reports on every invocation, and never silent disagreement.
#[test]
fn search_reports_are_byte_deterministic() {
    for strategy in Strategy::ALL {
        let config = SearchConfig {
            strategy,
            budget: 12,
            ..SearchConfig::new(Protocol::ChainFd, 8, 2, 7)
        };
        let a = run_search(&config).expect("valid config");
        let b = run_search(&config).expect("valid config");
        assert_eq!(a.to_json(), b.to_json(), "{strategy}");
        assert_eq!(a.to_markdown(), b.to_markdown(), "{strategy}");
        assert!(!a.silent_found(), "{strategy}: paper property violated");
    }
}

/// Satellite fix: schedule-search runs are treated like timing-faulted
/// rows — an FD→BA fallback split under a search-induced schedule is
/// *discovered* (loud), never classified as silent disagreement, even
/// though no link fault was installed and the base network is unfaulted.
#[test]
fn search_induced_fallback_splits_classify_as_loud_not_silent() {
    let config = SearchConfig {
        budget: 30,
        ..SearchConfig::new(Protocol::FdToBa, 7, 2, 3)
    };
    let report = run_search(&config).expect("valid config");
    for episode in &report.episodes {
        assert_ne!(
            episode.outcome,
            SweepOutcome::SilentDisagreement,
            "search-induced schedule misclassified: {episode:?}"
        );
        // A loud disagreement implies the discovery evidence was counted.
        if episode.score.loud_disagreement {
            assert_eq!(episode.outcome, SweepOutcome::Discovered, "{episode:?}");
        }
    }
    // The adversarial scheduler does split the FD→BA fallback at this
    // shape — the point of the fix is that the split is loud.
    assert!(
        report.episodes.iter().any(|e| e.score.loud_disagreement
            || e.score.fallback_engaged
            || e.score.message_anomaly > 0),
        "no episode perturbed the run at all: {report:?}"
    );
}

/// The search also composes with a byzantine adversary: the scheduler
/// and a silent relay together still never produce silent disagreement.
#[test]
fn search_with_byzantine_relay_stays_loud() {
    use local_auth_fd::core::sweep::AdversaryKind;
    let config = SearchConfig {
        adversary: AdversaryKind::SilentRelay,
        budget: 8,
        ..SearchConfig::new(Protocol::ChainFd, 6, 1, 5)
    };
    let report = run_search(&config).expect("valid config");
    assert!(!report.silent_found());
    assert!(report.replay_ok);
}

/// Degenerate envelopes (`sync`) leave the scheduler no freedom: every
/// episode equals the clean baseline.
#[test]
fn sync_latency_gives_the_scheduler_no_power() {
    let config = SearchConfig {
        latency: LatencySpec::Synchronous,
        budget: 4,
        ..SearchConfig::new(Protocol::DolevStrong, 5, 1, 9)
    };
    let report = run_search(&config).expect("valid config");
    assert!(report.episodes.iter().all(|e| e.score.is_clean()));
    assert_eq!(report.best_outcome, SweepOutcome::AllDecided);
}

/// Regression: Dolev–Strong has no FD discovery channel of its own, and
/// an adversarial schedule can starve one node of every chain until past
/// its accept horizon. The node decides the default — but the late
/// arrivals are recorded as discovered timing violations, so the split
/// is loud. (Before the fix, post-decision arrivals were silently
/// ignored and small-`n` searches found genuine silent disagreement.)
#[test]
fn dolev_strong_starvation_is_loud_not_silent() {
    for seed in 1..=5u64 {
        let config = SearchConfig {
            budget: 25,
            ..SearchConfig::new(Protocol::DolevStrong, 6, 1, seed)
        };
        let report = run_search(&config).expect("valid config");
        assert!(!report.silent_found(), "seed {seed}: {report:?}");
        assert!(report.replay_ok, "seed {seed}");
    }
}

/// Under partial synchrony the envelope narrows at the GST boundary, and
/// an accepted perturbation can shift a message across it. The search
/// must still only emit certificates that validate against the actual
/// send rounds.
#[test]
fn psync_certs_stay_admissible() {
    for strategy in Strategy::ALL {
        for seed in [1u64, 2, 3] {
            let config = SearchConfig {
                latency: LatencySpec::PartialSynchrony { gst: 2, extra: 2 },
                strategy,
                budget: 10,
                ..SearchConfig::new(Protocol::ChainFd, 6, 1, seed)
            };
            let report = run_search(&config).expect("valid config");
            report
                .best
                .validate()
                .unwrap_or_else(|e| panic!("{strategy} seed {seed}: {e}"));
            assert!(report.replay_ok, "{strategy} seed {seed}");
            assert!(!report.silent_found(), "{strategy} seed {seed}");
        }
    }
}

fn lafd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lafd"))
}

/// `lafd search` smoke: exits zero, prints the report, and two identical
/// invocations write byte-identical JSON.
#[test]
fn cli_search_is_deterministic_and_green() {
    let dir = std::env::temp_dir();
    let path_a = dir.join("lafd-search-test-a.json");
    let path_b = dir.join("lafd-search-test-b.json");
    for path in [&path_a, &path_b] {
        let out = lafd()
            .args([
                "search",
                "chainfd",
                "--budget",
                "10",
                "--strategy",
                "random",
                "--seed",
                "7",
                "-n",
                "6",
                "--json",
                path.to_str().expect("utf8 temp path"),
            ])
            .output()
            .expect("run lafd");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("lafd search report"), "stdout: {stdout}");
        assert!(stdout.contains("silent disagreement never observed"));
    }
    let a = std::fs::read(&path_a).expect("read a");
    let b = std::fs::read(&path_b).expect("read b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "JSON reports differ between identical invocations");
    let _ = std::fs::remove_file(path_a);
    let _ = std::fs::remove_file(path_b);
}

/// `lafd search` with the greedy strategy also runs green.
#[test]
fn cli_search_greedy_smoke() {
    let out = lafd()
        .args([
            "search",
            "ba",
            "--budget",
            "6",
            "--strategy",
            "greedy",
            "-n",
            "7",
        ])
        .output()
        .expect("run lafd");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Satellite smoke: `lafd run --link-latency` slows one link, which the
/// chain protocol discovers; bad specs are rejected with range errors.
#[test]
fn cli_link_latency_smoke() {
    let out = lafd()
        .args(["run", "chain", "-n", "6", "--link-latency", "0:1:fixed:3"])
        .output()
        .expect("run lafd");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("engine = event"), "stdout: {stdout}");
    assert!(stdout.contains("1 link override(s)"), "stdout: {stdout}");
    assert!(stdout.contains("classification: discovered"));

    // Range validation: node id beyond n.
    let out = lafd()
        .args(["run", "chain", "-n", "6", "--link-latency", "7:1:fixed:3"])
        .output()
        .expect("run lafd");
    assert!(!out.status.success());
    // Engine contradiction is an error, not a silent override.
    let out = lafd()
        .args([
            "run",
            "chain",
            "-n",
            "6",
            "--engine",
            "sync",
            "--link-latency",
            "0:1:fixed:3",
        ])
        .output()
        .expect("run lafd");
    assert!(!out.status.success());
}

/// `lafd sweep --search` attaches search summaries to event rows and
/// stays deterministic.
#[test]
fn cli_sweep_search_axis_smoke() {
    let out = lafd()
        .args([
            "sweep",
            "--protocols",
            "chain",
            "--sizes",
            "5",
            "--seeds",
            "1",
            "--engines",
            "event",
            "--latencies",
            "jitter:1",
            "--search",
            "3:greedy",
            "--threads",
            "2",
        ])
        .output()
        .expect("run lafd");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("greedy:"), "stdout: {stdout}");
    assert!(stdout.contains("0 failed"), "stdout: {stdout}");
}
