//! Systematic failure-injection sweep: crash every possible node (and
//! every pair of nodes up to `t`) in every protocol, and assert the
//! paper's properties on the survivors. This is the exhaustive companion
//! to the targeted scenarios in `adversary_integration.rs`.

use local_auth_fd::core::adversary::{AdversarySpec, SilentNode};
use local_auth_fd::core::props::check_fd;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec};
use local_auth_fd::crypto::{SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::{Node, NodeId};
use std::sync::Arc;

fn scheme() -> Arc<dyn SignatureScheme> {
    Arc::new(SchnorrScheme::test_tiny())
}

fn crash_sub(crashed: Vec<NodeId>) -> impl FnMut(NodeId) -> Option<Box<dyn Node>> {
    move |id| {
        crashed
            .contains(&id)
            .then(|| Box::new(SilentNode { me: id }) as Box<dyn Node>)
    }
}

/// The same crash script as an [`AdversarySpec`] for the `RunSpec` path.
fn crash_adv(crashed: Vec<NodeId>) -> AdversarySpec {
    AdversarySpec::custom(move |id| {
        crashed
            .contains(&id)
            .then(|| Box::new(SilentNode { me: id }) as Box<dyn Node>)
    })
}

#[test]
fn chain_fd_single_crash_everywhere() {
    let (n, t) = (6usize, 2usize);
    for crash in 0..n {
        let c = Cluster::new(n, t, scheme(), 500 + crash as u64);
        let crash_id = NodeId(crash as u16);
        let kd = c.run_key_distribution_with(&mut crash_sub(vec![crash_id]));
        let spec = RunSpec::new(Protocol::ChainFd, b"v".to_vec())
            .with_adversary(crash_adv(vec![crash_id]));
        let run = c.run_with_keys(&spec, Some(&kd));
        let sender_correct = crash_id != NodeId(0);
        let report = check_fd(&run.correct_outcomes(), sender_correct.then_some(&b"v"[..]));
        assert!(report.all_ok(), "crash={crash_id}: {report:?}");
        // Crashing anyone on the critical path must be noticed.
        if crash <= t {
            assert!(report.any_discovery, "crash={crash_id} unnoticed");
        } else {
            // Crashing a leaf recipient is invisible to others — but the
            // leaf itself is faulty, so no property involves it.
            assert!(!report.any_discovery, "leaf crash should be invisible");
        }
    }
}

#[test]
fn chain_fd_double_crash_everywhere() {
    let (n, t) = (7usize, 2usize);
    for a in 0..n {
        for b in (a + 1)..n {
            let c = Cluster::new(n, t, scheme(), 600 + (a * n + b) as u64);
            let crashed = vec![NodeId(a as u16), NodeId(b as u16)];
            let kd = c.run_key_distribution_with(&mut crash_sub(crashed.clone()));
            let spec = RunSpec::new(Protocol::ChainFd, b"v".to_vec())
                .with_adversary(crash_adv(crashed.clone()));
            let run = c.run_with_keys(&spec, Some(&kd));
            let sender_correct = a != 0;
            let report = check_fd(&run.correct_outcomes(), sender_correct.then_some(&b"v"[..]));
            assert!(report.all_ok(), "crash={{P{a},P{b}}}: {report:?}");
        }
    }
}

#[test]
fn non_auth_single_crash_everywhere() {
    let (n, t) = (6usize, 2usize);
    for crash in 0..n {
        let c = Cluster::new(n, t, scheme(), 700 + crash as u64);
        let crash_id = NodeId(crash as u16);
        let spec = RunSpec::new(Protocol::NonAuthFd, b"v".to_vec())
            .with_adversary(crash_adv(vec![crash_id]));
        let run = c.run(&spec);
        let sender_correct = crash_id != NodeId(0);
        let report = check_fd(&run.correct_outcomes(), sender_correct.then_some(&b"v"[..]));
        assert!(report.all_ok(), "crash={crash_id}: {report:?}");
    }
}

#[test]
fn small_range_single_crash_everywhere_both_values() {
    let (n, t) = (6usize, 2usize);
    for crash in 0..n {
        for value in [vec![0u8], vec![1u8]] {
            let c = Cluster::new(n, t, scheme(), 800 + crash as u64);
            let crash_id = NodeId(crash as u16);
            let kd = c.run_key_distribution_with(&mut crash_sub(vec![crash_id]));
            let spec = RunSpec::new(Protocol::SmallRange, value.clone())
                .with_default_value(vec![0])
                .with_adversary(crash_adv(vec![crash_id]));
            let run = c.run_with_keys(&spec, Some(&kd));
            let sender_correct = crash_id != NodeId(0);
            let report = check_fd(
                &run.correct_outcomes(),
                sender_correct.then_some(&value[..]),
            );
            assert!(
                report.all_ok(),
                "crash={crash_id} value={value:?}: {report:?}"
            );
        }
    }
}

#[test]
fn dolev_strong_single_crash_agreement() {
    let (n, t) = (5usize, 2usize);
    for crash in 0..n {
        let c = Cluster::new(n, t, scheme(), 900 + crash as u64);
        let crash_id = NodeId(crash as u16);
        let kd = c.run_key_distribution_with(&mut crash_sub(vec![crash_id]));
        let spec = RunSpec::new(Protocol::DolevStrong, b"v".to_vec())
            .with_default_value(b"d".to_vec())
            .with_adversary(crash_adv(vec![crash_id]));
        let run = c.run_with_keys(&spec, Some(&kd));
        // DS is full BA (under these key stores): survivors must agree; and
        // must decide v when the sender is correct.
        let outs = run.correct_outcomes();
        let decided: Vec<_> = outs.iter().filter_map(|o| o.decided()).collect();
        assert!(!decided.is_empty());
        assert!(
            decided.windows(2).all(|w| w[0] == w[1]),
            "crash={crash_id}: DS agreement violated: {outs:?}"
        );
        if crash != 0 {
            assert_eq!(decided[0], b"v", "crash={crash_id}: DS validity");
        }
    }
}

#[test]
fn fd_to_ba_double_crash_agreement_and_validity() {
    // Up to t = 2 simultaneous crashes anywhere (n = 7 > 3t): BA must hold.
    let (n, t) = (7usize, 2usize);
    for a in 1..n {
        for b in (a + 1)..n {
            let c = Cluster::new(n, t, scheme(), 1000 + (a * n + b) as u64);
            let crashed = vec![NodeId(a as u16), NodeId(b as u16)];
            let kd = c.run_key_distribution_with(&mut crash_sub(crashed.clone()));
            let spec = RunSpec::new(Protocol::FdToBa, b"v".to_vec())
                .with_default_value(b"d".to_vec())
                .with_adversary(crash_adv(crashed.clone()));
            let run = c.run_with_keys(&spec, Some(&kd));
            let outs = run.correct_outcomes();
            for o in &outs {
                assert_eq!(
                    o.decided(),
                    Some(&b"v"[..]),
                    "crash={{P{a},P{b}}}: BA validity with correct sender: {outs:?}"
                );
            }
        }
    }
}

#[test]
fn vector_fd_single_crash_other_instances_survive() {
    use local_auth_fd::core::fd::{VectorFdNode, VectorFdParams};
    use local_auth_fd::core::keys::Keyring;
    use local_auth_fd::core::Outcome;
    use local_auth_fd::simnet::SyncNetwork;

    let (n, t) = (6usize, 1usize);
    for crash in 0..n {
        let c = Cluster::new(n, t, scheme(), 1100 + crash as u64);
        let crash_id = NodeId(crash as u16);
        let kd = c.run_key_distribution_with(&mut crash_sub(vec![crash_id]));
        let values: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8]).collect();
        let params = VectorFdParams::new(n, t);
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                if me == crash_id {
                    Box::new(SilentNode { me }) as Box<dyn Node>
                } else {
                    Box::new(VectorFdNode::new(
                        me,
                        params.clone(),
                        c.scheme.clone(),
                        kd.store(me).clone(),
                        Keyring::generate(c.scheme.as_ref(), me, c.seed),
                        values[i].clone(),
                    )) as Box<dyn Node>
                }
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(params.rounds());
        let survivors: Vec<Vec<Outcome>> = net
            .into_nodes()
            .into_iter()
            .filter(|b| b.id() != crash_id)
            .map(|b| {
                b.into_any()
                    .downcast::<VectorFdNode>()
                    .expect("VectorFdNode")
                    .outcomes()
                    .to_vec()
            })
            .collect();
        // Per instance: F1-F3 hold among the survivors. Instances whose
        // rotated chain avoids the crashed node decide everywhere; the
        // others are discovered, never silently split.
        for s in 0..n {
            let instance_outcomes: Vec<Outcome> = survivors.iter().map(|o| o[s].clone()).collect();
            let sender_correct = NodeId(s as u16) != crash_id;
            let report = check_fd(&instance_outcomes, sender_correct.then_some(&values[s][..]));
            assert!(report.all_ok(), "crash={crash_id} instance={s}: {report:?}");
        }
    }
}
