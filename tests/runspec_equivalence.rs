//! API-equivalence suite for the `RunSpec` redesign: for every admissible
//! `(protocol × adversary × engine)` cell, the unified
//! `Cluster::run(&RunSpec)` path must produce a byte-identical
//! [`FdRunReport`](local_auth_fd::core::runner::FdRunReport) (compared as
//! deterministic JSON) to the pre-redesign call path
//! (`run_keydist_for` + `run_protocol_with` + a hand-built substitution
//! closure) — and a [`Session`] must amortize exactly one key
//! distribution across any number of runs (paper Fig. 1 economics).

use local_auth_fd::core::adversary::{AdversaryKind, AdversarySpec};
use local_auth_fd::core::metrics;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::schedsearch::{run_search, run_search_parallel, SearchConfig, Strategy};
use local_auth_fd::core::spec::{Protocol, RunSpec, Session};
use local_auth_fd::crypto::SchnorrScheme;
use local_auth_fd::simnet::Engine;
use std::sync::Arc;

const N: usize = 9;
const T: usize = 2; // admissible for the whole protocol lineup (n > 4t)
const VALUE: &[u8] = b"equivalence-check";
const DEFAULT: &[u8] = b"equivalence-default";

fn cluster(engine: Engine, seed: u64) -> Cluster {
    Cluster::new(N, T, Arc::new(SchnorrScheme::test_tiny()), seed).with_engine(engine)
}

/// The legacy half of the suite needs the deprecated shims, which only
/// exist behind `--features compat`; the redesign-only tests below run
/// unconditionally.
#[cfg(feature = "compat")]
mod legacy {
    #![allow(deprecated)]

    use super::{cluster, DEFAULT, VALUE};
    use local_auth_fd::core::adversary::{
        AdversaryKind, AdversarySpec, ChainFdAdversary, ChainMisbehavior, CrashNode, SilentNode,
    };
    use local_auth_fd::core::fd::{ChainFdNode, ChainFdParams};
    use local_auth_fd::core::runner::{Cluster, KeyDistReport};
    use local_auth_fd::core::spec::{Protocol, RunSpec};
    use local_auth_fd::core::sweep::{run_keydist_for, run_protocol_with};
    use local_auth_fd::simnet::{Engine, Node, NodeId};
    use std::sync::Arc;

    /// The PR 3 substitution closures, reconstructed verbatim (same automata,
    /// same planted constants, same relay `P_1`) so the old call path is
    /// exercised exactly as the sweep engine used to drive it.
    fn legacy_substitution<'a>(
        kind: AdversaryKind,
        cluster: &'a Cluster,
        keydist: &'a Option<KeyDistReport>,
    ) -> Box<dyn FnMut(NodeId) -> Option<Box<dyn Node>> + 'a> {
        let relay = NodeId(1);
        match kind {
            AdversaryKind::None => Box::new(|_| None),
            AdversaryKind::SilentRelay => Box::new(move |id: NodeId| {
                (id == relay).then(|| Box::new(SilentNode { me: relay }) as Box<dyn Node>)
            }),
            AdversaryKind::CrashRelay => Box::new(move |id: NodeId| {
                (id == relay).then(|| {
                    let honest = Box::new(ChainFdNode::new(
                        relay,
                        ChainFdParams::new(cluster.n, cluster.t),
                        Arc::clone(&cluster.scheme),
                        keydist.as_ref().expect("keys").store(relay).clone(),
                        cluster.keyring(relay),
                        None,
                    )) as Box<dyn Node>;
                    Box::new(CrashNode::new(honest, 1, 0)) as Box<dyn Node>
                })
            }),
            AdversaryKind::TamperBody
            | AdversaryKind::ForgeOrigin
            | AdversaryKind::WrongAssignee => Box::new(move |id: NodeId| {
                (id == relay).then(|| {
                    let misbehavior = match kind {
                        AdversaryKind::TamperBody => ChainMisbehavior::TamperBody {
                            new_body: b"sweep-tampered".to_vec(),
                        },
                        AdversaryKind::ForgeOrigin => ChainMisbehavior::ForgeOrigin {
                            value: b"sweep-forged".to_vec(),
                        },
                        _ => ChainMisbehavior::WrongAssigneeName {
                            claim: NodeId((cluster.n - 1) as u16),
                        },
                    };
                    Box::new(ChainFdAdversary::new(
                        relay,
                        ChainFdParams::new(cluster.n, cluster.t),
                        Arc::clone(&cluster.scheme),
                        cluster.keyring(relay),
                        misbehavior,
                        None,
                    )) as Box<dyn Node>
                })
            }),
            AdversaryKind::Equivocate => {
                unreachable!("Equivocate postdates the legacy path; not compared")
            }
        }
    }

    #[test]
    fn every_cell_matches_the_legacy_call_path_byte_for_byte() {
        let mut cells = 0usize;
        for engine in [Engine::Sync, Engine::Event] {
            for protocol in Protocol::ALL {
                for kind in AdversaryKind::ALL {
                    if !kind.applies_to(protocol) || kind == AdversaryKind::Equivocate {
                        continue;
                    }
                    let c = cluster(engine, 42);

                    // Old path: hand-threaded keydist + dispatch + closure.
                    let keydist = run_keydist_for(&c, protocol);
                    let mut substitute = legacy_substitution(kind, &c, &keydist);
                    let old = run_protocol_with(
                        &c,
                        protocol,
                        keydist.as_ref(),
                        VALUE.to_vec(),
                        DEFAULT.to_vec(),
                        &mut *substitute,
                    );
                    drop(substitute);

                    // New path: one spec, one entry point.
                    let spec = RunSpec::new(protocol, VALUE.to_vec())
                        .with_default_value(DEFAULT.to_vec())
                        .with_adversary(AdversarySpec::scripted(kind));
                    let new = c.run(&spec);

                    assert_eq!(
                        old.to_json(),
                        new.to_json(),
                        "{engine:?}/{protocol}/{kind}: paths diverged"
                    );
                    cells += 1;
                }
            }
        }
        // 7 protocols × honest + silent, plus 4 chain-only kinds, × 2 engines.
        assert_eq!(cells, (7 * 2 + 4) * 2, "cell coverage changed unexpectedly");
    }
}
#[test]
fn session_reuses_the_one_shot_keydist_exactly() {
    // A Session's cached keydist is the same keydist Cluster::run would
    // derive, so one-shot and amortized runs are byte-identical.
    for engine in [Engine::Sync, Engine::Event] {
        let c = cluster(engine, 7);
        let spec = RunSpec::new(Protocol::DolevStrong, VALUE.to_vec())
            .with_default_value(DEFAULT.to_vec());
        let one_shot = c.run(&spec);
        let mut session = Session::new(c);
        let first = session.run(&spec);
        let second = session.run(&spec);
        assert_eq!(one_shot.to_json(), first.to_json());
        assert_eq!(first.to_json(), second.to_json());
        assert_eq!(session.keydist_runs(), 1);
    }
}

#[test]
fn session_amortizes_chain_fd_like_paper_fig_1() {
    let k = 12usize;
    let mut session = Session::new(cluster(Engine::Sync, 99));
    for i in 0..k {
        let run = session.run(&RunSpec::new(Protocol::ChainFd, vec![i as u8]));
        assert!(run.all_decided(&[i as u8]));
    }
    // The paper's amortization, as stats assertions: exactly one keydist,
    // and the cumulative cost is 3n(n−1) + k(n−1).
    assert_eq!(session.keydist_runs(), 1, "keydist must run exactly once");
    assert_eq!(session.runs(), k);
    assert_eq!(
        session.keydist_messages(),
        Some(metrics::keydist_messages(N))
    );
    assert_eq!(
        session.messages_spent(),
        metrics::keydist_messages(N) + k * metrics::chain_fd_messages(N)
    );
    // Past the crossover the amortized total beats the non-auth baseline.
    let k_star = metrics::amortization_crossover(N, T).expect("finite crossover");
    assert!(k >= k_star, "test horizon must cover the crossover");
    assert!(session.messages_spent() < metrics::cumulative_non_auth(N, T, k));
}

#[test]
fn search_reports_are_thread_count_invariant() {
    for strategy in Strategy::ALL {
        let config = SearchConfig {
            strategy,
            budget: 9,
            ..SearchConfig::new(Protocol::ChainFd, 6, 1, 5)
        };
        let serial = run_search(&config).expect("valid config");
        for threads in [2usize, 8] {
            let parallel = run_search_parallel(&config, threads).expect("valid config");
            assert_eq!(
                serial.to_json(),
                parallel.to_json(),
                "{strategy}: report changed at {threads} threads"
            );
        }
        assert!(serial.replay_ok);
    }
}

#[test]
fn equivocate_kind_is_loud_on_both_engines() {
    // The one post-redesign adversary kind has no legacy twin; its
    // contract is the paper's: discovered, never silently split.
    for engine in [Engine::Sync, Engine::Event] {
        let c = cluster(engine, 11);
        let run = c.run(
            &RunSpec::new(Protocol::ChainFd, VALUE.to_vec())
                .with_adversary(AdversarySpec::scripted(AdversaryKind::Equivocate)),
        );
        let decided: std::collections::BTreeSet<Vec<u8>> = run
            .correct_outcomes()
            .iter()
            .filter_map(|o| o.decided().map(<[u8]>::to_vec))
            .collect();
        assert!(run.any_discovery(), "{engine:?}: equivocation unnoticed");
        assert!(
            decided.len() <= 1 || run.any_discovery(),
            "{engine:?}: silent disagreement"
        );
    }
}
