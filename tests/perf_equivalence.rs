//! Tier-1 guards for the hot-path allocation work: sharing key material
//! and payload buffers is an *allocation* optimization, never a semantic
//! one.
//!
//! * Arc-backed payloads + shared predicate tables + the per-run verify
//!   cache must produce byte-identical [`FdRunReport::to_json`] across
//!   ≥ 20 `(protocol × adversary × engine)` cells, compared against a
//!   deliberately unshared reference execution (every store entry
//!   deep-copied into a fresh allocation).
//! * Sweep reports stay byte-deterministic across repeats and thread
//!   counts on both engines.
//! * The large-`n` key-store memory profile is `O(n)` distinct key
//!   allocations (the ROADMAP item this PR closes), asserted by counting
//!   shared-table reference counts at n = 2048.

use local_auth_fd::core::adversary::{AdversaryKind, AdversarySpec};
use local_auth_fd::core::keys::KeyStore;
use local_auth_fd::core::runner::{Cluster, KeyDistReport};
use local_auth_fd::core::spec::{Protocol, RunSpec, Session};
use local_auth_fd::core::sweep::{run_sweep, SweepMatrix};
use local_auth_fd::crypto::{PublicKey, SchnorrScheme};
use local_auth_fd::simnet::{Engine, NodeId};
use std::sync::Arc;

fn cluster(n: usize, t: usize, engine: Engine) -> Cluster {
    Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), 77).with_engine(engine)
}

/// Rebuild a key distribution report with every accepted predicate
/// deep-copied into a fresh private allocation and the predicate table
/// dropped — the "seed behaviour" reference with zero sharing.
fn unshared(kd: &KeyDistReport, n: usize) -> KeyDistReport {
    let stores = kd
        .stores
        .iter()
        .map(|slot| {
            slot.as_ref().map(|store| {
                let mut fresh = KeyStore::new(n, store.owner());
                for i in 0..n {
                    let node = NodeId(i as u16);
                    if let Some(pk) = store.accepted(node) {
                        fresh.accept(node, PublicKey(pk.0.clone()));
                    }
                }
                fresh
            })
        })
        .collect();
    KeyDistReport {
        stores,
        stats: kd.stats.clone(),
        anomalies: kd.anomalies.clone(),
        predicates: None,
    }
}

#[test]
fn shared_and_unshared_key_material_agree_across_cells() {
    let (n, t) = (7usize, 2usize);
    let keyed = [
        Protocol::ChainFd,
        Protocol::SmallRange,
        Protocol::DolevStrong,
        Protocol::Degradable,
        Protocol::FdToBa,
    ];
    let mut cells = 0;
    for engine in [Engine::Sync, Engine::Event] {
        for protocol in keyed {
            for kind in AdversaryKind::ALL {
                if !kind.applies_to(protocol) {
                    continue;
                }
                let spec = RunSpec::new(protocol, b"perf-eq".to_vec())
                    .with_default_value(b"perf-default".to_vec())
                    .with_adversary(AdversarySpec::scripted(kind));
                let c = cluster(n, t, engine);
                let kd = c.setup_keydist();
                let shared_json = c.run_with_keys(&spec, Some(&kd)).to_json();
                let unshared_kd = unshared(&kd, n);
                let unshared_json = c.run_with_keys(&spec, Some(&unshared_kd)).to_json();
                assert_eq!(
                    shared_json,
                    unshared_json,
                    "{protocol} × {} × {engine}: sharing changed behaviour",
                    kind.name()
                );
                cells += 1;
            }
        }
    }
    assert!(cells >= 20, "only {cells} cells exercised");
}

#[test]
fn observability_never_changes_report_bytes_across_cells() {
    // The PR7 counterpart of the sharing guard: a cluster running with
    // phase observability on (round marks, verify timing, cache counters)
    // must produce byte-identical `to_json` output — `phases` is a local
    // observation, never a report surface.
    let (n, t) = (7usize, 2usize);
    let protocols = [
        Protocol::ChainFd,
        Protocol::SmallRange,
        Protocol::DolevStrong,
        Protocol::Degradable,
        Protocol::FdToBa,
        Protocol::NonAuthFd,
    ];
    let mut cells = 0;
    for engine in [Engine::Sync, Engine::Event] {
        for protocol in protocols {
            for kind in AdversaryKind::ALL {
                if !kind.applies_to(protocol) {
                    continue;
                }
                let spec = RunSpec::new(protocol, b"obs-eq".to_vec())
                    .with_default_value(b"obs-default".to_vec())
                    .with_adversary(AdversarySpec::scripted(kind));
                let plain = cluster(n, t, engine).run(&spec).to_json();
                let observed_run = cluster(n, t, engine).with_obs().run(&spec);
                assert!(
                    observed_run.phases.is_some(),
                    "{protocol} × {} × {engine}: obs cluster must record phases",
                    kind.name()
                );
                assert_eq!(
                    plain,
                    observed_run.to_json(),
                    "{protocol} × {} × {engine}: observability changed behaviour",
                    kind.name()
                );
                cells += 1;
            }
        }
    }
    assert!(cells >= 20, "only {cells} cells exercised");
}

#[test]
fn ds_fast_path_matches_unbatched_reference_at_scale() {
    // The PR8 flattening guard at protocol scale: the Dolev–Strong hot
    // path (compressed broadcasts through the flat delivery ring, cohort
    // signature batching in the verify cache) against a deliberately
    // unbatched reference — every delivery forced through the binary
    // heap, cohort verdicts disabled so every envelope is validated
    // individually. Reports must be byte-identical.
    use local_auth_fd::core::keys::VerifyCache;
    for n in [256usize, 1024] {
        let t = 1usize;
        let spec = RunSpec::new(Protocol::DolevStrong, b"ds-eq".to_vec())
            .with_default_value(b"ds-default".to_vec());
        let fast = cluster(n, t, Engine::Event);
        let kd = fast.dealer_keydist();
        let fast_run = fast.run_with_keys(&spec, Some(&kd));
        let reference = cluster(n, t, Engine::Event)
            .with_reference_scheduler(true)
            .with_verify_cache(VerifyCache::new().without_cohorts());
        let ref_run = reference.run_with_keys(&spec, Some(&kd));
        assert_eq!(
            fast_run.to_json(),
            ref_run.to_json(),
            "n={n}: fast path changed the report"
        );
        assert_eq!(fast_run.grades, ref_run.grades, "n={n}");
        assert_eq!(fast_run.outcomes, ref_run.outcomes, "n={n}");
        assert!(fast_run.all_decided(b"ds-eq"), "n={n}");
        assert_eq!(
            fast_run.stats.messages_total,
            local_auth_fd::core::metrics::dolev_strong_messages(n),
            "n={n}"
        );
    }
}

#[test]
fn key_free_protocols_unaffected_by_key_sharing_machinery() {
    for engine in [Engine::Sync, Engine::Event] {
        for protocol in [Protocol::NonAuthFd, Protocol::PhaseKing] {
            let spec = RunSpec::new(protocol, b"perf-eq".to_vec())
                .with_default_value(b"perf-default".to_vec());
            let a = cluster(9, 2, engine).run(&spec).to_json();
            let b = cluster(9, 2, engine).run(&spec).to_json();
            assert_eq!(a, b, "{protocol} × {engine}");
        }
    }
}

#[test]
fn sweep_reports_stay_byte_deterministic_on_both_engines() {
    let matrix = SweepMatrix {
        engines: vec![Engine::Sync, Engine::Event],
        sizes: vec![4, 6],
        ..SweepMatrix::quick()
    };
    let first = run_sweep(&matrix, 1);
    let second = run_sweep(&matrix, 8);
    assert_eq!(first.to_json(), second.to_json());
    assert_eq!(first.to_markdown(), second.to_markdown());
    assert!(first.all_ok(), "failures: {:?}", first.failures());
    // Event rows under synchronous latency cross-validate against the
    // sync engine inside the sweep itself; all must have matched.
    assert!(first.rows.iter().all(|r| r.cross_ok));
}

#[test]
fn keydist_interns_announcements_into_one_shared_table() {
    // The full Fig. 1 protocol: every store's accepted predicates must be
    // handles into the run's shared table — zero private allocations in
    // the honest case.
    let n = 96;
    let kd = cluster(n, 2, Engine::Sync).run_key_distribution();
    let table = kd.predicates.as_ref().expect("keydist attaches its table");
    assert_eq!(table.fresh_count(), 0, "honest announcements all interned");
    assert_eq!(table.distinct_allocations(), n);
    // Every node interns n predicates (n − 1 announcements + its own).
    assert_eq!(table.interned_count(), n * n);
    for node in NodeId::all(n) {
        // n stores hold the entry, plus the table's own handle.
        assert_eq!(table.ref_count(node), Some(n + 1), "{node}");
    }
    for store in kd.stores.iter().flatten() {
        assert_eq!(store.accepted_count(), n);
    }
}

#[test]
fn n2048_key_stores_are_built_from_linear_distinct_allocations() {
    // The ROADMAP "large-n memory profile" item: at n = 2048 the per-node
    // stores used to hold O(n²) independently allocated keys. With the
    // shared predicate table, 2048 stores × 2048 entries are all handles
    // onto 2048 distinct allocations.
    let n = 2048;
    let c = cluster(n, 1, Engine::Sync);
    let kd = c.dealer_keydist();
    let table = kd.predicates.as_ref().expect("dealer keydist shares");
    assert_eq!(table.distinct_allocations(), n);
    for node in NodeId::all(n) {
        assert_eq!(table.ref_count(node), Some(n + 1), "{node}");
    }
    // A protocol run clones every store once more (n more handles per
    // key), still without allocating any new key material.
    let mut session = Session::with_keydist(c, kd);
    let run = session.run(&RunSpec::new(Protocol::ChainFd, b"large-n".to_vec()));
    assert!(run.all_decided(b"large-n"));
    let table = session
        .keydist_report()
        .and_then(|kd| kd.predicates.clone())
        .expect("table survives the session");
    assert_eq!(table.distinct_allocations(), n, "runs allocate no keys");
}
