//! Cross-validation of the deployment layer: `lafd cluster` runs one OS
//! process per node over the discovery registry and the non-blocking
//! socket mesh, and its report (the last stdout line) must be
//! **byte-identical** to the same `RunSpec` executed in-process by the
//! reference engine. A vanished worker must surface as a loud error and a
//! nonzero exit, never a silent hang.

use local_auth_fd::core::spec::{Protocol, SpecBuilder};
use std::process::Command;

const SEED: u64 = 23;

/// The builder `lafd cluster <proto> -n N --seed SEED` constructs (the
/// defaults of `parse_cluster`: input "attack at dawn", default value
/// "default").
fn cluster_builder(protocol: Protocol, n: usize) -> SpecBuilder {
    SpecBuilder::new(protocol, n)
        .with_seed(SEED)
        .with_input(b"attack at dawn".to_vec())
        .with_default_value(b"default".to_vec())
}

/// Run `lafd cluster` and return (last stdout line, full stderr, success).
fn run_cluster(args: &[&str], kill_node: Option<usize>) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lafd"));
    cmd.arg("cluster").args(args);
    if let Some(victim) = kill_node {
        cmd.env("LAFD_CLUSTER_KILL_NODE", victim.to_string());
    }
    let out = cmd.output().expect("spawn lafd cluster");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    let last = stdout.lines().last().unwrap_or_default().to_string();
    (last, stderr, out.status.success())
}

fn assert_cluster_matches_sync_engine(protocol: Protocol, proto_flag: &str, n: usize) {
    let (cluster, spec) = cluster_builder(protocol, n).build().expect("valid spec");
    let expected = cluster.run(&spec).to_json();
    let (last, stderr, ok) = run_cluster(
        &[
            proto_flag,
            "-n",
            &n.to_string(),
            "--seed",
            &SEED.to_string(),
            "--io-deadline-secs",
            "30",
        ],
        None,
    );
    assert!(ok, "lafd cluster {proto_flag} -n {n} failed: {stderr}");
    assert_eq!(
        last, expected,
        "multi-process report for {proto_flag} n = {n} diverged from the sync engine"
    );
}

#[test]
fn chain_fd_cluster_reports_are_byte_identical_to_the_sync_engine() {
    for n in [4, 7] {
        assert_cluster_matches_sync_engine(Protocol::ChainFd, "chain", n);
    }
}

#[test]
fn dolev_strong_cluster_reports_are_byte_identical_to_the_sync_engine() {
    for n in [4, 7] {
        assert_cluster_matches_sync_engine(Protocol::DolevStrong, "ds", n);
    }
}

#[test]
fn latency_shim_stretches_wall_time_without_changing_the_report() {
    // The delay shim scales event-engine latency ticks onto the socket
    // mesh's wall clock; the protocol-visible round structure (and hence
    // the report) must stay exactly the synchronous one.
    let (cluster, spec) = cluster_builder(Protocol::ChainFd, 4)
        .build()
        .expect("valid spec");
    let expected = cluster.run(&spec).to_json();
    let (last, stderr, ok) = run_cluster(
        &[
            "chain",
            "-n",
            "4",
            "--seed",
            &SEED.to_string(),
            "--latency",
            "jitter:2",
            "--round-wall-us",
            "1000",
            "--io-deadline-secs",
            "30",
        ],
        None,
    );
    assert!(ok, "shimmed cluster run failed: {stderr}");
    assert_eq!(last, expected, "the delay shim must not alter the report");
}

#[test]
fn crash_adversary_flows_through_the_cluster_path() {
    let builder = cluster_builder(Protocol::FdToBa, 4).with_adversary(
        local_auth_fd::core::adversary::AdversarySpec::scripted_at(
            local_auth_fd::core::sweep::AdversaryKind::SilentRelay,
            vec![local_auth_fd::simnet::NodeId(1)],
        ),
    );
    let (cluster, spec) = builder.build().expect("valid spec");
    let expected = cluster.run(&spec).to_json();
    let (last, stderr, ok) = run_cluster(
        &[
            "ba",
            "-n",
            "4",
            "--seed",
            &SEED.to_string(),
            "--crash",
            "1",
            "--io-deadline-secs",
            "30",
        ],
        None,
    );
    assert!(ok, "cluster run with --crash failed: {stderr}");
    assert_eq!(last, expected);
}

#[test]
fn a_killed_worker_fails_loudly_with_a_nonzero_exit() {
    let (_, stderr, ok) = run_cluster(
        &[
            "chain",
            "-n",
            "4",
            "--seed",
            &SEED.to_string(),
            "--io-deadline-secs",
            "10",
        ],
        Some(2),
    );
    assert!(!ok, "a vanished worker must produce a nonzero exit code");
    assert!(
        stderr.contains("worker 2"),
        "the error must name the vanished worker, got: {stderr}"
    );
    assert!(
        stderr.contains("aborted"),
        "the orchestrator must announce the abort, got: {stderr}"
    );
}
