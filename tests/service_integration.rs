//! Integration tests for the sharded session service behind `lafd serve`.
//!
//! These assert the PR's acceptance economics end to end: a 200-run
//! mixed-protocol batch on a 2-shard service performs **exactly two** key
//! distributions (one per `(n, scheme, seed)` session universe), every
//! response report is byte-identical to the same `RunSpec` executed via a
//! direct `Cluster::run`, concurrent clients never duplicate keydist
//! work, and shutdown drains cleanly with consistent final metrics.

use local_auth_fd::core::service::{FdService, ServiceConfig};
use local_auth_fd::core::spec::{Protocol, SpecBuilder};
use local_auth_fd::core::wire::{self, Value};
use std::io::Write;
use std::process::{Command, Stdio};

/// The five-protocol mix the batch cycles through. Four need keys; the
/// non-authenticated FD rides along key-free, so a correct pool pays for
/// keydist on first keyed use only.
const MIX: [Protocol; 5] = [
    Protocol::ChainFd,
    Protocol::FdToBa,
    Protocol::NonAuthFd,
    Protocol::Degradable,
    Protocol::DolevStrong,
];

/// A second cluster size that routes to the *other* shard of a 2-shard
/// service (so the batch exercises both workers).
fn partner_n(service: &FdService, n_a: usize) -> usize {
    let home = service.shard_of(n_a, "tiny");
    (5..=16)
        .find(|&n| n != n_a && service.shard_of(n, "tiny") != home)
        .expect("some n in 5..=16 routes to the other shard")
}

fn builder_for(i: usize, n_a: usize, n_b: usize) -> SpecBuilder {
    let n = if i.is_multiple_of(2) { n_a } else { n_b };
    SpecBuilder::new(MIX[i % MIX.len()], n)
        .with_seed(5)
        .with_input(format!("value-{i}").into_bytes())
}

#[test]
fn two_hundred_mixed_runs_on_two_shards_pay_exactly_two_keydists() {
    let service = FdService::start(ServiceConfig {
        shards: 2,
        max_sessions: 8,
    });
    let n_a = 6;
    let n_b = partner_n(&service, n_a);
    let builders: Vec<SpecBuilder> = (0..200).map(|i| builder_for(i, n_a, n_b)).collect();
    let lines: Vec<String> = builders
        .iter()
        .enumerate()
        .map(|(i, b)| wire::request_to_json(b, Some(&format!("req-{i}"))).unwrap())
        .collect();

    // Eight parallel clients against the two shards.
    let responses = service.submit_batch(&lines, 8);
    assert_eq!(responses.len(), 200);

    let mut fresh_keydists = 0usize;
    for (i, line) in responses.iter().enumerate() {
        let response = wire::response_from_json(line)
            .unwrap_or_else(|e| panic!("response {i} unparseable: {e}\n{line}"));
        assert_eq!(response.id.as_deref(), Some(format!("req-{i}").as_str()));
        assert!(response.report.is_ok(), "request {i} failed");
        // Key economics: only keyed protocols carry keydist metadata, and
        // only the first keyed run per session universe pays for it.
        let needs_keys = MIX[i % MIX.len()].needs_keys();
        assert_eq!(response.keydist_messages.is_some(), needs_keys);
        if needs_keys && !response.keydist_reused {
            fresh_keydists += 1;
        }
        // Byte-identity: the pooled-session path must be invisible in the
        // report bytes relative to a direct one-shot `Cluster::run`.
        let (cluster, spec) = builders[i].build().unwrap();
        assert_eq!(
            response.report_json,
            cluster.run(&spec).to_json(),
            "request {i} ({}) diverged from the direct path",
            MIX[i % MIX.len()]
        );
    }
    assert_eq!(
        fresh_keydists, 2,
        "two session universes -> exactly two keydist setups"
    );

    let metrics = Value::parse(&service.shutdown()).unwrap();
    let svc = metrics.get("service").unwrap();
    assert_eq!(svc.get("shards").unwrap().as_int(), Some(2));
    assert_eq!(svc.get("runs").unwrap().as_int(), Some(200));
    assert_eq!(svc.get("errors").unwrap().as_int(), Some(0));
    assert_eq!(svc.get("keydist_runs").unwrap().as_int(), Some(2));
    // 4 of 5 protocols are keyed: 160 keyed runs, 2 warm-ups, 158 reuses.
    assert_eq!(svc.get("keydist_reused").unwrap().as_int(), Some(158));
    assert_eq!(svc.get("keydist_reuse_pct").unwrap().as_int(), Some(98));
    assert_eq!(svc.get("evictions").unwrap().as_int(), Some(0));
    assert!(svc.get("p50_us").unwrap().as_int().unwrap() > 0);
    assert!(svc.get("p99_us").unwrap().as_int().unwrap() > 0);
    // The per-cell rows stay bench-shaped and account for every run.
    let rows = metrics.get("results").unwrap().as_arr().unwrap();
    let total: i128 = rows
        .iter()
        .map(|row| row.get("runs").unwrap().as_int().unwrap())
        .sum();
    assert_eq!(total, 200);
}

#[test]
fn racing_clients_never_duplicate_the_keydist() {
    let service = FdService::start(ServiceConfig {
        shards: 2,
        max_sessions: 8,
    });
    // Eight clients race 5 requests each into the *same* session
    // universe; shard serialization must warm exactly one keydist.
    std::thread::scope(|scope| {
        for client in 0..8 {
            let service = &service;
            scope.spawn(move || {
                for k in 0..5 {
                    let line = wire::request_to_json(
                        &SpecBuilder::new(Protocol::ChainFd, 6)
                            .with_seed(9)
                            .with_input(vec![client as u8, k as u8]),
                        Some(&format!("c{client}-{k}")),
                    )
                    .unwrap();
                    let response = wire::response_from_json(&service.submit_line(&line)).unwrap();
                    assert_eq!(
                        response.id.as_deref(),
                        Some(format!("c{client}-{k}").as_str())
                    );
                    assert!(response
                        .report
                        .unwrap()
                        .all_decided(&[client as u8, k as u8]));
                }
            });
        }
        // Live metrics snapshot while clients are in flight must parse.
        let live = Value::parse(&service.metrics_json()).unwrap();
        assert!(live
            .get("service")
            .unwrap()
            .get("runs")
            .unwrap()
            .as_int()
            .is_some());
    });
    let metrics = Value::parse(&service.shutdown()).unwrap();
    let svc = metrics.get("service").unwrap();
    assert_eq!(svc.get("runs").unwrap().as_int(), Some(40));
    assert_eq!(svc.get("errors").unwrap().as_int(), Some(0));
    assert_eq!(svc.get("keydist_runs").unwrap().as_int(), Some(1));
    assert_eq!(svc.get("keydist_reused").unwrap().as_int(), Some(39));
}

#[test]
fn shutdown_drains_queued_work_and_reports_every_run() {
    let service = FdService::start(ServiceConfig {
        shards: 2,
        max_sessions: 4,
    });
    // Saturate both shards from more clients than workers, then drain.
    let lines: Vec<String> = (0..60)
        .map(|i| wire::request_to_json(&builder_for(i, 5, 6), Some(&format!("d{i}"))).unwrap())
        .collect();
    let responses = service.submit_batch(&lines, 12);
    for (i, line) in responses.iter().enumerate() {
        let response = wire::response_from_json(line).unwrap();
        assert!(
            response.report.is_ok(),
            "request {i} failed during drain test"
        );
    }
    let metrics = Value::parse(&service.shutdown()).unwrap();
    let svc = metrics.get("service").unwrap();
    assert_eq!(
        svc.get("runs").unwrap().as_int(),
        Some(60),
        "drain lost runs"
    );
    assert_eq!(svc.get("errors").unwrap().as_int(), Some(0));
}

/// End-to-end CLI check: `lafd serve --stdin` over a 50-spec batch writes
/// ordered responses to stdout and a parseable metrics artifact.
#[test]
fn serve_stdin_batch_cli_round_trip() {
    let metrics_path =
        std::env::temp_dir().join(format!("lafd-serve-metrics-{}.json", std::process::id()));
    let mut child = Command::new(env!("CARGO_BIN_EXE_lafd"))
        .args([
            "serve",
            "--stdin",
            "--shards",
            "2",
            "--clients",
            "4",
            "--metrics",
        ])
        .arg(&metrics_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lafd serve");
    {
        let stdin = child.stdin.as_mut().unwrap();
        for i in 0..50 {
            let line =
                wire::request_to_json(&builder_for(i, 5, 6), Some(&format!("cli-{i}"))).unwrap();
            writeln!(stdin, "{line}").unwrap();
        }
    }
    let output = child.wait_with_output().expect("lafd serve exits");
    assert!(
        output.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    let responses: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(responses.len(), 50);
    for (i, line) in responses.iter().enumerate() {
        let response = wire::response_from_json(line).unwrap();
        assert_eq!(response.id.as_deref(), Some(format!("cli-{i}").as_str()));
        assert!(response.report.is_ok(), "cli request {i} failed");
    }
    let metrics_text = std::fs::read_to_string(&metrics_path).expect("metrics artifact written");
    let metrics = Value::parse(&metrics_text).unwrap();
    let svc = metrics.get("service").unwrap();
    assert_eq!(svc.get("runs").unwrap().as_int(), Some(50));
    assert_eq!(svc.get("errors").unwrap().as_int(), Some(0));
    assert_eq!(svc.get("keydist_runs").unwrap().as_int(), Some(2));
    assert!(svc.get("runs_per_sec").unwrap().as_int().unwrap() > 0);
    let _ = std::fs::remove_file(&metrics_path);
}
