//! Integration tests for the failure-discovery protocols over *locally*
//! distributed keys — the paper's headline composition (§4–§6).

use local_auth_fd::core::metrics;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec};
use local_auth_fd::crypto::{SchnorrScheme, ToyScheme};
use std::sync::Arc;

fn cluster(n: usize, t: usize, seed: u64) -> Cluster {
    Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), seed)
}

#[test]
fn chain_fd_over_local_auth_for_many_shapes() {
    for (n, t) in [(3usize, 1usize), (5, 1), (7, 2), (9, 3), (12, 4), (6, 0)] {
        let c = cluster(n, t, 41);
        let kd = c.run_key_distribution();
        let run = c.run_with_keys(
            &RunSpec::new(Protocol::ChainFd, b"value".to_vec()),
            Some(&kd),
        );
        assert!(run.all_decided(b"value"), "n={n} t={t}");
        assert_eq!(
            run.stats.messages_total,
            metrics::chain_fd_messages(n),
            "n={n} t={t}"
        );
    }
}

#[test]
fn amortization_crossover_measured_equals_formula() {
    // Experiment F1's core claim: after k* runs the one-time key
    // distribution has paid for itself.
    for (n, t) in [(8usize, 2usize), (12, 3), (16, 5)] {
        let c = cluster(n, t, 43);
        let kd = c.run_key_distribution();
        let auth_per_run = c
            .run_with_keys(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()), Some(&kd))
            .stats
            .messages_total;
        let nonauth_per_run = c
            .run(&RunSpec::new(Protocol::NonAuthFd, b"v".to_vec()))
            .stats
            .messages_total;
        let setup = kd.stats.messages_total;

        let k_star = metrics::amortization_crossover(n, t).expect("saving exists");
        let cum_auth = |k: usize| setup + k * auth_per_run;
        let cum_non = |k: usize| k * nonauth_per_run;
        assert!(cum_auth(k_star) < cum_non(k_star), "n={n} t={t}");
        assert!(cum_auth(k_star - 1) >= cum_non(k_star - 1), "n={n} t={t}");
    }
}

#[test]
fn many_consecutive_runs_stay_cheap_and_correct() {
    let c = cluster(7, 2, 47);
    let kd = c.run_key_distribution();
    let mut total = kd.stats.messages_total;
    for k in 0..25u8 {
        let run = c.run_with_keys(
            &RunSpec::new(Protocol::ChainFd, vec![k, k.wrapping_mul(3)]),
            Some(&kd),
        );
        assert!(run.all_decided(&[k, k.wrapping_mul(3)]));
        total += run.stats.messages_total;
    }
    assert_eq!(
        total,
        metrics::keydist_messages(7) + 25 * metrics::chain_fd_messages(7)
    );
}

#[test]
fn non_auth_baseline_scales_with_t() {
    let n = 10;
    let mut last = 0usize;
    for t in [0usize, 1, 2, 4, 7] {
        let c = cluster(n, t, 53);
        let run = c.run(&RunSpec::new(Protocol::NonAuthFd, b"x".to_vec()));
        assert!(run.all_decided(b"x"), "t={t}");
        assert_eq!(run.stats.messages_total, metrics::non_auth_messages(n, t));
        assert!(run.stats.messages_total > last, "monotone in t");
        last = run.stats.messages_total;
    }
}

#[test]
fn large_values_flow_through_chains() {
    let c = cluster(5, 1, 59);
    let kd = c.run_key_distribution();
    let big: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
    let run = c.run_with_keys(&RunSpec::new(Protocol::ChainFd, big.clone()), Some(&kd));
    assert!(run.all_decided(&big));
    // Wire bytes reflect the payload size (sanity of accounting).
    assert!(run.stats.bytes_total > 2048 * (5 - 1));
}

#[test]
fn empty_value_is_legal() {
    let c = cluster(4, 1, 61);
    let kd = c.run_key_distribution();
    let run = c.run_with_keys(&RunSpec::new(Protocol::ChainFd, Vec::new()), Some(&kd));
    assert!(run.all_decided(b""));
}

#[test]
fn small_range_expected_cost_depends_on_workload() {
    let (n, t) = (8usize, 2usize);
    let c = cluster(n, t, 67);
    let kd = c.run_key_distribution();

    // 10 runs, 8 of them default: measured total vs closed form.
    let mut total = 0usize;
    for k in 0..10u8 {
        let v = if k < 8 { vec![0] } else { vec![1] };
        let run = c.run_with_keys(
            &RunSpec::new(Protocol::SmallRange, v.clone()).with_default_value(vec![0]),
            Some(&kd),
        );
        assert!(run.all_decided(&v), "k={k}");
        total += run.stats.messages_total;
    }
    assert_eq!(total, 2 * metrics::small_range_messages(n, t, false));
    // Compare against 10 chain-FD runs.
    assert!(total < 10 * metrics::chain_fd_messages(n) * (t + 2));
}

#[test]
fn broken_signature_scheme_breaks_the_guarantees() {
    // With the deliberately broken ToyScheme (S1 violated: anyone can
    // forge), the protocols still *run*, but the security argument
    // evaporates — a forged chain verifies. This documents that the
    // guarantees rest on S1–S3, not on protocol structure alone.
    use local_auth_fd::core::chain::ChainMessage;
    use local_auth_fd::core::keys::KeyStore;
    use local_auth_fd::simnet::NodeId;

    let toy = ToyScheme::new();
    let c = Cluster::new(4, 1, Arc::new(ToyScheme::new()), 71);
    let kd = c.run_key_distribution();
    let run = c.run_with_keys(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()), Some(&kd));
    assert!(run.all_decided(b"v"), "honest runs still work");

    // But: forge the sender's origin signature from its PUBLIC key only.
    let store: &KeyStore = kd.store(NodeId(1));
    let sender_pk = store.accepted(NodeId(0)).unwrap().clone();
    let mut forged = ChainMessage::originate(
        &toy,
        &local_auth_fd::crypto::SecretKey(sender_pk.0.clone()), // pk == sk!
        NodeId(0),
        b"forged".to_vec(),
    )
    .unwrap();
    // The forged chain verifies under every store — S1 violation in action.
    assert!(forged.verify(&toy, store, NodeId(0)).is_ok());
    forged.body = b"tampered-after".to_vec();
    assert!(forged.verify(&toy, store, NodeId(0)).is_err());
}

#[test]
fn different_seeds_give_different_keys_same_counts() {
    let a = cluster(6, 2, 100).run_key_distribution();
    let b = cluster(6, 2, 200).run_key_distribution();
    assert_eq!(a.stats.messages_total, b.stats.messages_total);
    use local_auth_fd::simnet::NodeId;
    assert_ne!(
        a.store(NodeId(0)).accepted(NodeId(1)),
        b.store(NodeId(0)).accepted(NodeId(1))
    );
}

/// Scaling smoke test at n = 128 (the report sweeps stop at 64). Run with
/// `cargo test --release -- --ignored` — debug builds take a while at this
/// size because key distribution performs 3·128·127 signed exchanges.
#[test]
#[ignore = "large-n stress; run with --release -- --ignored"]
fn keydist_and_fd_at_n_128() {
    let (n, t) = (128usize, 42usize);
    let c = cluster(n, t, 128);
    let kd = c.run_key_distribution();
    assert_eq!(kd.stats.messages_total, metrics::keydist_messages(n));
    for (_, anoms) in &kd.anomalies {
        assert!(anoms.is_empty());
    }
    let run = c.run_with_keys(&RunSpec::new(Protocol::ChainFd, b"big".to_vec()), Some(&kd));
    assert!(run.all_decided(b"big"));
    assert_eq!(run.stats.messages_total, n - 1);
}
