//! Integration tests for the §7-extension protocols (degradable agreement,
//! Phase King) and the benign-fault wrappers, all through the public
//! facade and over *locally* distributed keys.

use local_auth_fd::core::adversary::{
    AdversarySpec, CrashNode, LaggardNode, OmissiveNode, SilentNode,
};
use local_auth_fd::core::ba::Grade;
use local_auth_fd::core::fd::{ChainFdNode, ChainFdParams};
use local_auth_fd::core::metrics;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec};
use local_auth_fd::crypto::{DsaScheme, RsaScheme, SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::{Node, NodeId};
use std::collections::BTreeSet;
use std::sync::Arc;

fn cluster(n: usize, t: usize, seed: u64) -> Cluster {
    Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), seed)
}

#[test]
fn degradable_over_local_auth_many_shapes() {
    for (n, t) in [(4usize, 1usize), (7, 2), (10, 3), (13, 4)] {
        let c = cluster(n, t, 51);
        let kd = c.run_key_distribution();
        let run = c.run_with_keys(
            &RunSpec::new(Protocol::Degradable, b"value".to_vec())
                .with_default_value(b"dflt".to_vec()),
            Some(&kd),
        );
        let grades = run.grades.clone();
        assert!(run.all_decided(b"value"), "n={n} t={t}");
        assert_eq!(
            run.stats.messages_total,
            metrics::degradable_messages(n),
            "n={n} t={t}"
        );
        assert!(grades.iter().all(|g| *g == Some(Grade::Two)));
        // Constant 2 communication rounds regardless of t.
        assert_eq!(
            run.stats.per_round.iter().filter(|&&x| x > 0).count(),
            metrics::DEGRADABLE_COMM_ROUNDS as usize
        );
    }
}

#[test]
fn degradable_runs_on_every_signature_scheme() {
    let schemes: Vec<Arc<dyn SignatureScheme>> = vec![
        Arc::new(SchnorrScheme::test_tiny()),
        Arc::new(DsaScheme::test_tiny()),
        Arc::new(RsaScheme::new(512)),
    ];
    for scheme in schemes {
        let name = scheme.name();
        let c = Cluster::new(5, 1, scheme, 52);
        let kd = c.run_key_distribution();
        let run = c.run_with_keys(
            &RunSpec::new(Protocol::Degradable, b"v".to_vec()).with_default_value(b"d".to_vec()),
            Some(&kd),
        );
        assert!(run.all_decided(b"v"), "{name}");
    }
}

#[test]
fn phase_king_agreement_with_byzantine_king() {
    // The king of phase 0 is node 0 = the sender; make the *second* king
    // byzantine instead so a correct king phase still exists.
    let (n, t) = (9usize, 2usize);
    let c = cluster(n, t, 53);
    let spec = RunSpec::new(Protocol::PhaseKing, b"v".to_vec())
        .with_default_value(b"d".to_vec())
        .with_adversary(AdversarySpec::custom(|id| {
            (id == NodeId(1)).then(|| Box::new(SilentNode { me: NodeId(1) }) as Box<dyn Node>)
        }));
    let run = c.run(&spec);
    let outs = run.correct_outcomes();
    let distinct: BTreeSet<_> = outs.iter().filter_map(|o| o.decided()).collect();
    assert_eq!(distinct.len(), 1, "phase king must still agree: {outs:?}");
    assert_eq!(*distinct.iter().next().unwrap(), &b"v"[..]);
}

#[test]
fn phase_king_cost_grows_with_t_chain_fd_does_not() {
    let n = 13usize;
    let c1 = cluster(n, 1, 54);
    let c3 = cluster(n, 3, 54);
    let king = RunSpec::new(Protocol::PhaseKing, b"v".to_vec()).with_default_value(b"d".to_vec());
    let pk1 = c1.run(&king);
    let pk3 = c3.run(&king);
    assert!(pk3.stats.messages_total > pk1.stats.messages_total);

    let kd1 = c1.run_key_distribution();
    let kd3 = c3.run_key_distribution();
    let chain = RunSpec::new(Protocol::ChainFd, b"v".to_vec());
    let fd1 = c1.run_with_keys(&chain, Some(&kd1));
    let fd3 = c3.run_with_keys(&chain, Some(&kd3));
    assert_eq!(fd1.stats.messages_total, fd3.stats.messages_total);
}

#[test]
fn benign_faults_never_split_small_range_fd() {
    // The wrappers compose with any honest automaton; here the small-range
    // protocol's silence-encodes-default runs under an omissive sender.
    let (n, t) = (6usize, 1usize);
    for seed in 0..10u64 {
        let c = cluster(n, t, seed);
        let kd = c.run_key_distribution();
        let scheme = Arc::clone(&c.scheme);
        let store = kd.store(NodeId(1)).clone();
        let ring = c.keyring(NodeId(1));
        let spec = RunSpec::new(Protocol::ChainFd, b"v".to_vec()).with_adversary(
            AdversarySpec::custom(move |id| {
                (id == NodeId(1)).then(|| {
                    let honest = Box::new(ChainFdNode::new(
                        NodeId(1),
                        ChainFdParams::new(n, t),
                        Arc::clone(&scheme),
                        store.clone(),
                        ring.clone(),
                        None,
                    )) as Box<dyn Node>;
                    Box::new(OmissiveNode::new(honest, seed, 500)) as Box<dyn Node>
                })
            }),
        );
        let run = c.run_with_keys(&spec, Some(&kd));
        let outs = run.correct_outcomes();
        let distinct: BTreeSet<_> = outs.iter().filter_map(|o| o.decided()).collect();
        assert!(
            outs.iter().any(|o| o.is_discovered()) || distinct.len() <= 1,
            "seed={seed}: {outs:?}"
        );
    }
}

#[test]
fn crash_during_keydist_then_fd_discovers_unknown_signer() {
    // A node that crashes mid key-distribution is only partially accepted;
    // when it later appears inside a chain, verifiers without its key
    // discover UnknownSigner instead of silently guessing.
    let (n, t) = (6usize, 2usize);
    let c = cluster(n, t, 55);
    let kd = c.run_key_distribution_with(&mut |id| {
        (id == NodeId(1)).then(|| {
            use local_auth_fd::core::localauth::KeyDistNode;
            let honest = Box::new(KeyDistNode::new(
                NodeId(1),
                n,
                Arc::clone(&c.scheme),
                c.keyring(NodeId(1)),
                c.seed,
            )) as Box<dyn Node>;
            // Crash before answering any challenge.
            Box::new(CrashNode::new(honest, 0, 2)) as Box<dyn Node>
        })
    });
    // The crashed node reached only 2 peers with its predicate, and
    // answered no challenges — nobody accepted its key.
    for store in kd.stores.iter().flatten() {
        assert!(store.accepted(NodeId(1)).is_none());
    }
    // A chain FD run routed through P1 cannot produce a verifiable chain:
    // every correct node either discovers or (downstream of the break)
    // discovers a missing message.
    let spec =
        RunSpec::new(Protocol::ChainFd, b"v".to_vec()).with_adversary(AdversarySpec::custom(
            |id| (id == NodeId(1)).then(|| Box::new(SilentNode { me: NodeId(1) }) as Box<dyn Node>),
        ));
    let run = c.run_with_keys(&spec, Some(&kd));
    assert!(run.any_discovery());
}

#[test]
fn laggard_in_keydist_is_tolerated_or_flagged() {
    // Key distribution gives challenges a full round; a one-round laggard
    // misses the window, so its key is not accepted — but the honest nodes
    // finish and later FD runs among them still work.
    let (n, t) = (5usize, 1usize);
    let c = cluster(n, t, 56);
    let kd = c.run_key_distribution_with(&mut |id| {
        (id == NodeId(4)).then(|| {
            use local_auth_fd::core::localauth::KeyDistNode;
            let honest = Box::new(KeyDistNode::new(
                NodeId(4),
                n,
                Arc::clone(&c.scheme),
                c.keyring(NodeId(4)),
                c.seed,
            )) as Box<dyn Node>;
            Box::new(LaggardNode::new(honest)) as Box<dyn Node>
        })
    });
    // FD through the first t+1 = 2 chain nodes (P0, P1) — all honest and
    // mutually accepted — still decides among the nodes that completed key
    // distribution. (P4 has no store, so it stays substituted.)
    let spec =
        RunSpec::new(Protocol::ChainFd, b"v".to_vec()).with_adversary(AdversarySpec::custom(
            |id| (id == NodeId(4)).then(|| Box::new(SilentNode { me: NodeId(4) }) as Box<dyn Node>),
        ));
    let run = c.run_with_keys(&spec, Some(&kd));
    let outs = run.correct_outcomes();
    let distinct: BTreeSet<_> = outs.iter().filter_map(|o| o.decided()).collect();
    assert!(
        outs.iter().any(|o| o.is_discovered()) || distinct.len() <= 1,
        "{outs:?}"
    );
}

#[test]
fn degradable_message_count_on_thread_transport() {
    // The new protocols are ordinary automata: they run unchanged on the
    // real thread transport with identical counts.
    use local_auth_fd::core::ba::{DegradableNode, DegradableParams};
    use local_auth_fd::simnet::transport::ThreadCluster;

    let (n, t) = (5usize, 1usize);
    let c = cluster(n, t, 57);
    let kd = c.run_key_distribution();
    let params = DegradableParams::new(n, t, b"d".to_vec());
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            Box::new(DegradableNode::new(
                me,
                params.clone(),
                Arc::clone(&c.scheme),
                kd.store(me).clone(),
                c.keyring(me),
                (i == 0).then(|| b"v".to_vec()),
            )) as Box<dyn Node>
        })
        .collect();
    let result = ThreadCluster::new(params.rounds()).run(nodes);
    assert_eq!(result.stats.messages_total, metrics::degradable_messages(n));
    for boxed in result.nodes {
        let node = boxed
            .into_any()
            .downcast::<DegradableNode>()
            .expect("DegradableNode");
        assert_eq!(node.outcome().decided(), Some(&b"v"[..]));
        assert_eq!(node.grade(), Some(Grade::Two));
    }
}

mod rushing {
    //! The strongest synchronous adversary: rushing nodes act last in each
    //! round and see the correct nodes' same-round messages first
    //! (`SyncNetwork::set_rushing`). The protocols' guarantees must
    //! survive full adaptivity.

    use super::*;
    use local_auth_fd::core::ba::{DegradableNode, DegradableParams};
    use local_auth_fd::core::ba::{PhaseKingNode, PhaseKingParams, PkMsg};
    use local_auth_fd::core::keys::Keyring;
    use local_auth_fd::core::props::check_degradable;
    use local_auth_fd::simnet::codec::{Decode, Encode};
    use local_auth_fd::simnet::{Envelope, Outbox, SyncNetwork};
    use std::any::Any;

    /// A rushing Phase-King participant that reads the current round's
    /// votes and answers adaptively: it reports to each peer whichever
    /// value would keep the tally as split as possible.
    struct AdaptiveSplitter {
        me: NodeId,
        n: usize,
    }

    impl Node for AdaptiveSplitter {
        fn id(&self) -> NodeId {
            self.me
        }
        fn on_round(&mut self, _round: u32, inbox: &[Envelope], out: &mut Outbox) {
            // Tally the votes it can see (previous + previewed rounds).
            let mut counts: std::collections::BTreeMap<Vec<u8>, usize> =
                std::collections::BTreeMap::new();
            for env in inbox {
                if let Ok(PkMsg::Vote(v)) = PkMsg::decode_exact(&env.payload) {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
            let mut values: Vec<Vec<u8>> = counts.into_keys().collect();
            values.push(b"poison".to_vec());
            // Send alternating values to alternating peers, plus a fake
            // king message every round for good measure.
            for i in 0..self.n {
                if i == self.me.index() {
                    continue;
                }
                let v = values[i % values.len()].clone();
                out.send(NodeId(i as u16), PkMsg::Vote(v.clone()).encode_to_vec());
                out.send(NodeId(i as u16), PkMsg::King(v).encode_to_vec());
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    #[test]
    fn phase_king_agrees_under_rushing_adaptive_splitter() {
        let (n, t) = (9usize, 2usize);
        for adversary in [1usize, 3, 8] {
            let params = PhaseKingParams::new(n, t, b"default".to_vec());
            let nodes: Vec<Box<dyn Node>> = (0..n)
                .map(|i| {
                    let me = NodeId(i as u16);
                    if i == adversary {
                        Box::new(AdaptiveSplitter { me, n }) as Box<dyn Node>
                    } else {
                        Box::new(PhaseKingNode::new(
                            me,
                            params.clone(),
                            (i == 0).then(|| b"v".to_vec()),
                        )) as Box<dyn Node>
                    }
                })
                .collect();
            let mut net = SyncNetwork::new(nodes);
            net.set_rushing(vec![NodeId(adversary as u16)]);
            net.run_until_done(params.rounds());
            let decided: BTreeSet<Vec<u8>> = net
                .into_nodes()
                .into_iter()
                .enumerate()
                .filter(|(i, _)| *i != adversary)
                .filter_map(|(_, b)| {
                    b.into_any()
                        .downcast::<PhaseKingNode>()
                        .ok()
                        .and_then(|nd| nd.outcome().decided().map(<[u8]>::to_vec))
                })
                .collect();
            assert_eq!(decided.len(), 1, "adversary={adversary}: {decided:?}");
            assert!(
                decided.iter().any(|d| d == b"v"),
                "validity (sender correct)"
            );
        }
    }

    /// A rushing degradable-agreement echoer: it previews the other
    /// echoes, then forwards the sender's chain only to the peers that
    /// (by its preview) received the fewest echoes — maximal asymmetry.
    struct AdaptiveWithholder {
        ring: Keyring,
        scheme: Arc<dyn SignatureScheme>,
        n: usize,
    }

    impl Node for AdaptiveWithholder {
        fn id(&self) -> NodeId {
            self.ring.me
        }
        fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
            if round != 1 {
                return;
            }
            // Find the direct chain from the sender in our inbox.
            let direct = inbox.iter().find_map(|env| {
                (env.from == NodeId(0))
                    .then(|| local_auth_fd::core::ba::DgMsg::decode_exact(&env.payload).ok())
                    .flatten()
            });
            let Some(msg) = direct else { return };
            let echo = msg
                .chain
                .extend(self.scheme.as_ref(), &self.ring.sk, NodeId(0))
                .expect("key well-formed");
            // Rushing: we previewed everyone's round-1 echoes; send ours
            // to odd peers only.
            for i in 1..self.n {
                if i != self.ring.me.index() && i % 2 == 1 {
                    out.send(
                        NodeId(i as u16),
                        local_auth_fd::core::ba::DgMsg {
                            chain: echo.clone(),
                        }
                        .encode_to_vec(),
                    );
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    #[test]
    fn degradable_contract_under_rushing_withholder() {
        let (n, t) = (7usize, 2usize);
        let c = Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), 61);
        let kd = c.run_key_distribution();
        let params = DegradableParams::new(n, t, b"dflt".to_vec());
        let adversary = 3usize;
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                if i == adversary {
                    Box::new(AdaptiveWithholder {
                        ring: c.keyring(me),
                        scheme: Arc::clone(&c.scheme),
                        n,
                    }) as Box<dyn Node>
                } else {
                    Box::new(DegradableNode::new(
                        me,
                        params.clone(),
                        Arc::clone(&c.scheme),
                        kd.store(me).clone(),
                        c.keyring(me),
                        (i == 0).then(|| b"v".to_vec()),
                    )) as Box<dyn Node>
                }
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.set_rushing(vec![NodeId(adversary as u16)]);
        net.run_until_done(params.rounds());
        let outs: Vec<local_auth_fd::core::Outcome> = net
            .into_nodes()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != adversary)
            .filter_map(|(_, b)| {
                b.into_any()
                    .downcast::<DegradableNode>()
                    .ok()
                    .map(|nd| nd.outcome().clone())
            })
            .collect();
        let report = check_degradable(&outs, b"dflt");
        assert!(report.all_ok(), "{outs:?}");
        // With a correct sender the withheld echo cannot matter: everyone
        // still clears the grade-1 bar at least.
        for o in &outs {
            assert_eq!(o.decided(), Some(&b"v"[..]));
        }
    }

    /// A chain signed by a rushing tamperer still cannot be forged: the
    /// existing byzantine chain-FD adversary with rushing power gains
    /// nothing against signature checks.
    #[test]
    fn chain_fd_tamper_with_rushing_still_discovered() {
        use local_auth_fd::core::adversary::{ChainFdAdversary, ChainMisbehavior};

        let (n, t) = (6usize, 2usize);
        let c = Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), 62);
        let kd = c.run_key_distribution();
        let params = ChainFdParams::new(n, t);
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                if i == 1 {
                    Box::new(ChainFdAdversary::new(
                        me,
                        params.clone(),
                        Arc::clone(&c.scheme),
                        c.keyring(me),
                        ChainMisbehavior::TamperBody {
                            new_body: b"evil".to_vec(),
                        },
                        None,
                    )) as Box<dyn Node>
                } else {
                    Box::new(ChainFdNode::new(
                        me,
                        params.clone(),
                        Arc::clone(&c.scheme),
                        kd.store(me).clone(),
                        c.keyring(me),
                        (i == 0).then(|| b"v".to_vec()),
                    )) as Box<dyn Node>
                }
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.set_rushing(vec![NodeId(1)]);
        net.run_until_done(params.rounds());
        let outs: Vec<local_auth_fd::core::Outcome> = net
            .into_nodes()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .filter_map(|(_, b)| {
                b.into_any()
                    .downcast::<ChainFdNode>()
                    .ok()
                    .map(|nd| nd.outcome().clone())
            })
            .collect();
        assert!(outs.iter().any(|o| o.is_discovered()), "{outs:?}");
        let decided: BTreeSet<_> = outs.iter().filter_map(|o| o.decided()).collect();
        assert!(decided.len() <= 1);
    }

    /// Theorem 2's guarantee holds against a *rushing* key thief: even
    /// with a same-round preview of every announcement and challenge, a
    /// node cannot get a key accepted that it does not hold.
    #[test]
    fn keydist_thief_with_rushing_never_accepted() {
        use local_auth_fd::core::adversary::KeyThiefKeyDist;
        use local_auth_fd::core::localauth::{KeyDistNode, KEYDIST_ROUNDS};

        let n = 5usize;
        let c = Cluster::new(n, 1, Arc::new(SchnorrScheme::test_tiny()), 63);
        let thief = NodeId(2);
        let victim = NodeId(0);
        let victim_pk = c.keyring(victim).pk.clone();
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                if me == thief {
                    Box::new(KeyThiefKeyDist::new(me, n, victim_pk.clone())) as Box<dyn Node>
                } else {
                    Box::new(KeyDistNode::new(
                        me,
                        n,
                        Arc::clone(&c.scheme),
                        c.keyring(me),
                        c.seed,
                    )) as Box<dyn Node>
                }
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.set_rushing(vec![thief]);
        net.run_until_done(KEYDIST_ROUNDS);
        for boxed in net.into_nodes() {
            if let Ok(node) = boxed.into_any().downcast::<KeyDistNode>() {
                let (store, _, _) = node.into_parts();
                if store.owner() == thief {
                    continue;
                }
                assert!(
                    store.accepted(thief).is_none(),
                    "{:?} accepted the rushing thief's stolen key",
                    store.owner()
                );
                // The victim's real key is unaffected.
                if store.owner() != victim {
                    assert_eq!(store.accepted(victim), Some(&victim_pk));
                }
            }
        }
    }
}
