//! Observability contracts: tracing is deterministic where the engine is,
//! and invisible everywhere else.
//!
//! * Event-engine traces are **byte-identical** across repeated runs and
//!   across spawning threads — the virtual-tick clock is a pure function
//!   of the spec and seed, and the export carries no wall-derived bytes.
//! * Tracing never changes [`FdRunReport::to_json`]: the `phases` field
//!   is a local observation, not a report surface.
//! * Sync-engine phase spans tile the measured wall time: the tiling
//!   span-duration sum equals the reported `wall_us` (well within the 5%
//!   acceptance envelope — it is exact by construction).
//! * The Chrome trace-event export is valid JSON (parsed by the repo's
//!   own `wire::Value`) with the expected phase and counter events.

use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec};
use local_auth_fd::core::wire::Value;
use local_auth_fd::crypto::SchnorrScheme;
use local_auth_fd::simnet::Engine;
use std::sync::Arc;

fn cluster(n: usize, engine: Engine) -> Cluster {
    Cluster::new(n, 1, Arc::new(SchnorrScheme::test_tiny()), 42).with_engine(engine)
}

fn spec(protocol: Protocol) -> RunSpec {
    RunSpec::new(protocol, b"trace-me".to_vec()).with_default_value(b"trace-default".to_vec())
}

#[test]
fn event_engine_traces_are_byte_identical_across_runs() {
    for protocol in [
        Protocol::ChainFd,
        Protocol::DolevStrong,
        Protocol::NonAuthFd,
    ] {
        let (_, first) = cluster(8, Engine::Event).run_traced(&spec(protocol));
        let (_, second) = cluster(8, Engine::Event).run_traced(&spec(protocol));
        assert_eq!(
            first.to_chrome_json(),
            second.to_chrome_json(),
            "{protocol}: chrome export not deterministic"
        );
        assert_eq!(
            first.to_folded(),
            second.to_folded(),
            "{protocol}: folded export not deterministic"
        );
    }
}

#[test]
fn event_engine_traces_are_byte_identical_across_threads() {
    let reference = cluster(8, Engine::Event)
        .run_traced(&spec(Protocol::DolevStrong))
        .1
        .to_chrome_json();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                cluster(8, Engine::Event)
                    .run_traced(&spec(Protocol::DolevStrong))
                    .1
                    .to_chrome_json()
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().unwrap(), reference);
    }
}

#[test]
fn tracing_never_changes_report_json() {
    for engine in [Engine::Sync, Engine::Event] {
        for protocol in [
            Protocol::ChainFd,
            Protocol::DolevStrong,
            Protocol::Degradable,
            Protocol::FdToBa,
            Protocol::NonAuthFd,
        ] {
            let plain = cluster(7, engine).run(&spec(protocol)).to_json();
            let (traced, _) = cluster(7, engine).run_traced(&spec(protocol));
            assert!(
                traced.phases.is_some(),
                "{protocol} × {engine}: traced run should carry phases"
            );
            assert_eq!(
                plain,
                traced.to_json(),
                "{protocol} × {engine}: tracing changed the report bytes"
            );
        }
    }
}

#[test]
fn plain_runs_carry_no_phases() {
    let run = cluster(6, Engine::Sync).run(&spec(Protocol::ChainFd));
    assert!(run.phases.is_none(), "observability must be off by default");
}

#[test]
fn sync_engine_spans_tile_the_measured_wall_time() {
    let (run, trace) = cluster(48, Engine::Sync).run_traced(&spec(Protocol::DolevStrong));
    let wall = trace.wall_us.expect("sync traces carry wall time");
    let phases = run.phases.expect("traced run carries phases");
    assert_eq!(phases.wall_us, Some(wall));
    // The tiling spans (keydist + round:N + assemble + report) sum to the
    // wall time exactly; the ISSUE acceptance envelope is 5%.
    let total = trace.span_total();
    assert_eq!(total, wall, "span tiling must account for all wall time");
    let envelope = wall / 20;
    assert!(
        total.abs_diff(wall) <= envelope,
        "span sum {total} vs wall {wall} exceeds 5%"
    );
}

#[test]
fn chrome_export_is_valid_json_with_phase_and_counter_events() {
    let (_, trace) = cluster(8, Engine::Sync).run_traced(&spec(Protocol::ChainFd));
    let doc = Value::parse(&trace.to_chrome_json()).expect("chrome export parses");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert!(names.contains(&"keydist"), "names: {names:?}");
    assert!(names.contains(&"round:0"), "names: {names:?}");
    assert!(names.contains(&"assemble"), "names: {names:?}");
    assert!(names.contains(&"report"), "names: {names:?}");
    assert!(names.contains(&"verify_cache_hits"), "names: {names:?}");
    assert!(names.contains(&"messages_total"), "names: {names:?}");
    let other = doc.get("otherData").expect("otherData object");
    assert_eq!(other.get("clock").and_then(Value::as_str), Some("wall_us"));
    assert_eq!(
        other.get("protocol").and_then(Value::as_str),
        Some("chain_fd")
    );
    assert_eq!(other.get("n").and_then(Value::as_int), Some(8));
}

#[test]
fn event_export_omits_wall_derived_fields() {
    let (_, trace) = cluster(8, Engine::Event).run_traced(&spec(Protocol::ChainFd));
    assert!(trace.wall_us.is_none(), "virtual-tick traces carry no wall");
    let raw = trace.to_chrome_json();
    let doc = Value::parse(&raw).expect("chrome export parses");
    assert!(
        doc.get("otherData").unwrap().get("wall_us").is_none(),
        "wall_us must be absent from deterministic exports"
    );
    assert_eq!(
        doc.get("otherData")
            .unwrap()
            .get("clock")
            .and_then(Value::as_str),
        Some("virtual_ticks")
    );
    // No report/assemble/verify spans — those are wall-clock phases.
    assert!(!raw.contains("\"name\": \"report\""));
    assert!(!raw.contains("\"name\": \"verify\","));
}

#[test]
fn folded_export_has_one_frame_per_span() {
    let (_, trace) = cluster(8, Engine::Sync).run_traced(&spec(Protocol::ChainFd));
    let folded = trace.to_folded();
    let lines: Vec<&str> = folded.lines().collect();
    assert_eq!(lines.len(), trace.spans.len() + trace.attributed.len());
    for line in &lines {
        let (stack, weight) = line.rsplit_once(' ').expect("frame weight");
        assert!(stack.starts_with("lafd;"), "bad frame {line}");
        weight.parse::<u64>().expect("numeric weight");
    }
    assert!(folded.contains("lafd;keydist "));
    assert!(folded.contains("lafd;run;round:0 "));
}

#[test]
fn obs_cluster_populates_cache_and_intern_counters() {
    let (run, trace) = cluster(8, Engine::Sync).run_traced(&spec(Protocol::DolevStrong));
    let phases = run.phases.expect("phases recorded");
    // Dolev–Strong relays verify chains: the cache must have been
    // consulted, and the shared predicate table interned the stores.
    assert!(
        phases.cache_hits + phases.cache_misses > 0,
        "verify cache never consulted"
    );
    assert!(phases.interned > 0, "predicate table never interned");
    assert!(phases.cache_hit_ratio_pct().is_some());
    assert_eq!(phases.round_marks.len(), phases.per_round().len());
    let counters: Vec<&str> = trace.counters.iter().map(|c| c.name).collect();
    assert!(counters.contains(&"verify_cache_hits"));
    assert!(counters.contains(&"predicates_interned"));
    assert!(counters.contains(&"max_queue_depth"));
}
