//! Property wall for the hybrid event scheduler (PR8): the flat
//! delivery ring + binary-heap fallback must deliver every message in
//! exactly the same total order as the pure `(deliver_at, seq)` binary
//! heap it replaced, for arbitrary delivery streams — round-aligned
//! ties, unaligned jitter, per-message delay overrides, and rushing
//! previews included. The reference ordering is recovered by
//! `EventNetwork::set_reference_scheduler(true)`, which forces every
//! delivery through the heap and disables broadcast compression.

use local_auth_fd::simnet::event::{SeededJitter, TICKS_PER_ROUND};
use local_auth_fd::simnet::{
    Envelope, EventNetwork, NetStats, Node, NodeId, Outbox, SchedCounters,
};
use proptest::prelude::*;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// One scripted send: a full broadcast or a unicast to a fixed peer.
#[derive(Debug, Clone, Copy)]
enum Op {
    Broadcast,
    Send(NodeId),
}

/// A node that replays a per-round send script and records every
/// delivery it observes, in observation order. Payloads embed
/// `(sender, round, op index)` so the recorded sequences pin the *total*
/// delivery order, not just multiset equality.
struct Sprayer {
    id: NodeId,
    n: usize,
    script: Vec<Vec<Op>>,
    seen: Vec<(u32, NodeId, Vec<u8>)>,
}

impl Node for Sprayer {
    fn id(&self) -> NodeId {
        self.id
    }
    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if let Some(ops) = self.script.get(round as usize) {
            for (k, op) in ops.iter().enumerate() {
                let payload = vec![self.id.0 as u8, round as u8, k as u8];
                match op {
                    Op::Broadcast => out.broadcast(self.n, self.id, payload),
                    Op::Send(to) => out.send(*to, payload),
                }
            }
        }
        for env in inbox {
            self.seen.push((round, env.from, env.payload.to_vec()));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A complete scheduling scenario: node scripts plus everything that
/// shapes `(deliver_at, seq)` — the jitter model, per-send-index delay
/// overrides, and an optional rushing node.
#[derive(Debug, Clone)]
struct Plan {
    n: usize,
    send_rounds: usize,
    extra: u32,
    seed: u64,
    scripts: Vec<Vec<Vec<Op>>>,
    overrides: HashMap<u64, u64>,
    rusher: Option<NodeId>,
}

impl Plan {
    /// Rounds to execute: enough for the slowest admissible delivery
    /// (jitter up to `1 + extra` rounds, overrides up to 3 rounds) to
    /// land, plus drain slack.
    fn steps(&self) -> usize {
        self.send_rounds + self.extra as usize + 6
    }
}

type Seen = Vec<Vec<(u32, NodeId, Vec<u8>)>>;

fn run_plan(plan: &Plan, reference: bool) -> (Seen, NetStats, SchedCounters) {
    let nodes: Vec<Box<dyn Node>> = (0..plan.n)
        .map(|i| {
            Box::new(Sprayer {
                id: NodeId(i as u16),
                n: plan.n,
                script: plan.scripts[i].clone(),
                seen: Vec::new(),
            }) as Box<dyn Node>
        })
        .collect();
    let mut net = EventNetwork::new(nodes);
    net.set_latency(Box::new(SeededJitter {
        seed: plan.seed,
        extra: plan.extra,
    }));
    if !plan.overrides.is_empty() {
        net.set_delay_overrides(Arc::new(plan.overrides.clone()));
    }
    if let Some(r) = plan.rusher {
        net.set_rushing(vec![r]);
    }
    net.set_reference_scheduler(reference);
    for _ in 0..plan.steps() {
        net.step();
    }
    let sched = net.sched_counters();
    let stats = net.stats().clone();
    let seen = net
        .into_nodes()
        .into_iter()
        .map(|b| b.into_any().downcast::<Sprayer>().unwrap().seen)
        .collect();
    (seen, stats, sched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core equivalence property. `extra = 0` degenerates to pure
    /// synchrony (everything round-aligned — maximal tie pressure on the
    /// ring's send-order invariant); `extra > 0` mixes aligned and
    /// unaligned arrivals across the ring/heap boundary; overrides pin
    /// individual send indices to aligned or unaligned ticks; a rusher
    /// (when drawn) previews same-round traffic addressed to it.
    #[test]
    fn hybrid_ring_heap_matches_pure_heap_total_order(
        n in 3usize..7,
        send_rounds in 1usize..4,
        extra in 0u32..3,
        seed in any::<u64>(),
        ops_raw in prop::collection::vec(
            (any::<usize>(), any::<usize>(), 0u8..4, any::<usize>()),
            0..24,
        ),
        overrides_raw in prop::collection::vec(
            (any::<u64>(), any::<bool>(), 1u64..4, any::<u64>()),
            0..6,
        ),
        rush_pick in any::<usize>(),
        use_rusher in any::<bool>(),
    ) {
        // Bucket the flat op stream into per-(sender, round) scripts,
        // preserving draw order within each bucket.
        let mut scripts = vec![vec![Vec::new(); send_rounds]; n];
        for (sender_pick, round_pick, kind, target_pick) in &ops_raw {
            let sender = sender_pick % n;
            let round = round_pick % send_rounds;
            let op = if *kind == 0 {
                Op::Broadcast
            } else {
                // A unicast, possibly to self (the engine must treat it
                // identically on both paths).
                Op::Send(NodeId((target_pick % n) as u16))
            };
            scripts[sender][round].push(op);
        }
        let mut overrides = HashMap::new();
        for (key_pick, aligned, whole_rounds, ticks_raw) in &overrides_raw {
            let ticks = if *aligned {
                whole_rounds * TICKS_PER_ROUND
            } else {
                1 + ticks_raw % (3 * TICKS_PER_ROUND)
            };
            overrides.insert(key_pick % 64, ticks);
        }
        let plan = Plan {
            n,
            send_rounds,
            extra,
            seed,
            scripts,
            overrides,
            rusher: use_rusher.then(|| NodeId((rush_pick % n) as u16)),
        };

        let (hybrid_seen, hybrid_stats, hybrid_sched) = run_plan(&plan, false);
        let (ref_seen, ref_stats, ref_sched) = run_plan(&plan, true);

        prop_assert_eq!(
            &hybrid_seen, &ref_seen,
            "delivery order diverged: {plan:?}"
        );
        prop_assert_eq!(&hybrid_stats, &ref_stats, "stats diverged: {plan:?}");
        // The reference scheduler must never touch the ring, and the two
        // modes must account for exactly the same logical message count.
        prop_assert_eq!(ref_sched.ring_enqueued, 0);
        prop_assert_eq!(
            hybrid_sched.ring_enqueued + hybrid_sched.heap_enqueued,
            ref_sched.heap_enqueued
        );
        // Pure synchrony with no overrides is fully round-aligned: the
        // hybrid must route *everything* through the ring.
        if extra == 0 && plan.overrides.is_empty() {
            prop_assert_eq!(hybrid_sched.heap_enqueued, 0, "{plan:?}");
        }
    }

    /// Determinism rider: the hybrid schedule is a pure function of the
    /// plan — running it twice yields byte-identical observations.
    #[test]
    fn hybrid_schedule_is_replayable(
        n in 3usize..6,
        extra in 0u32..3,
        seed in any::<u64>(),
    ) {
        let scripts = (0..n)
            .map(|_| vec![vec![Op::Broadcast, Op::Send(NodeId(0))]])
            .collect();
        let plan = Plan {
            n,
            send_rounds: 1,
            extra,
            seed,
            scripts,
            overrides: HashMap::new(),
            rusher: None,
        };
        let a = run_plan(&plan, false);
        let b = run_plan(&plan, false);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }
}
