//! N1-violation coverage across the full protocol lineup: seeded random
//! `Duplicate` and `Corrupt` link faults against every FD/BA protocol, on
//! both engines. The contract under a broken network assumption is the
//! paper's safety property: a fault may be *discovered*, it may be
//! absorbed (hit an unused link), but it must never produce silent
//! disagreement — and any nodes that do decide must agree on the value.

use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::RunSpec;
use local_auth_fd::core::sweep::{classify, Protocol, SweepOutcome};
use local_auth_fd::crypto::SchnorrScheme;
use local_auth_fd::simnet::fault::{FaultPlan, LinkFault};
use local_auth_fd::simnet::Engine;
use std::collections::BTreeSet;
use std::sync::Arc;

const N: usize = 7;

/// A fault budget every protocol accepts at `n = 7` (Phase King needs
/// `n > 4t`).
fn budget(protocol: Protocol) -> usize {
    match protocol {
        Protocol::PhaseKing => 1,
        _ => 2,
    }
}

/// Inject `k` seeded faults of the given kind into one run of `protocol`
/// and classify the correct-node outcomes.
fn run_with_faults(
    protocol: Protocol,
    engine: Engine,
    kind: LinkFault,
    seed: u64,
) -> (SweepOutcome, bool) {
    let t = budget(protocol);
    let plan = FaultPlan::random(N, 3, 3, seed, &[kind]);
    let cluster = Cluster::new(N, t, Arc::new(SchnorrScheme::test_tiny()), seed)
        .with_engine(engine)
        .with_faults(plan);
    // Keys are established in the clean setup phase; the faults hit the
    // protocol run itself.
    let keydist = cluster.keydist_for(protocol);
    let value = b"fault-matrix".to_vec();
    let spec =
        RunSpec::new(protocol, value.clone()).with_default_value(b"fallback-default".to_vec());
    let run = cluster.run_with_keys(&spec, keydist.as_ref());
    let decided: BTreeSet<Vec<u8>> = run
        .correct_outcomes()
        .iter()
        .filter_map(|o| o.decided().map(<[u8]>::to_vec))
        .collect();
    (classify(&run, true), decided.len() <= 1)
}

fn assert_never_silent(kind: LinkFault) {
    for protocol in Protocol::ALL {
        for engine in [Engine::Sync, Engine::Event] {
            for seed in 0..8u64 {
                let (outcome, agreed) = run_with_faults(protocol, engine, kind, seed);
                assert_ne!(
                    outcome,
                    SweepOutcome::SilentDisagreement,
                    "{protocol} on {} engine, seed {seed}, {kind:?}",
                    engine.name()
                );
                assert!(
                    agreed,
                    "{protocol} on {} engine, seed {seed}: decided values diverged",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn duplicate_faults_never_cause_silent_disagreement() {
    assert_never_silent(LinkFault::Duplicate);
}

#[test]
fn corrupt_faults_never_cause_silent_disagreement() {
    assert_never_silent(LinkFault::Corrupt { offset: 0, mask: 0 });
}

/// A fault on the link the chain actually uses must *bite*: the chain is
/// the single source of truth in chain FD, so a duplicated or corrupted
/// first hop is always discovered, on both engines.
#[test]
fn faults_on_the_used_link_are_discovered() {
    for engine in [Engine::Sync, Engine::Event] {
        for kind in [
            LinkFault::Duplicate,
            LinkFault::Corrupt {
                offset: 20,
                mask: 0x01,
            },
        ] {
            let plan = FaultPlan::new().with(
                0,
                local_auth_fd::simnet::NodeId(0),
                local_auth_fd::simnet::NodeId(1),
                kind,
            );
            let cluster = Cluster::new(N, 2, Arc::new(SchnorrScheme::test_tiny()), 1)
                .with_engine(engine)
                .with_faults(plan);
            let keydist = cluster.keydist_for(Protocol::ChainFd);
            let spec =
                RunSpec::new(Protocol::ChainFd, b"v".to_vec()).with_default_value(b"d".to_vec());
            let run = cluster.run_with_keys(&spec, keydist.as_ref());
            assert_eq!(
                classify(&run, true),
                SweepOutcome::Discovered,
                "{kind:?} on {} engine was not discovered",
                engine.name()
            );
        }
    }
}

/// Copy-on-write wall for the arena-allocated delivery path (PR8): a
/// broadcast travels as *one* shared payload buffer — compressed in the
/// event engine's flat delivery ring, handle-cloned per receiver when the
/// round matures — so a link fault that mutates bytes must copy, never
/// write through. Each fault kind is checked on both engines: the faulted
/// link observes the fault, every sibling delivery of the same broadcast
/// observes the original bytes.
#[test]
fn link_faults_keep_copy_on_write_on_shared_broadcast_payloads() {
    use local_auth_fd::simnet::{Envelope, EventNetwork, Node, NodeId, Outbox, SyncNetwork};
    use std::any::Any;

    const PAYLOAD: &[u8] = b"cow-wall";

    /// Node 0 broadcasts one shared payload in round 0; everyone records
    /// every delivery verbatim.
    struct Probe {
        id: NodeId,
        n: usize,
        seen: Vec<(u32, NodeId, Vec<u8>)>,
    }
    impl Node for Probe {
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
            if round == 0 && self.id == NodeId(0) {
                out.broadcast(self.n, self.id, PAYLOAD.to_vec());
            }
            for env in inbox {
                self.seen.push((round, env.from, env.payload.to_vec()));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    let n = 6usize;
    let nodes = || -> Vec<Box<dyn Node>> {
        (0..n)
            .map(|i| {
                Box::new(Probe {
                    id: NodeId(i as u16),
                    n,
                    seen: Vec::new(),
                }) as Box<dyn Node>
            })
            .collect()
    };
    let run = |engine: Engine, fault: LinkFault| -> Vec<Vec<(u32, NodeId, Vec<u8>)>> {
        // The fault hits only the 0 → 1 link of the round-0 broadcast.
        let plan = FaultPlan::new().with(0, NodeId(0), NodeId(1), fault);
        let boxed = match engine {
            Engine::Sync => {
                let mut net = SyncNetwork::new(nodes());
                net.set_fault_plan(plan);
                for _ in 0..5 {
                    net.step();
                }
                net.into_nodes()
            }
            Engine::Event => {
                let mut net = EventNetwork::new(nodes());
                net.set_fault_plan(plan);
                for _ in 0..5 {
                    net.step();
                }
                net.into_nodes()
            }
        };
        boxed
            .into_iter()
            .map(|b| b.into_any().downcast::<Probe>().unwrap().seen)
            .collect()
    };

    for engine in [Engine::Sync, Engine::Event] {
        // Corrupt: P1 sees the flipped byte, every sibling the original.
        let seen = run(
            engine,
            LinkFault::Corrupt {
                offset: 0,
                mask: 0xff,
            },
        );
        let mut corrupted = PAYLOAD.to_vec();
        corrupted[0] ^= 0xff;
        assert_eq!(
            seen[1],
            vec![(1, NodeId(0), corrupted)],
            "{engine}: fault did not bite"
        );
        for (i, node) in seen.iter().enumerate().skip(2) {
            assert_eq!(
                node,
                &vec![(1, NodeId(0), PAYLOAD.to_vec())],
                "{engine}: corruption leaked into P{i}'s shared buffer"
            );
        }

        // Duplicate: two bit-exact copies at P1, one everywhere else.
        let seen = run(engine, LinkFault::Duplicate);
        assert_eq!(seen[1].len(), 2, "{engine}");
        for (i, node) in seen.iter().enumerate().skip(1) {
            for (_, from, bytes) in node {
                assert_eq!((*from, &bytes[..]), (NodeId(0), PAYLOAD), "{engine} P{i}");
            }
        }

        // Reorder: P1's copy is re-filed after everything else at the
        // boundary, bytes untouched; siblings unaffected.
        let seen = run(engine, LinkFault::Reorder);
        assert_eq!(seen[1], vec![(1, NodeId(0), PAYLOAD.to_vec())], "{engine}");
        for node in seen.iter().skip(2) {
            assert_eq!(node, &vec![(1, NodeId(0), PAYLOAD.to_vec())], "{engine}");
        }

        // Delay: P1's copy lands a round late, bytes untouched; siblings
        // deliver on time from the same shared buffer.
        let seen = run(engine, LinkFault::Delay { rounds: 2 });
        let late_round = seen[1][0].0;
        assert!(late_round > 1, "{engine}: delay fault did not delay");
        assert_eq!(
            seen[1],
            vec![(late_round, NodeId(0), PAYLOAD.to_vec())],
            "{engine}"
        );
        for node in seen.iter().skip(2) {
            assert_eq!(node, &vec![(1, NodeId(0), PAYLOAD.to_vec())], "{engine}");
        }
    }
}

/// The two new timing faults ride the same contract.
#[test]
fn delay_and_reorder_faults_never_cause_silent_disagreement() {
    for kind in [LinkFault::Delay { rounds: 1 }, LinkFault::Reorder] {
        for protocol in Protocol::ALL {
            for engine in [Engine::Sync, Engine::Event] {
                for seed in 0..4u64 {
                    let (outcome, agreed) = run_with_faults(protocol, engine, kind, seed);
                    assert_ne!(
                        outcome,
                        SweepOutcome::SilentDisagreement,
                        "{protocol} on {} engine, seed {seed}, {kind:?}",
                        engine.name()
                    );
                    assert!(agreed, "{protocol}: decided values diverged under {kind:?}");
                }
            }
        }
    }
}
