//! N1-violation coverage across the full protocol lineup: seeded random
//! `Duplicate` and `Corrupt` link faults against every FD/BA protocol, on
//! both engines. The contract under a broken network assumption is the
//! paper's safety property: a fault may be *discovered*, it may be
//! absorbed (hit an unused link), but it must never produce silent
//! disagreement — and any nodes that do decide must agree on the value.

use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::RunSpec;
use local_auth_fd::core::sweep::{classify, Protocol, SweepOutcome};
use local_auth_fd::crypto::SchnorrScheme;
use local_auth_fd::simnet::fault::{FaultPlan, LinkFault};
use local_auth_fd::simnet::Engine;
use std::collections::BTreeSet;
use std::sync::Arc;

const N: usize = 7;

/// A fault budget every protocol accepts at `n = 7` (Phase King needs
/// `n > 4t`).
fn budget(protocol: Protocol) -> usize {
    match protocol {
        Protocol::PhaseKing => 1,
        _ => 2,
    }
}

/// Inject `k` seeded faults of the given kind into one run of `protocol`
/// and classify the correct-node outcomes.
fn run_with_faults(
    protocol: Protocol,
    engine: Engine,
    kind: LinkFault,
    seed: u64,
) -> (SweepOutcome, bool) {
    let t = budget(protocol);
    let plan = FaultPlan::random(N, 3, 3, seed, &[kind]);
    let cluster = Cluster::new(N, t, Arc::new(SchnorrScheme::test_tiny()), seed)
        .with_engine(engine)
        .with_faults(plan);
    // Keys are established in the clean setup phase; the faults hit the
    // protocol run itself.
    let keydist = cluster.keydist_for(protocol);
    let value = b"fault-matrix".to_vec();
    let spec =
        RunSpec::new(protocol, value.clone()).with_default_value(b"fallback-default".to_vec());
    let run = cluster.run_with_keys(&spec, keydist.as_ref());
    let decided: BTreeSet<Vec<u8>> = run
        .correct_outcomes()
        .iter()
        .filter_map(|o| o.decided().map(<[u8]>::to_vec))
        .collect();
    (classify(&run, true), decided.len() <= 1)
}

fn assert_never_silent(kind: LinkFault) {
    for protocol in Protocol::ALL {
        for engine in [Engine::Sync, Engine::Event] {
            for seed in 0..8u64 {
                let (outcome, agreed) = run_with_faults(protocol, engine, kind, seed);
                assert_ne!(
                    outcome,
                    SweepOutcome::SilentDisagreement,
                    "{protocol} on {} engine, seed {seed}, {kind:?}",
                    engine.name()
                );
                assert!(
                    agreed,
                    "{protocol} on {} engine, seed {seed}: decided values diverged",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn duplicate_faults_never_cause_silent_disagreement() {
    assert_never_silent(LinkFault::Duplicate);
}

#[test]
fn corrupt_faults_never_cause_silent_disagreement() {
    assert_never_silent(LinkFault::Corrupt { offset: 0, mask: 0 });
}

/// A fault on the link the chain actually uses must *bite*: the chain is
/// the single source of truth in chain FD, so a duplicated or corrupted
/// first hop is always discovered, on both engines.
#[test]
fn faults_on_the_used_link_are_discovered() {
    for engine in [Engine::Sync, Engine::Event] {
        for kind in [
            LinkFault::Duplicate,
            LinkFault::Corrupt {
                offset: 20,
                mask: 0x01,
            },
        ] {
            let plan = FaultPlan::new().with(
                0,
                local_auth_fd::simnet::NodeId(0),
                local_auth_fd::simnet::NodeId(1),
                kind,
            );
            let cluster = Cluster::new(N, 2, Arc::new(SchnorrScheme::test_tiny()), 1)
                .with_engine(engine)
                .with_faults(plan);
            let keydist = cluster.keydist_for(Protocol::ChainFd);
            let spec =
                RunSpec::new(Protocol::ChainFd, b"v".to_vec()).with_default_value(b"d".to_vec());
            let run = cluster.run_with_keys(&spec, keydist.as_ref());
            assert_eq!(
                classify(&run, true),
                SweepOutcome::Discovered,
                "{kind:?} on {} engine was not discovered",
                engine.name()
            );
        }
    }
}

/// The two new timing faults ride the same contract.
#[test]
fn delay_and_reorder_faults_never_cause_silent_disagreement() {
    for kind in [LinkFault::Delay { rounds: 1 }, LinkFault::Reorder] {
        for protocol in Protocol::ALL {
            for engine in [Engine::Sync, Engine::Event] {
                for seed in 0..4u64 {
                    let (outcome, agreed) = run_with_faults(protocol, engine, kind, seed);
                    assert_ne!(
                        outcome,
                        SweepOutcome::SilentDisagreement,
                        "{protocol} on {} engine, seed {seed}, {kind:?}",
                        engine.name()
                    );
                    assert!(agreed, "{protocol}: decided values diverged under {kind:?}");
                }
            }
        }
    }
}
