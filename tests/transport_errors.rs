//! Typed-failure coverage for the deployment transport: every
//! [`TransportError`] variant a worker can hit in the field must be
//! provokeable through the public API and must surface *as that typed
//! variant*, not as a stringly-typed catch-all. With retry disabled
//! (`RetryPolicy::once()`) the raw error passes through untouched; with
//! a budget, exhaustion wraps the final error in
//! [`TransportError::Exhausted`].

use local_auth_fd::core::deploy::{self, WorkerConfig, WorkerFailure};
use local_auth_fd::core::spec::{Protocol, SpecBuilder};
use local_auth_fd::core::wire::RegistryRequest;
use local_auth_fd::simnet::transport::chaos::{ChaosInjector, ChaosSpec, RetryCtx, RetryPolicy};
use local_auth_fd::simnet::transport::{MeshPeers, NbCluster, TransportError};
use local_auth_fd::simnet::{Envelope, Node, NodeId, Outbox};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

/// A retry context that makes exactly one attempt, so the raw typed
/// error reaches the caller instead of an [`TransportError::Exhausted`]
/// wrapper.
fn no_retry() -> RetryCtx {
    RetryCtx::new(RetryPolicy::once(), 0)
}

/// Bind a listener, record its address, and free the port again — the
/// closest thing to a guaranteed-dead local endpoint.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind throwaway listener");
    listener.local_addr().expect("local addr")
}

#[test]
fn unroutable_bind_interface_surfaces_as_a_typed_bind_error() {
    // 192.0.2.1 (TEST-NET-1) is never a local interface, so the mesh
    // listener bind fails before the worker ever contacts the registry —
    // the registry address below is deliberately dead.
    let builder = SpecBuilder::new(Protocol::ChainFd, 4)
        .with_seed(23)
        .with_input(b"attack at dawn".to_vec())
        .with_default_value(b"default".to_vec());
    let mut cfg = WorkerConfig::localhost(
        "127.0.0.1:9".to_string(),
        "run-bind-test".to_string(),
        0,
        Duration::from_secs(1),
    );
    cfg.bind = "192.0.2.1".to_string();
    match deploy::run_worker(&cfg, &builder) {
        Err(WorkerFailure::Transport {
            error: TransportError::Bind { node, .. },
            ..
        }) => assert_eq!(node, NodeId(0)),
        other => panic!("expected a typed Bind failure, got {other:?}"),
    }
}

#[test]
fn refused_mesh_connect_surfaces_as_a_typed_connect_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind mesh listener");
    let my_addr = listener.local_addr().expect("local addr");
    // Node 0 dials every higher id; peer 1's port is dead.
    let addrs = [my_addr, dead_addr()];
    let err = MeshPeers::establish_with(
        NodeId(0),
        &listener,
        &addrs,
        Duration::from_secs(2),
        &no_retry(),
        None,
    )
    .expect_err("connecting to a dead port must fail");
    match err {
        TransportError::Connect { node, peer, .. } => {
            assert_eq!(node, NodeId(0));
            assert_eq!(peer, NodeId(1));
        }
        other => panic!("expected a typed Connect error, got {other}"),
    }
}

#[test]
fn handshake_reset_surfaces_as_a_typed_handshake_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind mesh listener");
    let my_addr = listener.local_addr().expect("local addr");
    // A live peer listener so the TCP connect itself succeeds; the chaos
    // injector then resets every handshake (reset=100), and with retry
    // disabled the reset reaches the caller as the raw typed error.
    let peer_listener = TcpListener::bind("127.0.0.1:0").expect("bind peer listener");
    let addrs = [my_addr, peer_listener.local_addr().expect("local addr")];
    let spec = ChaosSpec::parse("seed=1;reset=100").expect("valid chaos spec");
    let chaos = ChaosInjector::new(spec, 0, 0);
    let err = MeshPeers::establish_with(
        NodeId(0),
        &listener,
        &addrs,
        Duration::from_secs(2),
        &no_retry(),
        Some(&chaos),
    )
    .expect_err("a 100% reset rate must fail the handshake");
    match err {
        TransportError::Handshake { node, peer, detail } => {
            assert_eq!(node, NodeId(0));
            assert_eq!(peer, Some(NodeId(1)));
            assert!(
                detail.contains("chaos: connection reset"),
                "handshake error must carry the reset detail, got: {detail}"
            );
        }
        other => panic!("expected a typed Handshake error, got {other}"),
    }
}

#[test]
fn unreachable_registry_surfaces_as_a_typed_io_error() {
    let gone = dead_addr();
    let err = deploy::registry_call_with(
        &gone.to_string(),
        &RegistryRequest::Collect {
            run: "run-io-test".to_string(),
        },
        Duration::from_millis(500),
        NodeId(3),
        &no_retry(),
        None,
    )
    .expect_err("calling a dead registry must fail");
    match err {
        TransportError::Io { node, .. } => assert_eq!(node, NodeId(3)),
        other => panic!("expected a typed Io error, got {other}"),
    }
}

#[test]
fn silent_accept_side_surfaces_as_a_typed_deadline_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind mesh listener");
    let my_addr = listener.local_addr().expect("local addr");
    // Node 1 dials nobody (no higher ids) and waits for node 0 to dial
    // in — which never happens, so the accept loop's deadline fires.
    let addrs = [dead_addr(), my_addr];
    let err = MeshPeers::establish_with(
        NodeId(1),
        &listener,
        &addrs,
        Duration::from_millis(300),
        &no_retry(),
        None,
    )
    .expect_err("an accept side nobody dials must time out");
    match err {
        TransportError::Deadline { node, waiting, .. } => {
            assert_eq!(node, NodeId(1));
            assert!(
                waiting.contains("peer connection"),
                "deadline must say what it was waiting for, got: {waiting}"
            );
        }
        other => panic!("expected a typed Deadline error, got {other}"),
    }
}

#[test]
fn an_exhausted_retry_budget_wraps_the_final_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind mesh listener");
    let my_addr = listener.local_addr().expect("local addr");
    let addrs = [my_addr, dead_addr()];
    let policy = RetryPolicy {
        max_attempts: 2,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(2),
    };
    let err = MeshPeers::establish_with(
        NodeId(0),
        &listener,
        &addrs,
        Duration::from_secs(2),
        &RetryCtx::new(policy, 7),
        None,
    )
    .expect_err("a dead peer must exhaust the retry budget");
    match err {
        TransportError::Exhausted {
            node,
            context,
            attempts,
            last,
        } => {
            assert_eq!(node, NodeId(0));
            assert_eq!(attempts, 2);
            assert!(
                context.contains("mesh connect peer 1"),
                "exhaustion must name the retried site, got: {context}"
            );
            assert!(
                !last.is_empty(),
                "exhaustion must carry the final attempt's error"
            );
        }
        other => panic!("expected a typed Exhausted error, got {other}"),
    }
}

/// A node that panics on its first round — the stand-in for a worker
/// whose automaton has a genuine bug rather than a transport fault.
struct PanickyNode {
    id: NodeId,
    panics: bool,
}

impl Node for PanickyNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn on_round(&mut self, _round: u32, _inbox: &[Envelope], _out: &mut Outbox) {
        if self.panics {
            panic!("scripted automaton bug");
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[test]
fn a_panicking_worker_thread_surfaces_as_a_typed_worker_panic() {
    let nodes: Vec<Box<dyn Node>> = vec![
        Box::new(PanickyNode {
            id: NodeId(0),
            panics: false,
        }),
        Box::new(PanickyNode {
            id: NodeId(1),
            panics: true,
        }),
    ];
    let report = NbCluster::new(2)
        .with_io_deadline(Duration::from_secs(2))
        .run(nodes);
    assert!(
        report
            .errors
            .iter()
            .any(|e| matches!(e, TransportError::WorkerPanic { node } if *node == NodeId(1))),
        "the panicking slot must surface as WorkerPanic, got: {:?}",
        report.errors
    );
}
