//! Integration tests for the Byzantine Agreement layer: the FD→BA
//! extension (failure-free runs at FD cost, experiment T6), Dolev–Strong
//! under local authentication, and the EIG baseline.

use local_auth_fd::core::adversary::{
    AdversarySpec, ChainFdAdversary, ChainMisbehavior, SilentNode,
};
use local_auth_fd::core::fd::ChainFdParams;
use local_auth_fd::core::keys::Keyring;
use local_auth_fd::core::metrics;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec};
use local_auth_fd::crypto::{SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::{Node, NodeId};
use std::sync::Arc;

fn scheme() -> Arc<dyn SignatureScheme> {
    Arc::new(SchnorrScheme::test_tiny())
}

fn cluster(n: usize, t: usize, seed: u64) -> Cluster {
    Cluster::new(n, t, scheme(), seed)
}

#[test]
fn fd_to_ba_failure_free_equals_fd_cost_t6() {
    for (n, t) in [(4usize, 1usize), (7, 2), (10, 3), (13, 4)] {
        let c = cluster(n, t, 1);
        let kd = c.run_key_distribution();
        let fd = c.run_with_keys(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()), Some(&kd));
        let ba = c.run_with_keys(
            &RunSpec::new(Protocol::FdToBa, b"v".to_vec()).with_default_value(b"d".to_vec()),
            Some(&kd),
        );
        assert_eq!(
            ba.stats.messages_total, fd.stats.messages_total,
            "n={n} t={t}: T6 failure-free BA at FD cost"
        );
        assert_eq!(ba.stats.messages_total, metrics::chain_fd_messages(n));
        assert!(ba.all_decided(b"v"));
        assert!(ba.used_fallback.iter().all(|f| !f));
    }
}

#[test]
fn fd_to_ba_silent_relay_uniform_fallback_validity() {
    // Faulty chain relay goes silent: FD discovers, alarms propagate,
    // ALL correct nodes fall back together and (sender correct) decide v.
    let (n, t) = (7usize, 2usize);
    let c = cluster(n, t, 2);
    let kd = c.run_key_distribution();
    let spec = RunSpec::new(Protocol::FdToBa, b"v".to_vec())
        .with_default_value(b"d".to_vec())
        .with_adversary(AdversarySpec::custom(|id| {
            (id == NodeId(1)).then(|| Box::new(SilentNode { me: NodeId(1) }) as Box<dyn Node>)
        }));
    let run = c.run_with_keys(&spec, Some(&kd));
    let outs = run.correct_outcomes();
    for o in &outs {
        assert_eq!(
            o.decided(),
            Some(&b"v"[..]),
            "BA validity with correct sender"
        );
    }
    // Every correct node used the fallback (all-or-none).
    for (i, (outcome, fb)) in run
        .outcomes
        .iter()
        .zip(run.used_fallback.iter())
        .enumerate()
    {
        if outcome.is_some() {
            assert!(*fb, "node {i} must have taken the fallback");
        }
    }
}

#[test]
fn fd_to_ba_tampering_relay_agreement() {
    let (n, t) = (7usize, 2usize);
    let c = cluster(n, t, 3);
    let kd = c.run_key_distribution();
    let seed = c.seed;
    let spec = RunSpec::new(Protocol::FdToBa, b"v".to_vec())
        .with_default_value(b"d".to_vec())
        .with_adversary(AdversarySpec::custom(move |id| {
            (id == NodeId(2)).then(|| {
                Box::new(ChainFdAdversary::new(
                    NodeId(2),
                    ChainFdParams::new(n, t),
                    scheme(),
                    Keyring::generate(scheme().as_ref(), NodeId(2), seed),
                    ChainMisbehavior::TamperBody {
                        new_body: b"evil".to_vec(),
                    },
                    None,
                )) as Box<dyn Node>
            })
        }));
    let run = c.run_with_keys(&spec, Some(&kd));
    // Agreement among correct nodes (BA, not just FD):
    let outs = run.correct_outcomes();
    let first = outs[0].decided().expect("BA always decides").to_vec();
    for o in &outs {
        assert_eq!(o.decided(), Some(&first[..]), "BA agreement");
    }
    // And validity: sender is correct.
    assert_eq!(first, b"v".to_vec());
}

#[test]
fn dolev_strong_under_local_auth() {
    let (n, t) = (6usize, 2usize);
    let c = cluster(n, t, 4);
    let kd = c.run_key_distribution();
    let run = c.run_with_keys(
        &RunSpec::new(Protocol::DolevStrong, b"v".to_vec()).with_default_value(b"d".to_vec()),
        Some(&kd),
    );
    assert!(run.all_decided(b"v"));
    // Failure-free DS costs n(n-1) — quadratic, the contrast in T6.
    assert_eq!(run.stats.messages_total, n * (n - 1));
}

#[test]
fn dolev_strong_silent_sender_default() {
    let (n, t) = (5usize, 1usize);
    let c = cluster(n, t, 5);
    let kd = c.run_key_distribution();
    let mut sub = |id: NodeId| {
        (id == NodeId(0)).then(|| Box::new(SilentNode { me: NodeId(0) }) as Box<dyn Node>)
    };
    // run_dolev_strong has no substitution variant; build via chain FD's
    // pattern: use the runner's generic FD-to-BA substitution instead.
    let _ = &mut sub;
    // Simplest: run with the DS node set assembled manually.
    use local_auth_fd::core::ba::{DolevStrongNode, DolevStrongParams};
    use local_auth_fd::simnet::SyncNetwork;
    let params = DolevStrongParams::new(n, t, b"d".to_vec());
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            if i == 0 {
                Box::new(SilentNode { me }) as Box<dyn Node>
            } else {
                Box::new(DolevStrongNode::new(
                    me,
                    params.clone(),
                    scheme(),
                    kd.store(me).clone(),
                    Keyring::generate(scheme().as_ref(), me, c.seed),
                    None,
                )) as Box<dyn Node>
            }
        })
        .collect();
    let mut net = SyncNetwork::new(nodes);
    net.run_until_done(params.rounds());
    for boxed in net.into_nodes().into_iter().skip(1) {
        let node = boxed
            .into_any()
            .downcast::<DolevStrongNode>()
            .expect("DolevStrongNode");
        assert_eq!(node.outcome().decided(), Some(&b"d"[..]));
    }
}

#[test]
fn fd_to_ba_deterministic_replay() {
    let (n, t) = (7usize, 2usize);
    let run = |seed| {
        let c = cluster(n, t, seed);
        let kd = c.run_key_distribution();
        let spec = RunSpec::new(Protocol::FdToBa, b"v".to_vec())
            .with_default_value(b"d".to_vec())
            .with_adversary(AdversarySpec::custom(|id| {
                (id == NodeId(1)).then(|| Box::new(SilentNode { me: NodeId(1) }) as Box<dyn Node>)
            }));
        let r = c.run_with_keys(&spec, Some(&kd));
        (r.stats.messages_total, r.correct_outcomes())
    };
    assert_eq!(run(9), run(9));
}
