//! The property matrix (experiment T4): every adversary against every
//! protocol, asserting the paper's F1–F3 on the correct nodes' outcomes.
//!
//! The invariant under test, in every single scenario: **silent
//! disagreement never happens** — either all correct deciders agree (and
//! match a correct sender), or at least one correct node discovers a
//! failure (F2/F3 are then vacuous, per the problem statement).

use local_auth_fd::core::adversary::{
    AdversarySpec, ChainFdAdversary, ChainMisbehavior, EquivocatingKeyDist, NaMisbehavior,
    NoiseNode, NonAuthAdversary, SilentNode,
};
use local_auth_fd::core::fd::{ChainFdParams, NonAuthParams};
use local_auth_fd::core::keys::Keyring;
use local_auth_fd::core::props::check_fd;
use local_auth_fd::core::runner::{Cluster, FdRunReport, KeyDistReport};
use local_auth_fd::core::spec::{Protocol, RunSpec};
use local_auth_fd::crypto::{SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::{Node, NodeId};
use std::sync::Arc;

fn scheme() -> Arc<dyn SignatureScheme> {
    Arc::new(SchnorrScheme::test_tiny())
}

fn cluster(n: usize, t: usize, seed: u64) -> Cluster {
    Cluster::new(n, t, scheme(), seed)
}

/// Chain-FD over an existing keydist with a scripted adversary.
fn run_chain(
    c: &Cluster,
    kd: &KeyDistReport,
    value: &[u8],
    adversary: AdversarySpec,
) -> FdRunReport {
    let spec = RunSpec::new(Protocol::ChainFd, value.to_vec()).with_adversary(adversary);
    c.run_with_keys(&spec, Some(kd))
}

/// Non-authenticated FD (no keys needed) with a scripted adversary.
fn run_nonauth(c: &Cluster, value: &[u8], adversary: AdversarySpec) -> FdRunReport {
    let spec = RunSpec::new(Protocol::NonAuthFd, value.to_vec()).with_adversary(adversary);
    c.run(&spec)
}

/// Assert F1–F3 on a run where the sender is correct with value `v`.
fn assert_props_sender_correct(outcomes: &[local_auth_fd::core::Outcome], v: &[u8], label: &str) {
    let report = check_fd(outcomes, Some(v));
    assert!(report.all_ok(), "{label}: {report:?} outcomes={outcomes:?}");
}

/// Assert F1–F3 on a run with a faulty sender.
fn assert_props_sender_faulty(outcomes: &[local_auth_fd::core::Outcome], label: &str) {
    let report = check_fd(outcomes, None);
    assert!(report.all_ok(), "{label}: {report:?} outcomes={outcomes:?}");
}

#[test]
fn chain_fd_silent_relay() {
    let (n, t) = (6usize, 2usize);
    let c = cluster(n, t, 1);
    let kd = c.run_key_distribution();
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(1)).then(|| Box::new(SilentNode { me: NodeId(1) }) as Box<dyn Node>)
    });
    let run = run_chain(&c, &kd, b"v", adversary);
    assert_props_sender_correct(&run.correct_outcomes(), b"v", "silent relay");
    assert!(run.any_discovery(), "silence must be discovered downstream");
}

#[test]
fn chain_fd_tampering_relay_discovered() {
    let (n, t) = (6usize, 2usize);
    let c = cluster(n, t, 2);
    let kd = c.run_key_distribution();
    let seed = c.seed;
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(1)).then(|| {
            Box::new(ChainFdAdversary::new(
                NodeId(1),
                ChainFdParams::new(n, t),
                scheme(),
                Keyring::generate(scheme().as_ref(), NodeId(1), seed),
                ChainMisbehavior::TamperBody {
                    new_body: b"evil".to_vec(),
                },
                None,
            )) as Box<dyn Node>
        })
    });
    let run = run_chain(&c, &kd, b"v", adversary);
    assert_props_sender_correct(&run.correct_outcomes(), b"v", "tampering relay");
    assert!(run.any_discovery(), "tampering breaks the origin signature");
}

#[test]
fn chain_fd_wrong_name_discovered_theorem_4() {
    let (n, t) = (6usize, 2usize);
    let c = cluster(n, t, 3);
    let kd = c.run_key_distribution();
    let seed = c.seed;
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(2)).then(|| {
            Box::new(ChainFdAdversary::new(
                NodeId(2),
                ChainFdParams::new(n, t),
                scheme(),
                Keyring::generate(scheme().as_ref(), NodeId(2), seed),
                ChainMisbehavior::WrongAssigneeName { claim: NodeId(4) },
                None,
            )) as Box<dyn Node>
        })
    });
    let run = run_chain(&c, &kd, b"v", adversary);
    assert_props_sender_correct(&run.correct_outcomes(), b"v", "wrong assignee name");
    assert!(
        run.any_discovery(),
        "name mismatch is the Theorem 4 trigger"
    );
}

#[test]
fn chain_fd_forged_origin_discovered() {
    let (n, t) = (6usize, 2usize);
    let c = cluster(n, t, 4);
    let kd = c.run_key_distribution();
    let seed = c.seed;
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(1)).then(|| {
            Box::new(ChainFdAdversary::new(
                NodeId(1),
                ChainFdParams::new(n, t),
                scheme(),
                Keyring::generate(scheme().as_ref(), NodeId(1), seed),
                ChainMisbehavior::ForgeOrigin {
                    value: b"forged".to_vec(),
                },
                None,
            )) as Box<dyn Node>
        })
    });
    let run = run_chain(&c, &kd, b"v", adversary);
    assert_props_sender_correct(&run.correct_outcomes(), b"v", "forged origin");
    assert!(run.any_discovery(), "S1 prevents forging the sender's key");
}

#[test]
fn chain_fd_partial_dissemination_discovered_by_starved() {
    let (n, t) = (7usize, 2usize);
    let c = cluster(n, t, 5);
    let kd = c.run_key_distribution();
    let seed = c.seed;
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(2)).then(|| {
            Box::new(ChainFdAdversary::new(
                NodeId(2),
                ChainFdParams::new(n, t),
                scheme(),
                Keyring::generate(scheme().as_ref(), NodeId(2), seed),
                ChainMisbehavior::PartialDissemination {
                    skip: vec![NodeId(5), NodeId(6)],
                },
                None,
            )) as Box<dyn Node>
        })
    });
    let run = run_chain(&c, &kd, b"v", adversary);
    assert_props_sender_correct(&run.correct_outcomes(), b"v", "partial dissemination");
    // The starved nodes discover MissingMessage; the others decide v.
    let outs = &run.outcomes;
    assert!(outs[5].as_ref().unwrap().is_discovered());
    assert!(outs[6].as_ref().unwrap().is_discovered());
    assert_eq!(outs[3].as_ref().unwrap().decided(), Some(&b"v"[..]));
}

#[test]
fn chain_fd_equivocating_sender_t0_discovered_or_consistent() {
    // t = 0: the sender disseminates directly and is the only possible
    // fault. Equivocation gives different values to different nodes — but
    // each is validly signed, so nobody can tell locally. F2 is vacuous
    // only if someone discovers… nobody does here; but F2/F3 require *no
    // correct node discovers* AND sender correct. The sender IS the faulty
    // one, so F3 is vacuous; F2 however is violated by design with t = 0 —
    // which is exactly why t must bound the real number of faults (here
    // faults = 1 > t = 0). This test documents the model boundary.
    let (n, t) = (5usize, 0usize);
    let c = cluster(n, t, 6);
    let kd = c.run_key_distribution();
    let seed = c.seed;
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(0)).then(|| {
            Box::new(ChainFdAdversary::new(
                NodeId(0),
                ChainFdParams::new(n, t),
                scheme(),
                Keyring::generate(scheme().as_ref(), NodeId(0), seed),
                ChainMisbehavior::EquivocateSenderT0 {
                    value_a: b"a".to_vec(),
                    value_b: b"b".to_vec(),
                    split: NodeId(3),
                },
                Some(b"a".to_vec()),
            )) as Box<dyn Node>
        })
    });
    let run = run_chain(&c, &kd, b"a", adversary);
    // With more faults than t, FD gives no guarantee — verify the split
    // actually happened (this is the boundary, not a bug).
    let outs = run.correct_outcomes();
    let decided: Vec<_> = outs.iter().filter_map(|o| o.decided()).collect();
    assert!(decided.contains(&&b"a"[..]) && decided.contains(&&b"b"[..]));
}

#[test]
fn chain_fd_key_equivocation_then_signing_discovered() {
    // THE Theorem 4 scenario: node 2 equivocated its predicate during key
    // distribution (A to nodes < 4, B to nodes >= 4), then relays the FD
    // chain signing with key A. Nodes holding B must discover.
    let (n, t) = (7usize, 2usize);
    let c = cluster(n, t, 7);
    let sch = scheme();
    let kd = c.run_key_distribution_with(&mut |id| {
        (id == NodeId(2)).then(|| {
            Box::new(EquivocatingKeyDist::new(
                NodeId(2),
                n,
                Arc::clone(&sch),
                999,
                NodeId(4),
            )) as Box<dyn Node>
        })
    });
    // Reconstruct the equivocator's key A deterministically.
    let reference = EquivocatingKeyDist::new(NodeId(2), n, Arc::clone(&sch), 999, NodeId(4));
    let sk_a = reference.key_for(NodeId(0)).0.clone();

    let seed = c.seed;
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(2)).then(|| {
            Box::new(ChainFdAdversary::new(
                NodeId(2),
                ChainFdParams::new(n, t),
                scheme(),
                Keyring::generate(scheme().as_ref(), NodeId(2), seed),
                ChainMisbehavior::SignWithKey { sk: sk_a.clone() },
                None,
            )) as Box<dyn Node>
        })
    });
    let run = run_chain(&c, &kd, b"v", adversary);
    assert_props_sender_correct(&run.correct_outcomes(), b"v", "key equivocation");
    assert!(
        run.any_discovery(),
        "nodes holding predicate B must discover (Theorem 4)"
    );
    // Nodes that accepted A (3) verify fine; nodes with B (4, 5, 6)
    // discover.
    assert_eq!(run.outcomes[3].as_ref().unwrap().decided(), Some(&b"v"[..]));
    for i in [4usize, 5, 6] {
        assert!(
            run.outcomes[i].as_ref().unwrap().is_discovered(),
            "node {i}"
        );
    }
}

#[test]
fn non_auth_equivocating_sender_discovered() {
    let (n, t) = (6usize, 2usize);
    let c = cluster(n, t, 8);
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(0)).then(|| {
            Box::new(NonAuthAdversary::new(
                NodeId(0),
                NonAuthParams::new(n, t),
                NaMisbehavior::EquivocateSender {
                    value_a: b"a".to_vec(),
                    value_b: b"b".to_vec(),
                    split: NodeId(3),
                },
                Some(b"a".to_vec()),
            )) as Box<dyn Node>
        })
    });
    let run = run_nonauth(&c, b"a", adversary);
    assert_props_sender_faulty(&run.correct_outcomes(), "NA equivocating sender");
    assert!(
        run.any_discovery(),
        "witness relays expose the equivocation"
    );
}

#[test]
fn non_auth_lying_witness_discovered() {
    let (n, t) = (6usize, 2usize);
    let c = cluster(n, t, 9);
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(2)).then(|| {
            Box::new(NonAuthAdversary::new(
                NodeId(2),
                NonAuthParams::new(n, t),
                NaMisbehavior::LieRelay {
                    value: b"lie".to_vec(),
                },
                None,
            )) as Box<dyn Node>
        })
    });
    let run = run_nonauth(&c, b"v", adversary);
    assert_props_sender_correct(&run.correct_outcomes(), b"v", "lying witness");
    assert!(run.any_discovery());
}

#[test]
fn non_auth_two_faced_witness_discovered() {
    let (n, t) = (7usize, 2usize);
    let c = cluster(n, t, 10);
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(1)).then(|| {
            Box::new(NonAuthAdversary::new(
                NodeId(1),
                NonAuthParams::new(n, t),
                NaMisbehavior::TwoFacedRelay {
                    lie: b"lie".to_vec(),
                    split: NodeId(4),
                },
                None,
            )) as Box<dyn Node>
        })
    });
    let run = run_nonauth(&c, b"v", adversary);
    assert_props_sender_correct(&run.correct_outcomes(), b"v", "two-faced witness");
    // Nodes at or above the split saw a conflicting relay: discovery.
    assert!(run.outcomes[5].as_ref().unwrap().is_discovered());
}

#[test]
fn non_auth_silent_witness_discovered() {
    let (n, t) = (5usize, 1usize);
    let c = cluster(n, t, 11);
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(2)).then(|| {
            Box::new(NonAuthAdversary::new(
                NodeId(2),
                NonAuthParams::new(n, t),
                NaMisbehavior::Silent,
                None,
            )) as Box<dyn Node>
        })
    });
    let run = run_nonauth(&c, b"v", adversary);
    assert_props_sender_correct(&run.correct_outcomes(), b"v", "silent witness");
    assert!(run.any_discovery());
}

#[test]
fn noise_flood_never_causes_silent_disagreement() {
    // A garbage-flooding node in both phases; every decode path must hold.
    for seed in 0..5u64 {
        let (n, t) = (6usize, 2usize);
        let c = cluster(n, t, 100 + seed);
        let kd = c.run_key_distribution_with(&mut |id| {
            (id == NodeId(5))
                .then(|| Box::new(NoiseNode::new(NodeId(5), n, seed, 4, 64, 4)) as Box<dyn Node>)
        });
        let adversary = AdversarySpec::custom(move |id| {
            (id == NodeId(5)).then(|| {
                Box::new(NoiseNode::new(NodeId(5), n, seed ^ 0xff, 4, 64, 6)) as Box<dyn Node>
            })
        });
        let run = run_chain(&c, &kd, b"v", adversary);
        assert_props_sender_correct(&run.correct_outcomes(), b"v", "noise flood");
    }
}

#[test]
fn matrix_sweep_over_seeds_never_silent_disagreement() {
    // A broader randomized sweep: one faulty chain relay per run with a
    // seed-dependent behaviour; the FD properties must hold in every case.
    for seed in 0..20u64 {
        let (n, t) = (7usize, 2usize);
        let c = cluster(n, t, 1000 + seed);
        let kd = c.run_key_distribution();
        let behavior = match seed % 4 {
            0 => ChainMisbehavior::Silent,
            1 => ChainMisbehavior::TamperBody {
                new_body: vec![seed as u8],
            },
            2 => ChainMisbehavior::WrongAssigneeName {
                claim: NodeId((seed % 7) as u16),
            },
            _ => ChainMisbehavior::PartialDissemination {
                skip: vec![NodeId(3 + (seed % 4) as u16)],
            },
        };
        let faulty = NodeId(1 + (seed % 2) as u16);
        let cluster_seed = c.seed;
        let behavior_for_label = behavior.clone();
        let adversary = AdversarySpec::custom(move |id| {
            (id == faulty).then(|| {
                Box::new(ChainFdAdversary::new(
                    faulty,
                    ChainFdParams::new(n, t),
                    scheme(),
                    Keyring::generate(scheme().as_ref(), faulty, cluster_seed),
                    behavior.clone(),
                    None,
                )) as Box<dyn Node>
            })
        });
        let run = run_chain(&c, &kd, b"v", adversary);
        assert_props_sender_correct(
            &run.correct_outcomes(),
            b"v",
            &format!("sweep seed={seed} behavior={behavior_for_label:?}"),
        );
    }
}

#[test]
fn shared_key_clique_runs_fd_without_discovery_g1_caveat() {
    // Paper §3.2 on G1: cooperating faulty nodes may share a secret key;
    // signatures are then assigned to whoever announced the key — but
    // consistently, and nothing is discovered. The run proceeds normally.
    let (n, t) = (6usize, 2usize);
    let c = cluster(n, t, 12);
    let sch = scheme();
    let kd = c.run_key_distribution_with(&mut |id| {
        (id == NodeId(1) || id == NodeId(2)).then(|| {
            Box::new(local_auth_fd::core::adversary::SharedKeyKeyDist::new(
                id,
                n,
                Arc::clone(&sch),
                777,
            )) as Box<dyn Node>
        })
    });
    // Both clique members hold the same accepted predicate everywhere.
    let shared_pk = kd.store(NodeId(0)).accepted(NodeId(1)).unwrap().clone();
    assert_eq!(kd.store(NodeId(3)).accepted(NodeId(2)), Some(&shared_pk));

    // FD run where the clique members act as honest-timed relays using the
    // shared key: verification passes (the predicate matches), the value
    // flows, nobody discovers.
    let reference =
        local_auth_fd::core::adversary::SharedKeyKeyDist::new(NodeId(1), n, Arc::clone(&sch), 777);
    let (shared_sk, _) = reference.shared();
    let seed = c.seed;
    let sk_for_adversary = shared_sk.clone();
    let adversary = AdversarySpec::custom(move |id| {
        (id == NodeId(1) || id == NodeId(2)).then(|| {
            Box::new(ChainFdAdversary::new(
                id,
                ChainFdParams::new(n, t),
                scheme(),
                Keyring::generate(scheme().as_ref(), id, seed),
                ChainMisbehavior::SignWithKey {
                    sk: sk_for_adversary.clone(),
                },
                None,
            )) as Box<dyn Node>
        })
    });
    let run = run_chain(&c, &kd, b"v", adversary);
    assert!(!run.any_discovery(), "key sharing alone is undetectable");
    assert!(run
        .correct_outcomes()
        .iter()
        .all(|o| o.decided() == Some(&b"v"[..])));

    // The ambiguity itself: a signature with the shared key is assigned to
    // BOTH clique members by every correct store — consistently (G3-style
    // consistency holds even though G1's "real signer" is unknowable).
    let scheme_ref = scheme();
    let sig = scheme_ref.sign(&shared_sk, b"probe").unwrap();
    for holder in [NodeId(0), NodeId(3), NodeId(5)] {
        let store = kd.store(holder);
        assert!(store.assigns(scheme_ref.as_ref(), NodeId(1), b"probe", &sig));
        assert!(store.assigns(scheme_ref.as_ref(), NodeId(2), b"probe", &sig));
    }
}
