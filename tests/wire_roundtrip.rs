//! Round-trip property tests for the wire-v1 schema: every encoder in
//! `fd_core::wire` must be a left inverse of its decoder on the
//! wire-representable domain, byte for byte. This is the compatibility
//! contract `schema_version: 1` promises remote `lafd sweep` drivers.

use local_auth_fd::core::adversary::{AdversaryKind, AdversarySpec};
use local_auth_fd::core::spec::{Protocol, SpecBuilder};
use local_auth_fd::core::wire;
use local_auth_fd::simnet::{Engine, NodeId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Scripted adversary kinds with a wire encoding (everything but the
/// closure-carrying `Custom`, which `request_to_json` rejects).
const KINDS: [AdversaryKind; 6] = [
    AdversaryKind::None,
    AdversaryKind::SilentRelay,
    AdversaryKind::CrashRelay,
    AdversaryKind::TamperBody,
    AdversaryKind::ForgeOrigin,
    AdversaryKind::Equivocate,
];

/// A random wire-representable builder: every field the schema can carry
/// except engine/latency variations (exercised by the CLI sweep tests).
fn builder_strategy() -> impl Strategy<Value = SpecBuilder> {
    (
        (0usize..Protocol::ALL.len(), 5usize..10, any::<u64>()),
        prop::collection::vec(any::<u8>(), 0..24),
        prop::collection::vec(any::<u8>(), 0..8),
        (0usize..KINDS.len(), 0usize..4),
    )
        .prop_map(|((p, n, seed), input, default_value, (kind, corrupt))| {
            let mut builder = SpecBuilder::new(Protocol::ALL[p], n)
                .with_seed(seed)
                .with_input(input)
                .with_default_value(default_value);
            let kind = KINDS[kind];
            if kind != AdversaryKind::None {
                builder = builder.with_adversary(if corrupt == 0 {
                    AdversarySpec::scripted(kind)
                } else {
                    AdversarySpec::scripted_at(
                        kind,
                        (1..=corrupt).map(|i| NodeId(i as u16)).collect::<Vec<_>>(),
                    )
                });
            }
            builder
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hex_decode_inverts_hex_encode(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let hex = wire::hex_encode(&bytes);
        prop_assert_eq!(wire::hex_decode(&hex).unwrap(), bytes);
    }

    #[test]
    fn request_encoding_round_trips_byte_for_byte(
        builder in builder_strategy(),
        with_id in any::<bool>(),
        tag in any::<u32>(),
    ) {
        let id = with_id.then(|| format!("req-{tag}"));
        let encoded = wire::request_to_json(&builder, id.as_deref()).unwrap();
        let (decoded, decoded_id) = wire::request_from_json(&encoded).unwrap();
        prop_assert_eq!(&decoded_id, &id);
        // Re-encoding the decoded builder must reproduce the exact bytes.
        prop_assert_eq!(
            wire::request_to_json(&decoded, decoded_id.as_deref()).unwrap(),
            encoded
        );
        // And the decode is faithful on the semantic fields.
        prop_assert_eq!(decoded.protocol, builder.protocol);
        prop_assert_eq!(decoded.n, builder.n);
        prop_assert_eq!(decoded.seed, builder.seed);
        prop_assert_eq!(&decoded.input, &builder.input);
        prop_assert_eq!(&decoded.default_value, &builder.default_value);
        prop_assert_eq!(&decoded.adversary, &builder.adversary);
    }

    #[test]
    fn schedule_entries_survive_the_request_round_trip(
        entries in prop::collection::vec((0u64..512, 0u64..6), 0..12),
    ) {
        let map: HashMap<u64, u64> = entries.into_iter().collect();
        let builder = SpecBuilder::new(Protocol::ChainFd, 5)
            .with_engine(Engine::Event)
            .with_schedule(Some(Arc::new(map.clone())));
        let encoded = wire::request_to_json(&builder, None).unwrap();
        let (decoded, _) = wire::request_from_json(&encoded).unwrap();
        let schedule = decoded.schedule.clone().expect("schedule survives");
        prop_assert_eq!(&*schedule, &map);
        prop_assert_eq!(wire::request_to_json(&decoded, None).unwrap(), encoded);
    }

    #[test]
    fn report_encoding_round_trips_byte_for_byte(
        protocol_index in 0usize..Protocol::ALL.len(),
        n in 5usize..9,
        seed in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..16),
        kind in 0usize..KINDS.len(),
    ) {
        // A *real* report (random shape, random adversary) rather than a
        // synthetic one, so discovery reasons, fallback flags, and grade
        // vectors all flow through the encoding.
        let mut builder = SpecBuilder::new(Protocol::ALL[protocol_index], n)
            .with_seed(seed)
            .with_input(value);
        if KINDS[kind] != AdversaryKind::None {
            builder = builder.with_adversary(AdversarySpec::scripted(KINDS[kind]));
        }
        prop_assume!(builder.validate().is_ok());
        let (cluster, spec) = builder.build().unwrap();
        let report = cluster.run(&spec);
        let encoded = wire::report_to_json(&report);
        let decoded = wire::report_from_json(&encoded).unwrap();
        prop_assert_eq!(wire::report_to_json(&decoded), encoded);
        prop_assert_eq!(decoded.outcomes.len(), report.outcomes.len());
        prop_assert_eq!(decoded.used_fallback, report.used_fallback);
        prop_assert_eq!(decoded.stats.messages_total, report.stats.messages_total);
        prop_assert_eq!(decoded.stats.bytes_total, report.stats.bytes_total);
    }

    #[test]
    fn response_encoding_round_trips(
        shard in 0usize..4,
        reused in any::<bool>(),
        keyed in any::<bool>(),
        messages in 0usize..10_000,
        wall_us in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let keydist_messages = keyed.then_some(messages);
        let (cluster, spec) = SpecBuilder::new(Protocol::NonAuthFd, 5)
            .with_seed(seed)
            .build()
            .unwrap();
        let report_json = wire::report_to_json(&cluster.run(&spec));
        let encoded = wire::response_to_json(
            Some("resp"),
            shard,
            reused,
            keydist_messages,
            u64::from(wall_us),
            &report_json,
        );
        let decoded = wire::response_from_json(&encoded).unwrap();
        prop_assert_eq!(decoded.id.as_deref(), Some("resp"));
        prop_assert_eq!(decoded.shard, shard);
        prop_assert_eq!(decoded.keydist_reused, reused);
        prop_assert_eq!(decoded.keydist_messages, keydist_messages);
        prop_assert_eq!(decoded.wall_us, u64::from(wall_us));
        prop_assert_eq!(&decoded.report_json, &report_json);
        prop_assert!(decoded.report.is_ok());
    }

    #[test]
    fn error_responses_round_trip(
        raw in prop::collection::vec(any::<u8>(), 0..40),
        with_id in any::<bool>(),
    ) {
        // Printable ASCII including `"` and `\` so escaping is exercised.
        let message: String = raw.iter().map(|b| char::from(b' ' + b % 95)).collect();
        let id = with_id.then_some("err-id");
        let encoded = wire::error_to_json(id, &message);
        let decoded = wire::response_from_json(&encoded).unwrap();
        prop_assert_eq!(decoded.id.as_deref(), id);
        prop_assert_eq!(decoded.report.unwrap_err(), message);
        prop_assert!(decoded.report_json.is_empty());
    }
}

/// Unknown fields and wrong schema versions must be rejected loudly —
/// forward compatibility is explicit versioning, not silent tolerance.
#[test]
fn unknown_fields_and_bad_versions_are_rejected() {
    let err = wire::request_from_json(
        "{\"schema_version\": 1, \"protocol\": \"chain_fd\", \"n\": 5, \"input\": \"00\", \
         \"surprise\": 1}",
    )
    .unwrap_err();
    assert!(err.contains("surprise"), "unknown field named: {err}");
    let err = wire::request_from_json(
        "{\"schema_version\": 2, \"protocol\": \"chain_fd\", \"n\": 5, \"input\": \"00\"}",
    )
    .unwrap_err();
    assert!(err.contains("schema"), "version mismatch named: {err}");
    let err = wire::response_from_json("{\"schema_version\": 1, \"ok\": true, \"shard\": 0}")
        .unwrap_err();
    assert!(!err.is_empty());
}
