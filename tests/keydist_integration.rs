//! Integration tests for the key distribution protocol (paper Fig. 1,
//! Theorem 2) across crates: crypto schemes × simulator × adversaries.

use local_auth_fd::core::adversary::{
    EquivocatingKeyDist, KeyThiefKeyDist, SharedKeyKeyDist, SilentNode, WrongNameKeyDist,
};
use local_auth_fd::core::metrics;
use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::{Protocol, RunSpec};
use local_auth_fd::crypto::{RsaScheme, SchnorrScheme, SignatureScheme};
use local_auth_fd::simnet::{Node, NodeId};
use std::sync::Arc;

fn schnorr_cluster(n: usize, t: usize, seed: u64) -> Cluster {
    Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), seed)
}

#[test]
fn honest_keydist_cost_matches_formula_across_sizes() {
    for n in [3usize, 4, 6, 9, 12] {
        let c = schnorr_cluster(n, 1, 7);
        let kd = c.run_key_distribution();
        assert_eq!(
            kd.stats.messages_total,
            metrics::keydist_messages(n),
            "n={n}"
        );
        // 3 communication rounds, exactly.
        assert_eq!(
            kd.stats.per_round.iter().filter(|&&c| c > 0).count(),
            metrics::KEYDIST_COMM_ROUNDS as usize
        );
        for store in kd.stores.iter().flatten() {
            assert_eq!(store.accepted_count(), n);
        }
    }
}

#[test]
fn keydist_works_over_rsa_too() {
    let c = Cluster::new(4, 1, Arc::new(RsaScheme::new(256)), 11);
    let kd = c.run_key_distribution();
    assert_eq!(kd.stats.messages_total, metrics::keydist_messages(4));
    for store in kd.stores.iter().flatten() {
        assert_eq!(store.accepted_count(), 4);
    }
    // And the subsequent FD run verifies RSA chains.
    let run = c.run_with_keys(&RunSpec::new(Protocol::ChainFd, b"rsa".to_vec()), Some(&kd));
    assert!(run.all_decided(b"rsa"));
}

#[test]
fn silent_node_simply_not_accepted() {
    let n = 5;
    let c = schnorr_cluster(n, 1, 13);
    let kd = c.run_key_distribution_with(&mut |id| {
        (id == NodeId(4)).then(|| Box::new(SilentNode { me: NodeId(4) }) as Box<dyn Node>)
    });
    for (i, store) in kd.stores.iter().enumerate() {
        if let Some(store) = store {
            assert_eq!(store.accepted_count(), n - 1, "node {i}");
            assert!(store.accepted(NodeId(4)).is_none());
        }
    }
}

#[test]
fn key_thief_cannot_claim_a_correct_nodes_key() {
    // The central guarantee of Fig. 1: "no faulty node can claim a public
    // key of a correct node for itself".
    let n = 5;
    let c = schnorr_cluster(n, 1, 17);
    let victim_pk = c.keyring(NodeId(0)).pk;
    let kd = c.run_key_distribution_with(&mut |id| {
        (id == NodeId(3)).then(|| {
            Box::new(KeyThiefKeyDist::new(NodeId(3), n, victim_pk.clone())) as Box<dyn Node>
        })
    });
    for store in kd.stores.iter().flatten() {
        // The thief is never accepted…
        assert!(store.accepted(NodeId(3)).is_none());
        // …while the victim is, with its true key.
        assert_eq!(store.accepted(NodeId(0)), Some(&c.keyring(NodeId(0)).pk));
    }
}

#[test]
fn wrong_name_signer_rejected() {
    let n = 4;
    let c = schnorr_cluster(n, 1, 19);
    let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
    let kd = c.run_key_distribution_with(&mut |id| {
        (id == NodeId(2)).then(|| {
            Box::new(WrongNameKeyDist::new(NodeId(2), n, Arc::clone(&scheme), 77)) as Box<dyn Node>
        })
    });
    for store in kd.stores.iter().flatten() {
        assert!(store.accepted(NodeId(2)).is_none());
    }
}

#[test]
fn equivocating_key_distribution_splits_stores_g3_gap() {
    // The paper §3.2: local authentication does NOT give G3 — a faulty
    // node can make different correct nodes accept different predicates.
    let n = 6;
    let c = schnorr_cluster(n, 1, 23);
    let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
    let equivocator = EquivocatingKeyDist::new(NodeId(2), n, Arc::clone(&scheme), 555, NodeId(4));
    let (pk_a, pk_b) = {
        let (a, b) = equivocator.announced();
        (a.clone(), b.clone())
    };
    let kd = c.run_key_distribution_with(&mut |id| {
        (id == NodeId(2)).then(|| {
            Box::new(EquivocatingKeyDist::new(
                NodeId(2),
                n,
                Arc::clone(&scheme),
                555,
                NodeId(4),
            )) as Box<dyn Node>
        })
    });
    // Nodes 0,1,3 accepted A; nodes 4,5 accepted B — all accepted the
    // equivocator (challenges succeed with the matching key)…
    for i in [0usize, 1, 3] {
        assert_eq!(
            kd.stores[i].as_ref().unwrap().accepted(NodeId(2)),
            Some(&pk_a),
            "node {i}"
        );
    }
    for i in [4usize, 5] {
        assert_eq!(
            kd.stores[i].as_ref().unwrap().accepted(NodeId(2)),
            Some(&pk_b),
            "node {i}"
        );
    }
    // …so the stores genuinely disagree about the faulty node (G3 gap),
    // while agreeing about every correct node (Theorem 2 / G2).
    for peer in 0..n {
        if peer == 2 {
            continue;
        }
        let expected = c.keyring(NodeId(peer as u16)).pk;
        for store in kd.stores.iter().flatten() {
            assert_eq!(store.accepted(NodeId(peer as u16)), Some(&expected));
        }
    }
}

#[test]
fn shared_key_clique_accepted_consistently() {
    // Two faulty nodes announce the same key they both hold: both are
    // accepted (with the same predicate) — the paper's G1 caveat. What
    // matters is consistency, which holds.
    let n = 6;
    let c = schnorr_cluster(n, 2, 29);
    let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
    let kd = c.run_key_distribution_with(&mut |id| {
        (id == NodeId(1) || id == NodeId(2)).then(|| {
            Box::new(SharedKeyKeyDist::new(id, n, Arc::clone(&scheme), 888)) as Box<dyn Node>
        })
    });
    let mut seen: Option<Vec<u8>> = None;
    for store in kd.stores.iter().flatten() {
        let pk1 = store.accepted(NodeId(1)).expect("clique member accepted");
        let pk2 = store.accepted(NodeId(2)).expect("clique member accepted");
        assert_eq!(pk1, pk2, "both announced the same shared key");
        match &seen {
            None => seen = Some(pk1.0.clone()),
            Some(prev) => assert_eq!(prev, &pk1.0, "consistent across stores"),
        }
    }
}

#[test]
fn keydist_is_deterministic_per_seed() {
    let c1 = schnorr_cluster(5, 1, 31);
    let c2 = schnorr_cluster(5, 1, 31);
    let kd1 = c1.run_key_distribution();
    let kd2 = c2.run_key_distribution();
    assert_eq!(kd1.stats, kd2.stats);
    for (a, b) in kd1.stores.iter().zip(kd2.stores.iter()) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        for peer in NodeId::all(5) {
            assert_eq!(a.accepted(peer), b.accepted(peer));
        }
    }
}
