//! `lafd report` backend: parsing committed bench baselines and rendering
//! the trajectory with per-cell deltas.

use local_auth_fd::core::report::{parse_bench_doc, TrendReport};

/// A minimal `lafd-bench-v1` document in the shape `lafd bench` writes
/// (including the PR7 `label`/`git_rev` header fields).
fn doc_json(label: Option<&str>, chain_wall: u64, ds_wall: u64) -> String {
    let label_field = label.map_or(String::new(), |l| format!("  \"label\": \"{l}\",\n"));
    format!(
        "{{\n  \"schema\": \"lafd-bench-v1\",\n{label_field}  \"git_rev\": \"c0ffee1\",\n  \
         \"quick\": false,\n  \"seed\": 1,\n  \"results\": [\n    \
         {{\"protocol\": \"chain_fd\", \"n\": 256, \"t\": 1, \"engine\": \"sync\", \
          \"scheme\": \"tiny\", \"wall_us\": {chain_wall}, \"messages\": 255, \
          \"bytes\": 9000, \"comm_rounds\": 2, \"key_allocs\": 256}},\n    \
         {{\"protocol\": \"dolev_strong\", \"n\": 256, \"t\": 1, \"engine\": \"event\", \
          \"scheme\": \"tiny\", \"wall_us\": {ds_wall}, \"messages\": 765, \
          \"bytes\": 40000, \"comm_rounds\": 3, \"key_allocs\": 256}}\n  ]\n}}\n"
    )
}

#[test]
fn trajectory_over_two_baselines_carries_per_cell_deltas() {
    let old = parse_bench_doc("BENCH_5", &doc_json(None, 1_000, 4_000)).unwrap();
    let new = parse_bench_doc("BENCH_7", &doc_json(Some("PR7"), 1_500, 3_000)).unwrap();
    assert_eq!(old.label, "5", "stem digits label the unlabeled doc");
    assert_eq!(new.label, "PR7");
    let report = TrendReport::new(vec![new, old]);
    // Sorted numerically: 5 before PR7 (first embedded integer).
    assert_eq!(report.docs()[0].label, "5");
    assert_eq!(report.delta_count(), 2, "one delta per shared cell");

    let md = report.to_markdown();
    assert!(md.contains("| chain_fd | 256 | sync |"), "{md}");
    assert!(md.contains("+50.0%"), "chain_fd regression delta:\n{md}");
    assert!(
        md.contains("−25.0%"),
        "dolev_strong improvement delta:\n{md}"
    );
    assert!(
        md.contains("PR7 (c0ffee1)"),
        "column title carries rev:\n{md}"
    );

    let html = report.to_html();
    assert!(
        html.contains("<span class=\"up\">(+50.0%)</span>"),
        "{html}"
    );
    assert!(
        html.contains("<span class=\"down\">(−25.0%)</span>"),
        "{html}"
    );
    assert!(html.starts_with("<!DOCTYPE html>"));
}

#[test]
fn missing_cells_render_as_gaps_not_errors() {
    let full = parse_bench_doc("BENCH_5", &doc_json(None, 1_000, 4_000)).unwrap();
    let partial = parse_bench_doc(
        "BENCH_7",
        "{\"schema\": \"lafd-bench-v1\", \"results\": [\
         {\"protocol\": \"chain_fd\", \"n\": 256, \"engine\": \"sync\", \
          \"wall_us\": 900, \"messages\": 255, \"bytes\": 9000}]}",
    )
    .unwrap();
    let report = TrendReport::new(vec![full, partial]);
    let md = report.to_markdown();
    assert!(md.contains(" — |"), "dolev_strong column 7 is a gap:\n{md}");
    assert_eq!(report.delta_count(), 1, "only the shared cell has a delta");
}

#[test]
fn bad_documents_are_rejected_with_context() {
    assert!(parse_bench_doc("x", "{\"schema\": \"other\"}").is_err());
    assert!(parse_bench_doc("x", "{\"results\": []}").is_err());
    assert!(parse_bench_doc("x", "not json").is_err());
}
