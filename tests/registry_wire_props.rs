//! Round-trip property tests for the registry dialect of wire schema v1
//! (the `lafd registry` discovery protocol): every encoder must be a left
//! inverse of its decoder on the wire-representable domain, unknown
//! fields must be rejected, and foreign schema versions must be refused
//! — the same contract `tests/wire_roundtrip.rs` pins for run requests.

use local_auth_fd::core::ba::Grade;
use local_auth_fd::core::wire::{
    registry_reply_from_json, registry_reply_to_json, registry_request_from_json,
    registry_request_to_json, RegistryReply, RegistryRequest, WorkerSummary,
};
use local_auth_fd::core::{DiscoveryReason, Outcome};
use proptest::prelude::*;

fn outcome_strategy() -> impl Strategy<Value = Option<Outcome>> {
    (
        0usize..6,
        prop::collection::vec(any::<u8>(), 0..12),
        any::<u32>(),
    )
        .prop_map(|(pick, bytes, round)| match pick {
            0 => None,
            1 => Some(Outcome::Pending),
            2 => Some(Outcome::Decided(bytes)),
            3 => Some(Outcome::Discovered(DiscoveryReason::Malformed)),
            4 => Some(Outcome::Discovered(DiscoveryReason::MissingMessage {
                round,
            })),
            _ => Some(Outcome::Discovered(DiscoveryReason::Equivocation)),
        })
}

fn summary_strategy() -> impl Strategy<Value = WorkerSummary> {
    (
        (0usize..16, outcome_strategy(), any::<bool>(), 0usize..4),
        (
            1u32..64,
            0usize..10_000,
            0usize..1_000_000,
            prop::collection::vec(0usize..500, 0..8),
            0usize..5,
        ),
        (
            1u32..8,
            0usize..10_000,
            0usize..1_000_000,
            prop::collection::vec(0usize..500, 0..8),
            0usize..5,
        ),
        (0u64..5, 0u64..100),
    )
        .prop_map(
            |(
                (node, outcome, used_fallback, grade_pick),
                (rounds, messages, bytes, per_round, dropped),
                (kd_rounds, kd_messages, kd_bytes, kd_per_round, kd_anomalies),
                (incarnation, retries),
            )| WorkerSummary {
                node,
                outcome,
                used_fallback,
                grade: [None, Some(Grade::Zero), Some(Grade::One), Some(Grade::Two)][grade_pick],
                rounds,
                messages,
                bytes,
                per_round,
                dropped,
                kd_rounds,
                kd_messages,
                kd_bytes,
                kd_per_round,
                kd_anomalies,
                incarnation,
                retries,
            },
        )
}

fn request_strategy() -> impl Strategy<Value = RegistryRequest> {
    (
        (0usize..5, any::<u32>(), 0usize..64, 2usize..64),
        (any::<u16>(), 0u64..4),
        (0usize..3, summary_strategy()),
    )
        .prop_map(
            |((pick, tag, node, n), (port, incarnation), (phase_pick, summary))| {
                let run = format!("run-{tag}");
                let addr = format!("127.0.0.1:{port}");
                let phase = ["keydist-done", "protocol-done", "ready"][phase_pick].to_string();
                match pick {
                    0 => RegistryRequest::Register {
                        run,
                        node,
                        n,
                        addr,
                        incarnation,
                    },
                    1 => RegistryRequest::Lookup { run, node },
                    2 => RegistryRequest::Barrier {
                        run,
                        node,
                        n,
                        phase,
                        incarnation,
                    },
                    3 => RegistryRequest::Teardown {
                        run,
                        node,
                        summary,
                        incarnation,
                    },
                    _ => RegistryRequest::Collect { run },
                }
            },
        )
}

fn reply_strategy() -> impl Strategy<Value = RegistryReply> {
    (
        (0usize..6, 0usize..64, any::<u32>()),
        prop::collection::vec((0usize..64, any::<u16>()), 0..6),
        prop::collection::vec(summary_strategy(), 0..4),
    )
        .prop_map(|((pick, node, tag), peers, workers)| match pick {
            0 => RegistryReply::Roster {
                peers: peers
                    .into_iter()
                    .map(|(slot, port)| (slot, format!("127.0.0.1:{port}")))
                    .collect(),
            },
            1 => RegistryReply::Addr {
                node,
                addr: format!("127.0.0.1:{tag}"),
            },
            2 => RegistryReply::Released {
                phase: format!("phase-{tag}"),
            },
            3 => RegistryReply::Ack,
            4 => RegistryReply::Summaries { workers },
            _ => RegistryReply::Error {
                error: format!("boom {tag}"),
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn registry_request_encoding_round_trips_byte_for_byte(
        request in request_strategy(),
    ) {
        let encoded = registry_request_to_json(&request);
        let decoded = registry_request_from_json(&encoded).unwrap();
        prop_assert_eq!(&decoded, &request);
        // Re-encoding the decoded request must reproduce the exact bytes.
        prop_assert_eq!(registry_request_to_json(&decoded), encoded);
    }

    #[test]
    fn registry_reply_encoding_round_trips_byte_for_byte(
        reply in reply_strategy(),
    ) {
        let encoded = registry_reply_to_json(&reply);
        let decoded = registry_reply_from_json(&encoded).unwrap();
        prop_assert_eq!(&decoded, &reply);
        prop_assert_eq!(registry_reply_to_json(&decoded), encoded);
    }

    #[test]
    fn registry_messages_reject_unknown_fields(
        request in request_strategy(),
        reply in reply_strategy(),
    ) {
        let bogus_req = registry_request_to_json(&request)
            .replacen('{', "{\"bogus\": 1, ", 1);
        prop_assert!(registry_request_from_json(&bogus_req).is_err());
        let bogus_reply = registry_reply_to_json(&reply)
            .replacen('{', "{\"bogus\": 1, ", 1);
        prop_assert!(registry_reply_from_json(&bogus_reply).is_err());
    }

    #[test]
    fn registry_messages_reject_foreign_schema_versions(
        request in request_strategy(),
        reply in reply_strategy(),
        version in 2i64..1000,
    ) {
        let wrong = format!("\"schema_version\": {version}");
        let req = registry_request_to_json(&request)
            .replacen("\"schema_version\": 1", &wrong, 1);
        prop_assert!(registry_request_from_json(&req).is_err());
        let rep = registry_reply_to_json(&reply)
            .replacen("\"schema_version\": 1", &wrong, 1);
        prop_assert!(registry_reply_from_json(&rep).is_err());
    }
}
