//! Integration tests for the discrete-event engine: cross-validation
//! against the synchronous engine (byte-identical under synchronous
//! latency), timing-fault sweeps (zero silent disagreements), and the
//! `lafd run` CLI surface.

use local_auth_fd::core::runner::Cluster;
use local_auth_fd::core::spec::RunSpec;
use local_auth_fd::core::sweep::{run_sweep, Protocol, SweepMatrix, SweepOutcome};
use local_auth_fd::crypto::SchnorrScheme;
use local_auth_fd::simnet::{Engine, LatencySpec};
use std::process::Command;
use std::sync::Arc;

/// The tentpole acceptance check: every event-engine scenario of the
/// cross-validation matrix re-runs on the synchronous engine and must
/// match exactly — message counts, bytes, and per-node outcomes.
#[test]
fn event_engine_cross_validates_against_sync_engine() {
    let matrix = SweepMatrix::cross_validation();
    let scenarios = matrix.scenarios();
    assert!(scenarios.len() >= 20, "only {} scenarios", scenarios.len());
    assert!(scenarios.iter().all(|s| s.engine == Engine::Event));
    let report = run_sweep(&matrix, 4);
    assert!(report.all_ok(), "failures: {:?}", report.failures());
    for row in &report.rows {
        assert!(row.cross_ok, "engines diverged: {row:?}");
    }
}

/// The timing-fault acceptance check: ≥ 20 jitter / partial-synchrony /
/// fixed-delay scenarios, all safe — late messages are discovered, never
/// silently disagreed upon.
#[test]
fn latency_sweep_has_zero_silent_disagreements() {
    let matrix = SweepMatrix::latency_matrix();
    let scenarios = matrix.scenarios();
    assert!(scenarios.len() >= 20, "only {} scenarios", scenarios.len());
    let report = run_sweep(&matrix, 4);
    assert!(report.all_ok(), "failures: {:?}", report.failures());
    assert!(report
        .rows
        .iter()
        .all(|r| r.outcome != SweepOutcome::SilentDisagreement));
    // The matrix genuinely exercises timing faults: at least one run must
    // have discovered a late message.
    assert!(report
        .rows
        .iter()
        .any(|r| r.outcome == SweepOutcome::Discovered));
}

/// Direct engine equivalence through the whole Cluster stack, protocol by
/// protocol: identical statistics and identical outcomes.
#[test]
fn every_protocol_is_engine_invariant() {
    let sync = Cluster::new(7, 2, Arc::new(SchnorrScheme::test_tiny()), 5);
    let event = sync.clone().with_engine(Engine::Event);
    let kd_s = sync.run_key_distribution();
    let kd_e = event.run_key_distribution();
    assert_eq!(kd_s.stats, kd_e.stats);

    let v = b"engine-invariance".to_vec();
    let d = b"default".to_vec();
    let spec = |p: Protocol| RunSpec::new(p, v.clone()).with_default_value(d.clone());
    for protocol in [
        Protocol::ChainFd,
        Protocol::NonAuthFd,
        Protocol::SmallRange,
        Protocol::FdToBa,
        Protocol::DolevStrong,
        Protocol::Degradable,
    ] {
        let spec = spec(protocol);
        let keys_s = protocol.needs_keys().then_some(&kd_s);
        let keys_e = protocol.needs_keys().then_some(&kd_e);
        let s = sync.run_with_keys(&spec, keys_s);
        let e = event.run_with_keys(&spec, keys_e);
        assert_eq!(s.stats, e.stats, "{protocol}");
        assert_eq!(s.outcomes, e.outcomes, "{protocol}");
    }

    // Phase King needs n > 4t, so it gets its own shape.
    let sync = Cluster::new(9, 2, Arc::new(SchnorrScheme::test_tiny()), 5);
    let event = sync.clone().with_engine(Engine::Event);
    let king = RunSpec::new(Protocol::PhaseKing, v).with_default_value(d);
    let s = sync.run(&king);
    let e = event.run(&king);
    assert_eq!(s.stats, e.stats);
    assert_eq!(s.outcomes, e.outcomes);
}

/// Jitter runs are deterministic for a fixed seed and vary across seeds.
#[test]
fn jitter_runs_are_seeded_and_deterministic() {
    let run = |seed| {
        let c = Cluster::new(6, 1, Arc::new(SchnorrScheme::test_tiny()), seed)
            .with_engine(Engine::Event)
            .with_latency(LatencySpec::Jitter { extra: 2 });
        let kd = c
            .clone()
            .with_latency(LatencySpec::Synchronous)
            .run_key_distribution();
        let r = c.run_with_keys(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()), Some(&kd));
        (r.stats, r.outcomes)
    };
    assert_eq!(run(7), run(7));
}

fn lafd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lafd"))
}

/// `lafd run` smoke: the CI large-n invocation (shrunk) succeeds on the
/// event engine and reports the closed-form message count.
#[test]
fn cli_run_event_engine_smoke() {
    let out = lafd()
        .args(["run", "chainfd", "--engine", "event", "-n", "32"])
        .output()
        .expect("run lafd");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("31 messages (formula 31)"), "{stdout}");
    assert!(stdout.contains("classification: all_decided"), "{stdout}");
}

/// `lafd run` exposes the fault plan: a dropped chain message must be
/// discovered, and a corrupted one must fail its signature check.
#[test]
fn cli_run_fault_flags_reach_the_simulator() {
    let out = lafd()
        .args(["run", "chain", "-n", "6", "--drop", "0:0:1"])
        .output()
        .expect("run lafd");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("classification: discovered"), "{stdout}");

    let out = lafd()
        .args(["run", "chain", "-n", "6", "--corrupt", "0:0:1:20:1"])
        .output()
        .expect("run lafd");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("classification: discovered"), "{stdout}");
}

/// A latency flag implies the event engine and produces a safe run.
#[test]
fn cli_run_latency_flag_smoke() {
    let out = lafd()
        .args(["run", "chain", "-n", "8", "--latency", "jitter:1"])
        .output()
        .expect("run lafd");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("engine = event"), "{stdout}");
    assert!(!stdout.contains("silent_disagreement"), "{stdout}");
}

/// Bad run flags fail fast with a usage message, not a panic.
#[test]
fn cli_run_rejects_bad_input() {
    for args in [
        vec!["run"],
        vec!["run", "warp-speed"],
        vec!["run", "chain", "--latency", "warp:1"],
        vec!["run", "chain", "--drop", "0:0"],
        vec!["run", "chain", "-n", "6", "--drop", "0:7:1"], // node out of range
        vec!["run", "chain", "-n", "6", "--drop", "0:65536:1"], // beyond u16
        vec!["run", "chain", "-n", "6", "--corrupt", "0:0:1:0:256"], // mask beyond a byte
        vec!["run", "chain", "--engine", "sync", "--latency", "fixed:2"], // contradiction
        vec!["run", "nonauth", "-n", "70000"],              // beyond the u16 node-id range
        vec!["run", "ba", "-n", "7", "--crash", "9"],       // crash target out of range
        vec!["run", "king", "-n", "5", "--t", "2"],         // n > 4t violated
    ] {
        let out = lafd().args(&args).output().expect("run lafd");
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error:"), "{args:?}: {stderr}");
    }
}

/// `lafd sweep` accepts the new engine/latency axes and `--protocols all`.
#[test]
fn cli_sweep_engine_latency_axes() {
    let out = lafd()
        .args([
            "sweep",
            "--threads",
            "2",
            "--protocols",
            "chain",
            "--sizes",
            "5",
            "--seeds",
            "1",
            "--engines",
            "event",
            "--latencies",
            "sync,jitter:1",
        ])
        .output()
        .expect("run lafd");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("| event | sync |"), "{stdout}");
    assert!(stdout.contains("| event | jitter:1 |"), "{stdout}");

    let out = lafd()
        .args([
            "sweep",
            "--threads",
            "2",
            "--protocols",
            "all",
            "--sizes",
            "5",
            "--seeds",
            "1",
        ])
        .output()
        .expect("run lafd");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for protocol in Protocol::ALL {
        assert!(
            stdout.contains(protocol.name()),
            "missing {protocol} in: {stdout}"
        );
    }
}
