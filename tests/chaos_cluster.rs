//! Acceptance tests for the chaos-hardened cluster: deterministic fault
//! injection, retry-driven recovery, and supervised restart with
//! fencing. The contract under test:
//!
//! 1. the injection trace is a pure function of `(chaos seed, node,
//!    incarnation)` — same seed, same trace;
//! 2. kills within the restart budget recover to a report
//!    **byte-identical** to the fault-free in-process run;
//! 3. a worker dead past its budget (but within `t`) degrades the run to
//!    crash-adversary semantics — exit code 2, report byte-identical to
//!    the in-process `silent:I` scripted run;
//! 4. more dead workers than `t` fail loudly with a nonzero exit.

use local_auth_fd::core::adversary::AdversarySpec;
use local_auth_fd::core::spec::{Protocol, SpecBuilder};
use local_auth_fd::core::sweep::AdversaryKind;
use local_auth_fd::simnet::NodeId;
use std::process::Command;

const SEED: u64 = 23;

/// The builder `lafd cluster chain -n 4 --seed 23` constructs (the
/// defaults of `parse_cluster`).
fn cluster_builder(n: usize) -> SpecBuilder {
    SpecBuilder::new(Protocol::ChainFd, n)
        .with_seed(SEED)
        .with_input(b"attack at dawn".to_vec())
        .with_default_value(b"default".to_vec())
}

/// Run `lafd cluster chain -n 4` with the given extra args and return
/// (full stdout, full stderr, exit code).
fn run_chaos_cluster(extra: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_lafd"))
        .args([
            "cluster",
            "chain",
            "-n",
            "4",
            "--seed",
            &SEED.to_string(),
            "--io-deadline-secs",
            "10",
        ])
        .args(extra)
        .output()
        .expect("spawn lafd cluster");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.code(),
    )
}

/// Collect every chaos trace line from a run's stderr, sorted. The trace
/// lines of n processes interleave nondeterministically on the shared
/// stderr pipe, but the *set* of lines is the determinism contract.
fn sorted_trace(stderr: &str) -> Vec<String> {
    let mut lines: Vec<String> = stderr
        .lines()
        .filter(|l| l.starts_with("chaos["))
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

#[test]
fn identical_seeds_produce_identical_injection_traces_and_reports() {
    let spec = "seed=5;connect=25;reset=15;accept-delay=30:2;stall=30:2";
    let (out_a, err_a, code_a) = run_chaos_cluster(&["--chaos", spec]);
    let (out_b, err_b, code_b) = run_chaos_cluster(&["--chaos", spec]);
    assert_eq!(code_a, Some(0), "first noise run failed: {err_a}");
    assert_eq!(code_b, Some(0), "second noise run failed: {err_b}");
    let trace_a = sorted_trace(&err_a);
    let trace_b = sorted_trace(&err_b);
    assert!(
        !trace_a.is_empty(),
        "a 25/15/30/30 noise campaign must inject at least one fault"
    );
    assert_eq!(
        trace_a, trace_b,
        "the same chaos seed must produce the same injection trace"
    );
    assert_eq!(
        out_a.lines().last(),
        out_b.lines().last(),
        "identically-seeded runs must emit byte-identical reports"
    );
}

#[test]
fn a_transient_kill_within_the_budget_recovers_byte_identical_to_fault_free() {
    let (cluster, spec) = cluster_builder(4).build().expect("valid spec");
    let fault_free = cluster.run(&spec).to_json();
    // kill=1@round:1 (times = 1): the victim dies once, the supervisor
    // relaunches the generation, and the retried run is clean.
    let (stdout, stderr, code) = run_chaos_cluster(&["--chaos", "seed=7;kill=1@round:1"]);
    assert_eq!(code, Some(0), "recovered run must exit 0: {stderr}");
    assert_eq!(
        stdout.lines().last().unwrap_or_default(),
        fault_free,
        "a recovered run must report byte-identical to the fault-free run"
    );
    assert!(
        stdout.contains("generations=2"),
        "recovery must take exactly one restart generation, stdout: {stdout}"
    );
    assert!(
        stdout.contains("degraded=false"),
        "a recovered run is not degraded, stdout: {stdout}"
    );
}

#[test]
fn a_worker_dead_past_its_budget_degrades_to_crash_adversary_parity() {
    // The degraded reference: the same spec run in-process with node 1
    // scripted as a silent-relay crash — exactly `--crash 1`.
    let (cluster, spec) = cluster_builder(4)
        .with_t(1)
        .with_adversary(AdversarySpec::scripted_at(
            AdversaryKind::SilentRelay,
            vec![NodeId(1)],
        ))
        .build()
        .expect("valid spec");
    let degraded_reference = cluster.run(&spec).to_json();
    // kill=1@round:1xinf: node 1 dies on every incarnation, exhausts its
    // restart budget, and t = 1 admits the degradation.
    let (stdout, stderr, code) =
        run_chaos_cluster(&["--t", "1", "--chaos", "seed=7;kill=1@round:1xinf"]);
    assert_eq!(
        code,
        Some(2),
        "a degraded run must exit 2, stderr: {stderr}"
    );
    assert_eq!(
        stdout.lines().last().unwrap_or_default(),
        degraded_reference,
        "a degraded run must report byte-identical to the in-process silent:1 run"
    );
    assert!(
        stdout.contains("dead=[1]") && stdout.contains("degraded=true"),
        "the resilience line must name the dead slot, stdout: {stdout}"
    );
}

#[test]
fn more_dead_workers_than_t_fail_loudly_with_a_nonzero_exit() {
    let (_, stderr, code) = run_chaos_cluster(&[
        "--t",
        "1",
        "--chaos",
        "seed=7;kill=0@round:1xinf;kill=1@round:1xinf",
    ]);
    assert_eq!(
        code,
        Some(1),
        "two dead workers against t = 1 must fail, stderr: {stderr}"
    );
    assert!(
        stderr.contains("aborted"),
        "the failure must be loud on stderr, got: {stderr}"
    );
}
