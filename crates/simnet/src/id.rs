//! Node identifiers.

use core::fmt;

/// Identifier of a node in the fully connected network.
///
/// Nodes are numbered `0..n`; the paper writes them `P_0 … P_{n-1}` with
/// `P_0` conventionally the sender/general in agreement protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Iterator over all node ids of an `n`-node system.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n as u16).map(NodeId)
    }

    /// Index into per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<NodeId> = NodeId::all(3).collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(NodeId::all(0).count(), 0);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(NodeId(7).to_string(), "P7");
    }

    #[test]
    fn ordering_and_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5).index(), 5);
        assert_eq!(NodeId::from(9u16), NodeId(9));
    }
}
