//! Cheaply clonable message payloads.
//!
//! Every hop of a simulated message used to deep-copy its bytes: broadcast
//! fan-out cloned the buffer per peer, `Duplicate`/rushing-preview branches
//! cloned per delivery, and the report path cloned once more. [`Payload`]
//! replaces `Vec<u8>` on [`crate::Envelope`] with an `Arc<[u8]>`-backed
//! handle: cloning is a reference-count bump, and `Bytes`-style
//! [`Payload::slice`] shares the underlying buffer instead of copying.
//!
//! Mutation (the `Corrupt` link fault) goes through [`Payload::make_mut`],
//! which is copy-on-write: a uniquely owned buffer is flipped in place,
//! a shared one is copied first so sibling deliveries of the same
//! broadcast never observe the corruption.
//!
//! Equality, ordering, and hashing are all by visible bytes, so two
//! payloads compare equal regardless of how their buffers are shared —
//! sharing is invisible to protocol logic and to every determinism
//! surface.

use crate::codec::{CodecError, Decode, Encode, Reader, Writer};
use core::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply clonable byte payload (`Arc<[u8]>` plus a window).
#[derive(Clone)]
pub struct Payload {
    buf: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Payload {
    /// The empty payload.
    pub fn new() -> Self {
        Payload::from(&[][..])
    }

    /// The visible bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the visible window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-window sharing the same buffer (no copy), `Bytes`-style.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the current window.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Payload {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for payload of {} bytes",
            self.len
        );
        Payload {
            buf: Arc::clone(&self.buf),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Mutable access to the visible bytes, copy-on-write: a uniquely
    /// owned whole-buffer payload is mutated in place, anything shared (or
    /// windowed) is copied first so other handles keep the original bytes.
    pub fn make_mut(&mut self) -> &mut [u8] {
        let unique_whole =
            self.off == 0 && self.len == self.buf.len() && Arc::get_mut(&mut self.buf).is_some();
        if !unique_whole {
            let copy: Arc<[u8]> = Arc::from(&self.buf[self.off..self.off + self.len]);
            self.buf = copy;
            self.off = 0;
            self.len = self.buf.len();
        }
        Arc::get_mut(&mut self.buf).expect("uniquely owned after copy-on-write")
    }

    /// How many [`Payload`] handles share this buffer (diagnostics: the
    /// allocation-sharing tests assert fan-out stays one buffer).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.buf)
    }

    /// Identity of the backing allocation and visible window, as raw
    /// `(buffer address, offset, length)` words.
    ///
    /// Two payloads with equal idents are guaranteed to expose the same
    /// bytes **while both handles are alive** — the address cannot be
    /// recycled under a live `Arc`. This is the cheap cohort-equality test
    /// behind batched verification: a broadcast hands the same buffer to
    /// `n − 1` receivers, so an ident match replaces an `O(len)` byte
    /// compare (or hash) with three word compares. The ident says nothing
    /// across allocations: equal *bytes* in different buffers get
    /// different idents, which is always safe (a cache keyed by ident
    /// re-verifies instead of sharing).
    pub fn ident(&self) -> (usize, usize, usize) {
        (
            Arc::as_ptr(&self.buf) as *const u8 as usize,
            self.off,
            self.len,
        )
    }

    /// Whether two payloads share the same underlying buffer (regardless
    /// of their windows).
    pub fn shares_buffer_with(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::new()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        let len = bytes.len();
        Payload {
            buf: Arc::from(bytes),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload {
            buf: Arc::from(bytes),
            off: 0,
            len: bytes.len(),
        }
    }
}

impl From<&Vec<u8>> for Payload {
    fn from(bytes: &Vec<u8>) -> Self {
        Payload::from(bytes.as_slice())
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(bytes: [u8; N]) -> Self {
        Payload::from(&bytes[..])
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(bytes: &[u8; N]) -> Self {
        Payload::from(&bytes[..])
    }
}

impl FromIterator<u8> for Payload {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Payload::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Payload {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Payload {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl core::hash::Hash for Payload {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: String = self
            .as_slice()
            .iter()
            .take(8)
            .map(|b| format!("{b:02x}"))
            .collect();
        let ellipsis = if self.len > 8 { "…" } else { "" };
        write!(f, "Payload({head}{ellipsis}[{}B])", self.len)
    }
}

impl Encode for Payload {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_slice());
    }
}

impl Decode for Payload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Payload::from(r.get_bytes()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_buffer() {
        let p = Payload::from(vec![1, 2, 3, 4]);
        let q = p.clone();
        assert!(p.shares_buffer_with(&q));
        assert_eq!(p.ref_count(), 2);
        assert_eq!(p, q);
    }

    #[test]
    fn slice_shares_and_windows() {
        let p = Payload::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = p.slice(2..5);
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        assert!(mid.shares_buffer_with(&p));
        let tail = mid.slice(1..);
        assert_eq!(tail.as_slice(), &[3, 4]);
        assert_eq!(p.slice(..).as_slice(), p.as_slice());
        assert!(p.slice(3..3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Payload::from(vec![1, 2]).slice(0..3);
    }

    #[test]
    fn make_mut_in_place_when_unique() {
        let mut p = Payload::from(vec![1, 2, 3]);
        p.make_mut()[1] = 9;
        assert_eq!(p.as_slice(), &[1, 9, 3]);
    }

    #[test]
    fn make_mut_copies_when_shared() {
        let mut p = Payload::from(vec![1, 2, 3]);
        let q = p.clone();
        p.make_mut()[0] = 7;
        assert_eq!(p.as_slice(), &[7, 2, 3]);
        assert_eq!(q.as_slice(), &[1, 2, 3], "sibling handle untouched");
        assert!(!p.shares_buffer_with(&q));
    }

    #[test]
    fn make_mut_narrows_windowed_payloads() {
        let base = Payload::from(vec![0, 1, 2, 3]);
        let mut window = base.slice(1..3);
        window.make_mut()[0] = 9;
        assert_eq!(window.as_slice(), &[9, 2]);
        assert_eq!(base.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn equality_is_by_bytes_not_identity() {
        let a = Payload::from(vec![1, 2]);
        let b = Payload::from(vec![1, 2]);
        assert_eq!(a, b);
        assert!(!a.shares_buffer_with(&b));
        assert_eq!(a, vec![1, 2]);
        assert_eq!(vec![1, 2], a);
        assert_eq!(a, [1, 2]);
        assert_eq!(a, [1u8, 2][..]);
    }

    #[test]
    fn deref_gives_slice_methods() {
        let p = Payload::from(vec![5, 6]);
        assert_eq!(p.first(), Some(&5));
        assert_eq!(p[1], 6);
        assert_eq!(p.to_vec(), vec![5, 6]);
    }

    #[test]
    fn codec_round_trip() {
        let p = Payload::from(vec![1, 2, 3]);
        let bytes = p.encode_to_vec();
        assert_eq!(Payload::decode_exact(&bytes).unwrap(), p);
        // Byte-compatible with the Vec<u8> encoding.
        assert_eq!(bytes, vec![1u8, 2, 3].encode_to_vec());
    }

    #[test]
    fn empty_default() {
        assert!(Payload::default().is_empty());
        assert_eq!(Payload::new().len(), 0);
    }
}
