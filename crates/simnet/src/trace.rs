//! Optional message tracing for debugging and property checking.

use crate::{Envelope, NodeId};

/// One traced message event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Round in which the message was sent.
    pub round: u32,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload length in bytes.
    pub len: usize,
    /// First payload byte (protocols use it as a message-type tag),
    /// `None` for empty payloads.
    pub tag: Option<u8>,
}

/// Bounded message trace.
///
/// Keeps up to `cap` events; older events are dropped (the count of dropped
/// events is retained so consumers can detect truncation).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: usize,
}

impl Trace {
    /// Trace keeping at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            events: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Record a message.
    pub(crate) fn record(&mut self, env: &Envelope) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            round: env.round,
            from: env.from,
            to: env.to,
            len: env.payload.len(),
            tag: env.payload.first().copied(),
        });
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events were dropped after the capacity filled.
    pub fn dropped(&self) -> usize {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(round: u32) -> Envelope {
        Envelope {
            from: NodeId(0),
            to: NodeId(1),
            round,
            payload: vec![0xaa, 1].into(),
        }
    }

    #[test]
    fn records_until_capacity() {
        let mut t = Trace::with_capacity(2);
        t.record(&env(0));
        t.record(&env(1));
        t.record(&env(2));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].round, 0);
        assert_eq!(t.events()[0].tag, Some(0xaa));
    }

    #[test]
    fn empty_payload_has_no_tag() {
        let mut t = Trace::with_capacity(4);
        t.record(&Envelope {
            from: NodeId(0),
            to: NodeId(1),
            round: 0,
            payload: vec![].into(),
        });
        assert_eq!(t.events()[0].tag, None);
        assert_eq!(t.events()[0].len, 0);
    }
}
