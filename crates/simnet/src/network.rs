//! The deterministic round-synchronous simulator.

use crate::fault::{FaultPlan, LinkFault};
use crate::{Envelope, NetStats, Node, NodeId, Outbox, Trace};

/// Round-synchronous network simulator (paper §2 model).
///
/// Owns the node automata and drives them in lock-step rounds: everything
/// sent in round `r` is delivered at the start of round `r + 1`, reliably
/// (N1) and with the sender stamped by the simulator (N2). Execution is
/// fully deterministic: message order within a round is sender-id order,
/// then send order.
pub struct SyncNetwork {
    nodes: Vec<Box<dyn Node>>,
    /// Messages sent in the round just executed, awaiting delivery.
    in_flight: Vec<Envelope>,
    /// Messages held back by a [`LinkFault::Delay`], keyed by the round in
    /// which they become deliverable.
    delayed: Vec<(u32, Envelope)>,
    round: u32,
    stats: NetStats,
    trace: Option<Trace>,
    faults: FaultPlan,
    /// Nodes with rushing power (see [`SyncNetwork::set_rushing`]).
    rushing: Vec<NodeId>,
    /// End-of-round wall-clock marks (µs since [`SyncNetwork::enable_round_marks`]),
    /// one per executed round. `None` when observability is off.
    round_marks: Option<Vec<u64>>,
    /// Wall-clock epoch for `round_marks`.
    marks_epoch: Option<std::time::Instant>,
    /// Peak in-flight queue depth seen at any round boundary (only tracked
    /// while round marks are enabled).
    max_queue_depth: usize,
}

impl SyncNetwork {
    /// Build a network from node automata.
    ///
    /// # Panics
    ///
    /// Panics if `nodes[i].id() != NodeId(i)` — ids must match positions so
    /// the simulator can stamp senders (N2).
    pub fn new(nodes: Vec<Box<dyn Node>>) -> Self {
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(
                node.id(),
                NodeId(i as u16),
                "node at index {i} reports id {}",
                node.id()
            );
        }
        let n = nodes.len();
        SyncNetwork {
            nodes,
            in_flight: Vec::new(),
            delayed: Vec::new(),
            round: 0,
            stats: NetStats::new(n),
            trace: None,
            faults: FaultPlan::new(),
            rushing: Vec::new(),
            round_marks: None,
            marks_epoch: None,
            max_queue_depth: 0,
        }
    }

    /// Enable message tracing with the given capacity.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Trace::with_capacity(cap));
    }

    /// Enable end-of-round timestamping. The sync engine has no virtual
    /// clock, so marks are monotonic wall-clock microseconds measured from
    /// this call; they are *not* deterministic and must never feed an
    /// equivalence surface. Also starts tracking the peak in-flight queue
    /// depth observed at round boundaries.
    pub fn enable_round_marks(&mut self) {
        self.round_marks = Some(Vec::new());
        self.marks_epoch = Some(std::time::Instant::now());
    }

    /// End-of-round marks recorded so far (µs since
    /// [`SyncNetwork::enable_round_marks`]), or `None` when observability
    /// is off.
    pub fn round_marks(&self) -> Option<&[u64]> {
        self.round_marks.as_deref()
    }

    /// Peak in-flight queue depth observed at round boundaries, or `None`
    /// when round marks were never enabled.
    pub fn max_queue_depth(&self) -> Option<usize> {
        self.round_marks.as_ref().map(|_| self.max_queue_depth)
    }

    /// Install a link-fault plan (deliberate N1 violations for tests).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Grant *rushing* power to the given (byzantine) nodes: in every
    /// round they act **after** all other nodes and additionally see the
    /// messages those nodes addressed to them **in the same round**,
    /// appended to their regular inbox. This is the standard strongest
    /// adversary of the synchronous model — it can adapt its round-`r`
    /// messages to the correct nodes' round-`r` messages.
    ///
    /// The previewed envelopes are still delivered normally in round
    /// `r + 1` (the rusher merely peeks early), so a rushing node sees
    /// them twice; honest automata are never rushing, and adversaries
    /// don't care. N2 is unaffected: the rusher still cannot spoof its
    /// sender stamp.
    pub fn set_rushing(&mut self, nodes: Vec<NodeId>) {
        self.rushing = nodes;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for the degenerate empty network.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The next round number to execute.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &dyn Node {
        self.nodes[id.index()].as_ref()
    }

    /// Consume the network, returning the automata for outcome inspection.
    pub fn into_nodes(self) -> Vec<Box<dyn Node>> {
        self.nodes
    }

    /// Consume the network, returning the automata *and* the statistics by
    /// move — the report path's alternative to `stats().clone()` +
    /// `into_nodes()`.
    pub fn finish(self) -> (Vec<Box<dyn Node>>, NetStats) {
        (self.nodes, self.stats)
    }

    /// `true` when every node reports [`Node::is_done`].
    pub fn all_done(&self) -> bool {
        self.nodes.iter().all(|n| n.is_done())
    }

    /// Execute one synchronous round.
    pub fn step(&mut self) {
        let round = self.round;
        let n = self.nodes.len();

        // Distribute in-flight messages into per-node inboxes,
        // applying any installed link faults. Delayed messages whose hold
        // expired this round are delivered first (they are older), and
        // reordered messages are appended after everything else.
        let mut inboxes: Vec<Vec<Envelope>> = (0..n).map(|_| Vec::new()).collect();
        let mut reordered: Vec<Vec<Envelope>> = (0..n).map(|_| Vec::new()).collect();
        let mut held = Vec::new();
        for (due, env) in std::mem::take(&mut self.delayed) {
            if due <= round {
                inboxes[env.to.index()].push(env);
            } else {
                held.push((due, env));
            }
        }
        self.delayed = held;
        for env in self.in_flight.drain(..) {
            match self.faults.lookup(env.round, env.from, env.to) {
                Some(LinkFault::Drop) => continue,
                Some(LinkFault::Corrupt { offset, mask }) => {
                    let mut env = env;
                    // Copy-on-write: sibling deliveries sharing the buffer
                    // must not observe the corruption.
                    if offset < env.payload.len() {
                        env.payload.make_mut()[offset] ^= mask;
                    }
                    inboxes[env.to.index()].push(env);
                }
                Some(LinkFault::Duplicate) => {
                    inboxes[env.to.index()].push(env.clone());
                    inboxes[env.to.index()].push(env);
                }
                // A zero-round delay is a no-op (as on the event engine,
                // where it adds zero ticks).
                Some(LinkFault::Delay { rounds: 0 }) => inboxes[env.to.index()].push(env),
                Some(LinkFault::Delay { rounds }) => {
                    self.delayed.push((round.saturating_add(rounds), env));
                }
                Some(LinkFault::Reorder) => reordered[env.to.index()].push(env),
                None => inboxes[env.to.index()].push(env),
            }
        }
        for (inbox, late) in inboxes.iter_mut().zip(reordered) {
            inbox.extend(late);
        }

        // Run every node on its inbox; collect new messages. Non-rushing
        // nodes act first (in id order); rushing nodes act last and
        // additionally preview the current round's messages addressed to
        // them (see [`SyncNetwork::set_rushing`]).
        let order: Vec<usize> = (0..n)
            .filter(|i| !self.rushing.contains(&NodeId(*i as u16)))
            .chain((0..n).filter(|i| self.rushing.contains(&NodeId(*i as u16))))
            .collect();
        for i in order {
            let from = NodeId(i as u16);
            let mut inbox = std::mem::take(&mut inboxes[i]);
            if self.rushing.contains(&from) {
                inbox.extend(
                    self.in_flight
                        .iter()
                        .filter(|env| env.round == round && env.to == from)
                        .cloned(),
                );
            }
            let mut out = Outbox::new();
            self.nodes[i].on_round(round, &inbox, &mut out);
            for (to, payload) in out.into_messages() {
                if to.index() >= n {
                    self.stats.dropped_invalid += 1;
                    continue;
                }
                let env = Envelope {
                    from,
                    to,
                    round,
                    payload,
                };
                self.stats.record_send(from, round, env.wire_len());
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(&env);
                }
                self.in_flight.push(env);
            }
        }

        self.round += 1;
        self.stats.rounds = self.round;
        if let Some(marks) = self.round_marks.as_mut() {
            let epoch = self.marks_epoch.expect("marks epoch set with round_marks");
            marks.push(u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX));
            let depth = self.in_flight.len() + self.delayed.len();
            self.max_queue_depth = self.max_queue_depth.max(depth);
        }
    }

    /// Run until every node is done (checked *after* at least one round) or
    /// `max_rounds` is reached. Returns the number of rounds executed.
    pub fn run_until_done(&mut self, max_rounds: u32) -> u32 {
        while self.round < max_rounds {
            self.step();
            if self.all_done() && self.in_flight.is_empty() && self.delayed.is_empty() {
                break;
            }
        }
        self.round
    }
}

impl core::fmt::Debug for SyncNetwork {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SyncNetwork")
            .field("n", &self.nodes.len())
            .field("round", &self.round)
            .field("in_flight", &self.in_flight.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// Sends its id to every peer in round 0, then records what it saw.
    struct Echo {
        id: NodeId,
        n: usize,
        seen: Vec<(NodeId, Vec<u8>)>,
    }

    impl Node for Echo {
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
            if round == 0 {
                out.broadcast(self.n, self.id, [self.id.0 as u8]);
            }
            for env in inbox {
                self.seen.push((env.from, env.payload.to_vec()));
            }
        }
        fn is_done(&self) -> bool {
            self.seen.len() + 1 >= self.n
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    fn echo_net(n: usize) -> SyncNetwork {
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                Box::new(Echo {
                    id: NodeId(i as u16),
                    n,
                    seen: Vec::new(),
                }) as Box<dyn Node>
            })
            .collect();
        SyncNetwork::new(nodes)
    }

    #[test]
    fn rushing_node_previews_current_round() {
        // Node 2 is rushing: in round 0 it must already see the round-0
        // messages the others addressed to it.
        let mut net = echo_net(3);
        net.set_rushing(vec![NodeId(2)]);
        net.step();
        let rusher = net.node(NodeId(2)).as_any().downcast_ref::<Echo>().unwrap();
        let seen0: Vec<NodeId> = rusher.seen.iter().map(|(f, _)| *f).collect();
        assert_eq!(seen0, vec![NodeId(0), NodeId(1)], "preview in round 0");
        // Non-rushing nodes saw nothing yet.
        let honest = net.node(NodeId(0)).as_any().downcast_ref::<Echo>().unwrap();
        assert!(honest.seen.is_empty());
    }

    #[test]
    fn rushing_preview_does_not_consume_delivery() {
        // The previewed messages are still delivered normally next round.
        let mut net = echo_net(3);
        net.set_rushing(vec![NodeId(2)]);
        net.step();
        net.step();
        let rusher = net.node(NodeId(2)).as_any().downcast_ref::<Echo>().unwrap();
        // Preview (2) + regular delivery (2) = 4 sightings.
        assert_eq!(rusher.seen.len(), 4);
    }

    #[test]
    fn rushing_does_not_change_honest_traffic_or_stats() {
        let mut plain = echo_net(4);
        plain.run_until_done(5);
        let mut rushed = echo_net(4);
        rushed.set_rushing(vec![NodeId(3)]);
        rushed.run_until_done(5);
        assert_eq!(plain.stats().messages_total, rushed.stats().messages_total);
    }

    #[test]
    fn full_mesh_exchange() {
        let mut net = echo_net(5);
        let rounds = net.run_until_done(10);
        assert_eq!(rounds, 2); // send in 0, receive in 1
        assert_eq!(net.stats().messages_total, 20); // n(n-1)
        let nodes = net.into_nodes();
        for node in &nodes {
            let echo = node.as_any().downcast_ref::<Echo>().unwrap();
            assert_eq!(echo.seen.len(), 4);
        }
    }

    #[test]
    fn sender_is_stamped_not_spoofable() {
        // The Echo node puts its id in the payload; check envelope.from
        // always matches, as stamped by the simulator.
        let mut net = echo_net(3);
        net.run_until_done(5);
        let nodes = net.into_nodes();
        for node in nodes {
            let echo = node.as_any().downcast_ref::<Echo>().unwrap();
            for (from, payload) in &echo.seen {
                assert_eq!(from.0 as u8, payload[0]);
            }
        }
    }

    #[test]
    fn drop_fault_suppresses_delivery() {
        let mut net = echo_net(3);
        net.set_fault_plan(FaultPlan::new().with(0, NodeId(0), NodeId(1), LinkFault::Drop));
        net.run_until_done(5);
        let nodes = net.into_nodes();
        let victim = nodes[1].as_any().downcast_ref::<Echo>().unwrap();
        assert_eq!(victim.seen.len(), 1); // only P2's message arrived
    }

    #[test]
    fn corrupt_fault_flips_byte() {
        let mut net = echo_net(2);
        net.set_fault_plan(FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(1),
            LinkFault::Corrupt {
                offset: 0,
                mask: 0xff,
            },
        ));
        net.run_until_done(5);
        let nodes = net.into_nodes();
        let victim = nodes[1].as_any().downcast_ref::<Echo>().unwrap();
        assert_eq!(victim.seen[0].1[0], 0xff); // 0 ^ 0xff
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let mut net = echo_net(2);
        net.set_fault_plan(FaultPlan::new().with(0, NodeId(0), NodeId(1), LinkFault::Duplicate));
        net.run_until_done(5);
        let nodes = net.into_nodes();
        let victim = nodes[1].as_any().downcast_ref::<Echo>().unwrap();
        assert_eq!(victim.seen.len(), 2);
    }

    #[test]
    fn delay_fault_postpones_delivery() {
        let mut net = echo_net(3);
        net.set_fault_plan(FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(1),
            LinkFault::Delay { rounds: 2 },
        ));
        net.step(); // round 0: sends
        net.step(); // round 1: P2's message arrives, P0's is held
        {
            let victim = net.node(NodeId(1)).as_any().downcast_ref::<Echo>().unwrap();
            assert_eq!(victim.seen.len(), 1);
            assert_eq!(victim.seen[0].0, NodeId(2));
        }
        net.step(); // round 2: still held (due round 3)
        net.step(); // round 3: delayed message matures
        let victim = net.node(NodeId(1)).as_any().downcast_ref::<Echo>().unwrap();
        assert_eq!(victim.seen.len(), 2);
        assert_eq!(victim.seen[1].0, NodeId(0));
    }

    #[test]
    fn delayed_messages_keep_run_alive() {
        let mut net = echo_net(2);
        net.set_fault_plan(FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(1),
            LinkFault::Delay { rounds: 3 },
        ));
        // Without the delayed-buffer check the run would stop after round 1
        // (all nodes claim done, in_flight empty) and lose the message.
        net.run_until_done(10);
        let nodes = net.into_nodes();
        let victim = nodes[1].as_any().downcast_ref::<Echo>().unwrap();
        assert_eq!(victim.seen.len(), 1, "delayed message still delivered");
    }

    #[test]
    fn reorder_fault_moves_message_last() {
        let mut net = echo_net(3);
        // P0 -> P2 reordered: P2 must see P1's message first.
        net.set_fault_plan(FaultPlan::new().with(0, NodeId(0), NodeId(2), LinkFault::Reorder));
        net.run_until_done(5);
        let nodes = net.into_nodes();
        let victim = nodes[2].as_any().downcast_ref::<Echo>().unwrap();
        let froms: Vec<NodeId> = victim.seen.iter().map(|(f, _)| *f).collect();
        assert_eq!(froms, vec![NodeId(1), NodeId(0)]);
    }

    #[test]
    fn invalid_destination_dropped_and_counted() {
        struct Stray {
            id: NodeId,
        }
        impl Node for Stray {
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
                if round == 0 {
                    out.send(NodeId(99), vec![1]);
                }
            }
            fn is_done(&self) -> bool {
                true
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        let mut net = SyncNetwork::new(vec![Box::new(Stray { id: NodeId(0) })]);
        net.run_until_done(3);
        assert_eq!(net.stats().messages_total, 0);
        assert_eq!(net.stats().dropped_invalid, 1);
    }

    #[test]
    #[should_panic(expected = "reports id")]
    fn mismatched_ids_rejected() {
        let nodes: Vec<Box<dyn Node>> = vec![Box::new(Echo {
            id: NodeId(5),
            n: 1,
            seen: Vec::new(),
        })];
        let _ = SyncNetwork::new(nodes);
    }

    #[test]
    fn trace_records_messages() {
        let mut net = echo_net(3);
        net.enable_trace(100);
        net.run_until_done(5);
        let trace = net.trace().unwrap();
        assert_eq!(trace.events().len(), 6);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn max_rounds_bounds_execution() {
        struct Chatter {
            id: NodeId,
        }
        impl Node for Chatter {
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_round(&mut self, _round: u32, _inbox: &[Envelope], out: &mut Outbox) {
                out.send(NodeId(1 - self.id.0), vec![0]);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        let mut net = SyncNetwork::new(vec![
            Box::new(Chatter { id: NodeId(0) }),
            Box::new(Chatter { id: NodeId(1) }),
        ]);
        assert_eq!(net.run_until_done(7), 7);
        assert_eq!(net.stats().messages_total, 14);
    }
}
