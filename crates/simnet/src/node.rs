//! The protocol automaton abstraction.

use crate::{Envelope, NodeId, Payload};
use std::any::Any;

/// One queued send operation. Broadcasts stay *compressed* — one op with a
/// shared payload handle instead of `n − 1` expanded messages — so a
/// transport that understands fan-out (the event engine's ring scheduler)
/// can move a whole broadcast as a single delivery record. Transports that
/// want the flat per-message view call [`Outbox::into_messages`], which
/// expands ops in exactly the order the legacy per-message outbox produced.
#[derive(Debug, Clone)]
pub(crate) enum OutOp {
    /// A single message to one destination.
    Send(NodeId, Payload),
    /// A shared payload for every node of an `n`-node system except `skip`.
    Broadcast {
        n: usize,
        skip: NodeId,
        payload: Payload,
    },
}

/// Messages queued by a node during one round.
#[derive(Debug, Default)]
pub struct Outbox {
    ops: Vec<OutOp>,
    /// Expanded message count across all ops.
    count: usize,
}

impl Outbox {
    /// Fresh empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queue `payload` for delivery to `to` at the start of the next round.
    pub fn send(&mut self, to: NodeId, payload: impl Into<Payload>) {
        self.ops.push(OutOp::Send(to, payload.into()));
        self.count += 1;
    }

    /// Queue `payload` for every node of an `n`-node system except `me`.
    ///
    /// The bytes are shared: one [`Payload`] buffer is created and every
    /// recipient's queued message is a handle to it, so an `n`-way
    /// broadcast costs one allocation instead of `n − 1` copies (pass an
    /// owned `Vec<u8>` to avoid even the initial copy). The op itself also
    /// stays compressed until a transport expands it.
    pub fn broadcast(&mut self, n: usize, me: NodeId, payload: impl Into<Payload>) {
        self.count += n - usize::from(me.index() < n);
        self.ops.push(OutOp::Broadcast {
            n,
            skip: me,
            payload: payload.into(),
        });
    }

    /// Number of queued messages (broadcasts counted expanded).
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` if nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Drain the queued messages (transport-internal). Broadcast ops expand
    /// to `(peer, payload)` pairs in ascending peer order, skipping the
    /// sender — the exact order the per-message outbox used to produce.
    pub fn into_messages(self) -> Vec<(NodeId, Payload)> {
        let mut msgs = Vec::with_capacity(self.count);
        for op in self.ops {
            match op {
                OutOp::Send(to, payload) => msgs.push((to, payload)),
                OutOp::Broadcast { n, skip, payload } => {
                    for peer in NodeId::all(n) {
                        if peer != skip {
                            msgs.push((peer, payload.clone()));
                        }
                    }
                }
            }
        }
        msgs
    }

    /// Drain the raw ops (event-engine-internal; keeps broadcasts
    /// compressed).
    pub(crate) fn into_ops(self) -> Vec<OutOp> {
        self.ops
    }
}

/// A protocol automaton driven in synchronous rounds.
///
/// The same automaton runs on [`crate::SyncNetwork`], the thread transport,
/// and the TCP transport. In each round the transport delivers everything
/// sent to this node in the previous round (`inbox`), and the node may queue
/// outgoing messages (`out`). Determinism requirement: `on_round` must be a
/// pure function of construction parameters, rounds seen so far, and inbox
/// contents — all experiment tables rely on replayability.
pub trait Node: Send {
    /// This node's identity. Must match its index in the transport.
    fn id(&self) -> NodeId;

    /// Handle one synchronous round.
    ///
    /// `round` starts at 0 (in which every inbox is empty and initiators
    /// send their first messages).
    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox);

    /// `true` once this node will neither send nor change state again.
    /// Transports may stop early when all nodes are done.
    fn is_done(&self) -> bool {
        false
    }

    /// Downcasting support: protocols expose their outcome through their
    /// concrete type after the run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Owned downcasting support; implementors write `self`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_in_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(NodeId(1), vec![1]);
        out.send(NodeId(2), vec![2]);
        assert_eq!(out.len(), 2);
        let msgs = out.into_messages();
        assert_eq!(msgs[0].0, NodeId(1));
        assert_eq!(msgs[1].0, NodeId(2));
    }

    #[test]
    fn broadcast_skips_self() {
        let mut out = Outbox::new();
        out.broadcast(4, NodeId(2), b"x");
        assert_eq!(out.len(), 3);
        let targets: Vec<NodeId> = out.into_messages().into_iter().map(|(to, _)| to).collect();
        assert_eq!(targets, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn broadcast_from_outside_the_system_reaches_everyone() {
        // An out-of-range `me` never matches a peer, so all `n` expand.
        let mut out = Outbox::new();
        out.broadcast(3, NodeId(9), b"x");
        assert_eq!(out.len(), 3);
        assert_eq!(out.into_messages().len(), 3);
    }

    #[test]
    fn mixed_ops_expand_in_queue_order() {
        let mut out = Outbox::new();
        out.send(NodeId(3), vec![7]);
        out.broadcast(3, NodeId(0), vec![8]);
        out.send(NodeId(0), vec![9]);
        assert_eq!(out.len(), 4);
        let targets: Vec<NodeId> = out.into_messages().into_iter().map(|(to, _)| to).collect();
        assert_eq!(targets, vec![NodeId(3), NodeId(1), NodeId(2), NodeId(0)]);
    }
}
