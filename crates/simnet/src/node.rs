//! The protocol automaton abstraction.

use crate::{Envelope, NodeId, Payload};
use std::any::Any;

/// Messages queued by a node during one round.
#[derive(Debug, Default)]
pub struct Outbox {
    msgs: Vec<(NodeId, Payload)>,
}

impl Outbox {
    /// Fresh empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queue `payload` for delivery to `to` at the start of the next round.
    pub fn send(&mut self, to: NodeId, payload: impl Into<Payload>) {
        self.msgs.push((to, payload.into()));
    }

    /// Queue `payload` for every node of an `n`-node system except `me`.
    ///
    /// The bytes are shared: one [`Payload`] buffer is created and every
    /// recipient's queued message is a handle to it, so an `n`-way
    /// broadcast costs one allocation instead of `n − 1` copies (pass an
    /// owned `Vec<u8>` to avoid even the initial copy).
    pub fn broadcast(&mut self, n: usize, me: NodeId, payload: impl Into<Payload>) {
        let shared = payload.into();
        for peer in NodeId::all(n) {
            if peer != me {
                self.msgs.push((peer, shared.clone()));
            }
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// `true` if nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Drain the queued messages (transport-internal).
    pub fn into_messages(self) -> Vec<(NodeId, Payload)> {
        self.msgs
    }
}

/// A protocol automaton driven in synchronous rounds.
///
/// The same automaton runs on [`crate::SyncNetwork`], the thread transport,
/// and the TCP transport. In each round the transport delivers everything
/// sent to this node in the previous round (`inbox`), and the node may queue
/// outgoing messages (`out`). Determinism requirement: `on_round` must be a
/// pure function of construction parameters, rounds seen so far, and inbox
/// contents — all experiment tables rely on replayability.
pub trait Node: Send {
    /// This node's identity. Must match its index in the transport.
    fn id(&self) -> NodeId;

    /// Handle one synchronous round.
    ///
    /// `round` starts at 0 (in which every inbox is empty and initiators
    /// send their first messages).
    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox);

    /// `true` once this node will neither send nor change state again.
    /// Transports may stop early when all nodes are done.
    fn is_done(&self) -> bool {
        false
    }

    /// Downcasting support: protocols expose their outcome through their
    /// concrete type after the run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Owned downcasting support; implementors write `self`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_in_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(NodeId(1), vec![1]);
        out.send(NodeId(2), vec![2]);
        assert_eq!(out.len(), 2);
        let msgs = out.into_messages();
        assert_eq!(msgs[0].0, NodeId(1));
        assert_eq!(msgs[1].0, NodeId(2));
    }

    #[test]
    fn broadcast_skips_self() {
        let mut out = Outbox::new();
        out.broadcast(4, NodeId(2), b"x");
        let targets: Vec<NodeId> = out.into_messages().into_iter().map(|(to, _)| to).collect();
        assert_eq!(targets, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }
}
