//! # fd-simnet
//!
//! The distributed-system substrate for the
//! [Borcherding 1995](https://doi.org/10.1109/ICDCS.1995.500023)
//! reproduction: a deterministic round-synchronous network simulator plus
//! two *real* transports (threads and TCP) that drive the same protocol
//! automata.
//!
//! ## The model (paper §2)
//!
//! * `n` fully interconnected nodes communicating in **synchronous rounds**;
//!   in each round a node may send messages and receives everything sent to
//!   it in that round.
//! * **N1** — messages are transmitted reliably in bounded time. The
//!   simulator delivers every message exactly one round after it is sent
//!   (a [`fault::FaultPlan`] can deliberately break N1 in tests).
//! * **N2** — the receiver can identify the *immediate sender*. The
//!   transport stamps [`Envelope::from`]; payloads cannot spoof it.
//!
//! Protocols are implemented as [`Node`] automata and run unchanged on
//! [`SyncNetwork`] (deterministic, used for all experiment tables), the
//! [`EventNetwork`] discrete-event simulator (virtual time, pluggable
//! [`event::LatencyModel`]s, per-link overrides via [`LinkLatencySpec`],
//! timing faults, and the per-message delay-override hook behind the
//! adversarial scheduler search's replayable certificates), the
//! [`transport::thread`] lock-step thread runner, and the
//! [`transport::tcp`] localhost TCP cluster.
//!
//! ## Example
//!
//! ```
//! use fd_simnet::{Envelope, Node, NodeId, Outbox, SyncNetwork};
//!
//! /// Every node greets every other node in round 0 and counts replies.
//! struct Greeter { id: NodeId, n: usize, greetings: usize }
//!
//! impl Node for Greeter {
//!     fn id(&self) -> NodeId { self.id }
//!     fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
//!         if round == 0 {
//!             for peer in NodeId::all(self.n) {
//!                 if peer != self.id { out.send(peer, b"hi".to_vec()); }
//!             }
//!         }
//!         self.greetings += inbox.len();
//!     }
//!     fn is_done(&self) -> bool { self.greetings + 1 >= self.n }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//!     fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> { self }
//! }
//!
//! let nodes: Vec<Box<dyn Node>> = (0..4)
//!     .map(|i| Box::new(Greeter { id: NodeId(i), n: 4, greetings: 0 }) as Box<dyn Node>)
//!     .collect();
//! let mut net = SyncNetwork::new(nodes);
//! net.run_until_done(10);
//! assert_eq!(net.stats().messages_total, 12); // n(n-1)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod envelope;
pub mod event;
pub mod fault;
mod id;
mod network;
mod node;
mod payload;
mod stats;
mod trace;
pub mod transport;

pub use envelope::Envelope;
pub use event::{
    DelayOverrides, Engine, EventNetwork, LatencyModel, LatencySpec, LinkLatencySpec, SchedCounters,
};
pub use id::NodeId;
pub use network::SyncNetwork;
pub use node::{Node, Outbox};
pub use payload::Payload;
pub use stats::NetStats;
pub use trace::{Trace, TraceEvent};
