//! Canonical wire encoding.
//!
//! Signatures require a *deterministic* byte representation of every signed
//! structure (the same logical message must hash identically at signer and
//! verifier), so the reproduction uses this hand-rolled canonical codec
//! instead of a general serialization framework: fixed big-endian integers,
//! `u32` length prefixes, no padding, no optional fields on the wire.
//!
//! ```
//! use fd_simnet::codec::{Decode, Encode, Reader, Writer};
//!
//! let mut w = Writer::new();
//! 42u32.encode(&mut w);
//! b"hello".to_vec().encode(&mut w);
//! let bytes = w.into_bytes();
//!
//! let mut r = Reader::new(&bytes);
//! assert_eq!(u32::decode(&mut r).unwrap(), 42);
//! assert_eq!(Vec::<u8>::decode(&mut r).unwrap(), b"hello");
//! assert!(r.is_empty());
//! ```

use crate::NodeId;
use core::fmt;

/// Errors produced when decoding malformed wire bytes.
///
/// Protocol automata treat any decode error on a received payload as
/// evidence of failure (a correct node never sends malformed bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input (or a sanity limit).
    BadLength,
    /// An enum tag byte was not recognized.
    BadTag(u8),
    /// Trailing bytes remained after a complete decode.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CodecError::BadLength => write!(f, "length prefix out of bounds"),
            CodecError::BadTag(t) => write!(f, "unrecognized tag byte {t:#04x}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Canonical encoder: append-only byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes *without* a length prefix (fixed-width fields).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32`-length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.put_raw(bytes);
    }
}

/// Canonical decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Start reading `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { rest: bytes }
    }

    /// Remaining unread byte count.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// `true` when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.rest.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.rest.len() < n {
            return Err(CodecError::UnexpectedEnd);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read exactly `n` raw bytes (fixed-width field).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Read a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as usize;
        if len > self.rest.len() {
            return Err(CodecError::BadLength);
        }
        self.take(len)
    }
}

/// A value with a canonical byte encoding.
pub trait Encode {
    /// Append the canonical encoding of `self`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encode into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// A value decodable from its canonical encoding.
pub trait Decode: Sized {
    /// Decode one value, advancing the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the input is malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decode a value that must consume the entire input.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TrailingBytes`] if input remains afterwards.
    fn decode_exact(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(v)
    }
}

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
}
impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u8()
    }
}
impl Encode for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
}
impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u16()
    }
}
impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
}
impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u32()
    }
}
impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}
impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}
impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(r.get_bytes()?.to_vec())
    }
}

impl Encode for NodeId {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.0);
    }
}
impl Decode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NodeId(r.get_u16()?))
    }
}

/// Length-prefixed homogeneous sequences.
impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
}

/// Generic sequence decoding helper (a blanket `Vec<T>` impl would conflict
/// with the `Vec<u8>` byte-string form above, so sequences encode via the
/// `[T]` impl and decode through this explicit function).
///
/// # Errors
///
/// Propagates element decode errors; rejects absurd length prefixes.
pub fn decode_seq<T: Decode>(r: &mut Reader<'_>) -> Result<Vec<T>, CodecError> {
    let len = r.get_u32()? as usize;
    // Each element costs at least one byte on the wire.
    if len > r.remaining() {
        return Err(CodecError::BadLength);
    }
    let mut out = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u16(2);
        w.put_u32(3);
        w.put_u64(4);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 1 + 2 + 4 + 8);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u16().unwrap(), 2);
        assert_eq!(r.get_u32().unwrap(), 3);
        assert_eq!(r.get_u64().unwrap(), 4);
        assert!(r.is_empty());
    }

    #[test]
    fn big_endian_on_wire() {
        let mut w = Writer::new();
        w.put_u32(0x0102_0304);
        assert_eq!(w.into_bytes(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn byte_strings_are_length_prefixed() {
        let mut w = Writer::new();
        w.put_bytes(b"ab");
        assert_eq!(w.into_bytes(), vec![0, 0, 0, 2, b'a', b'b']);
    }

    #[test]
    fn unexpected_end_errors() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.get_u32(), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn bad_length_rejected() {
        // Claims 100 bytes, provides 1.
        let bytes = [0u8, 0, 0, 100, 7];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(CodecError::BadLength));
    }

    #[test]
    fn decode_exact_rejects_trailing() {
        let mut w = Writer::new();
        32u32.encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes.push(0xff);
        assert_eq!(u32::decode_exact(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn node_id_round_trip() {
        let bytes = NodeId(300).encode_to_vec();
        assert_eq!(NodeId::decode_exact(&bytes).unwrap(), NodeId(300));
    }

    #[test]
    fn seq_round_trip() {
        let v: Vec<u32> = vec![5, 6, 7];
        let bytes = v.as_slice().encode_to_vec();
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_seq::<u32>(&mut r).unwrap(), v);
    }

    #[test]
    fn seq_absurd_length_rejected() {
        let bytes = [0xffu8, 0xff, 0xff, 0xff];
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_seq::<u32>(&mut r), Err(CodecError::BadLength));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            CodecError::BadTag(0x2a).to_string(),
            "unrecognized tag byte 0x2a"
        );
    }
}
