//! Message envelopes.

use crate::codec::{CodecError, Decode, Encode, Reader, Writer};
use crate::{NodeId, Payload};

/// A message in flight.
///
/// `from` is stamped by the transport, never by the sender's payload — that
/// is exactly the paper's property **N2** ("a receiver of a message can
/// identify its immediate sender"). Byzantine nodes control their payloads
/// completely but cannot spoof `from`.
///
/// The payload is an [`Payload`] handle, so cloning an envelope (broadcast
/// fan-out, `Duplicate` faults, rushing previews) never copies the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Immediate sender (transport-authenticated, property N2).
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Round in which the message was sent; it is delivered to `to` at the
    /// start of round `round + 1`.
    pub round: u32,
    /// Opaque protocol payload (shared handle; see [`Payload`]).
    pub payload: Payload,
}

impl Envelope {
    /// Wire size used for statistics: header + payload.
    pub fn wire_len(&self) -> usize {
        Envelope::wire_len_with(self.payload.len())
    }

    /// Wire size of an envelope carrying `payload_len` payload bytes —
    /// lets a compressed broadcast account `n − 1` identical messages
    /// without materializing them.
    pub(crate) fn wire_len_with(payload_len: usize) -> usize {
        2 + 2 + 4 + 4 + payload_len
    }
}

impl Encode for Envelope {
    fn encode(&self, w: &mut Writer) {
        self.from.encode(w);
        self.to.encode(w);
        w.put_u32(self.round);
        w.put_bytes(&self.payload);
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Envelope {
            from: NodeId::decode(r)?,
            to: NodeId::decode(r)?,
            round: r.get_u32()?,
            payload: Payload::from(r.get_bytes()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let e = Envelope {
            from: NodeId(1),
            to: NodeId(2),
            round: 9,
            payload: vec![1, 2, 3].into(),
        };
        let bytes = e.encode_to_vec();
        assert_eq!(Envelope::decode_exact(&bytes).unwrap(), e);
        assert_eq!(e.wire_len(), bytes.len());
    }

    #[test]
    fn empty_payload_ok() {
        let e = Envelope {
            from: NodeId(0),
            to: NodeId(0),
            round: 0,
            payload: Payload::new(),
        };
        assert_eq!(Envelope::decode_exact(&e.encode_to_vec()).unwrap(), e);
    }
}
