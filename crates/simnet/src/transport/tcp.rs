//! Full-mesh localhost TCP transport.
//!
//! Every node binds a listener on `127.0.0.1`, the mesh is established
//! (lower id connects to higher id, with an id handshake), and rounds are
//! synchronized with per-round *completion markers*: a node processes round
//! `r` only after receiving the round-`(r-1)` marker from every peer, which
//! — over reliable TCP — guarantees it holds every round-`(r-1)` message
//! addressed to it. This is the bounded-delay reliable network of paper
//! property N1 realized on a real stack.
//!
//! Property N2 (sender identification) is enforced structurally: messages
//! are attributed to the identity bound to the TCP connection they arrived
//! on at handshake time; nothing in the payload can change that.
//!
//! A lost peer or an expired deadline surfaces as a typed
//! [`TransportError`] in [`ClusterReport::errors`], never a panic inside a
//! node thread and never a silent hang. The deadline defaults to 60 s and
//! is configurable via [`TcpCluster::with_io_deadline`] (CLI:
//! `--io-deadline-secs`).

use super::{ClusterReport, TransportError};
use crate::{Envelope, NetStats, Node, NodeId, Outbox};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Lock a mutex, tolerating poisoning (a panicked node thread already
/// aborts the run via `join`; the lock data itself is never left
/// inconsistent mid-operation).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Default mesh-setup and per-read deadline: generous enough for slow CI
/// machines, short enough that a lost peer turns into a loud
/// [`TransportError`] instead of a silent hang.
pub const DEFAULT_IO_DEADLINE: Duration = Duration::from_secs(60);

const TAG_MSG: u8 = 0;
const TAG_MARKER: u8 = 1;
/// Reader-thread sentinel: the peer's connection is gone (EOF, error, or
/// read timeout). Never goes on the wire.
const TAG_GONE: u8 = 0xff;

/// A frame received from a peer (identity taken from the connection).
#[derive(Debug)]
struct InFrame {
    from: NodeId,
    tag: u8,
    round: u32,
    payload: Vec<u8>,
}

fn write_frame(stream: &mut TcpStream, tag: u8, round: u32, payload: &[u8]) -> std::io::Result<()> {
    let len = 1 + 4 + payload.len();
    stream.write_all(&(len as u32).to_be_bytes())?;
    stream.write_all(&[tag])?;
    stream.write_all(&round.to_be_bytes())?;
    stream.write_all(payload)?;
    Ok(())
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<(u8, u32, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len < 5 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too short",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let tag = body[0];
    let round = u32::from_be_bytes([body[1], body[2], body[3], body[4]]);
    Ok((tag, round, body[5..].to_vec()))
}

/// Full-mesh TCP cluster running node automata for a fixed number of rounds.
///
/// Unlike the simulator, the TCP transport cannot observe global quiescence
/// cheaply, so the round count is fixed up front (protocol round counts are
/// known: key distribution takes 3, the chain FD protocol `t + 2`, …).
#[derive(Debug)]
pub struct TcpCluster {
    rounds: u32,
    io_deadline: Duration,
}

impl TcpCluster {
    /// Cluster that runs exactly `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(rounds: u32) -> Self {
        assert!(rounds > 0, "at least one round required");
        TcpCluster {
            rounds,
            io_deadline: DEFAULT_IO_DEADLINE,
        }
    }

    /// Replace the default 60 s mesh-setup / per-wait deadline.
    #[must_use]
    pub fn with_io_deadline(mut self, io_deadline: Duration) -> Self {
        self.io_deadline = io_deadline;
        self
    }

    /// Run the automata over localhost TCP.
    ///
    /// Environmental failures (lost peers, expired deadlines, socket
    /// errors) land in [`ClusterReport::errors`]; the report's `nodes` and
    /// `stats` then cover only the slots that finished.
    ///
    /// # Panics
    ///
    /// Panics on node id/index mismatches (API misuse, not an
    /// environmental failure).
    pub fn run(&self, nodes: Vec<Box<dyn Node>>) -> ClusterReport {
        let n = nodes.len();
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.id(), NodeId(i as u16), "node id/index mismatch");
        }
        if n == 1 {
            return self.run_single(nodes);
        }

        // Bind all listeners first so every address is known before any
        // connection attempt.
        let mut listeners = Vec::with_capacity(n);
        for i in 0..n {
            match TcpListener::bind("127.0.0.1:0") {
                Ok(l) => listeners.push(l),
                Err(e) => {
                    return ClusterReport {
                        nodes: Vec::new(),
                        stats: NetStats::new(n),
                        rounds: 0,
                        errors: vec![TransportError::Bind {
                            node: NodeId(i as u16),
                            addr: "127.0.0.1:0".to_string(),
                            error: e.to_string(),
                        }],
                    }
                }
            }
        }
        let addrs: Vec<SocketAddr> = match listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<std::io::Result<Vec<_>>>()
        {
            Ok(addrs) => addrs,
            Err(e) => {
                return ClusterReport {
                    nodes: Vec::new(),
                    stats: NetStats::new(n),
                    rounds: 0,
                    errors: vec![TransportError::io(NodeId(0), "local addr", &e)],
                }
            }
        };
        let addrs = Arc::new(addrs);

        let rounds = self.rounds;
        let io_deadline = self.io_deadline;
        let mut handles = Vec::with_capacity(n);
        for (i, node) in nodes.into_iter().enumerate() {
            let listener = listeners[i].try_clone().expect("clone listener");
            let addrs = Arc::clone(&addrs);
            handles.push(thread::spawn(move || {
                run_node(node, i as u16, listener, &addrs, rounds, io_deadline)
            }));
        }

        let mut finished: Vec<(Box<dyn Node>, NetStats)> = Vec::with_capacity(n);
        let mut errors = Vec::new();
        for (i, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(result)) => finished.push(result),
                Ok(Err(e)) => errors.push(e),
                Err(_) => errors.push(TransportError::WorkerPanic {
                    node: NodeId(i as u16),
                }),
            }
        }

        let mut stats = NetStats::new(n);
        stats.rounds = rounds;
        for (node, local) in &finished {
            let id = node.id();
            for (r, count) in local.per_round.iter().enumerate() {
                if stats.per_round.len() <= r {
                    stats.per_round.resize(r + 1, 0);
                }
                stats.per_round[r] += count;
            }
            stats.messages_total += local.messages_total;
            stats.bytes_total += local.bytes_total;
            stats.dropped_invalid += local.dropped_invalid;
            stats.sent_by[id.index()] = local.messages_total;
        }

        finished.sort_by_key(|(node, _)| node.id());
        ClusterReport {
            nodes: finished.into_iter().map(|(node, _)| node).collect(),
            stats,
            rounds,
            errors,
        }
    }

    /// Degenerate single-node "cluster" (no sockets needed).
    fn run_single(&self, mut nodes: Vec<Box<dyn Node>>) -> ClusterReport {
        let mut node = nodes.pop().expect("one node");
        let mut stats = NetStats::new(1);
        for round in 0..self.rounds {
            let mut out = Outbox::new();
            node.on_round(round, &[], &mut out);
            stats.dropped_invalid += out.into_messages().len();
        }
        stats.rounds = self.rounds;
        ClusterReport {
            nodes: vec![node],
            stats,
            rounds: self.rounds,
            errors: Vec::new(),
        }
    }
}

/// Per-node main loop: mesh setup, reader threads, round loop.
fn run_node(
    mut node: Box<dyn Node>,
    me: u16,
    listener: TcpListener,
    addrs: &[SocketAddr],
    rounds: u32,
    io_deadline: Duration,
) -> Result<(Box<dyn Node>, NetStats), TransportError> {
    let n = addrs.len();
    let me_id = NodeId(me);

    // Establish the mesh: accept from lower ids, connect to higher ids.
    // Handshake: initiator sends its id as 2 bytes.
    let streams: Arc<Mutex<HashMap<NodeId, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut accept_count = me as usize; // peers with smaller id connect to us

    let (frame_tx, frame_rx) = mpsc::channel::<InFrame>();

    // Connect outward (with a deadline so a dead peer cannot hang the
    // whole cluster).
    for (peer, addr) in addrs.iter().enumerate().skip(me as usize + 1) {
        let stream =
            TcpStream::connect_timeout(addr, io_deadline).map_err(|e| TransportError::Connect {
                node: me_id,
                peer: NodeId(peer as u16),
                error: e.to_string(),
            })?;
        let mut s = stream
            .try_clone()
            .map_err(|e| TransportError::io(me_id, "clone stream", &e))?;
        s.write_all(&me.to_be_bytes())
            .map_err(|e| TransportError::Handshake {
                node: me_id,
                peer: Some(NodeId(peer as u16)),
                detail: e.to_string(),
            })?;
        lock(&streams).insert(NodeId(peer as u16), stream);
    }
    // Accept inward, bounded by the same deadline.
    listener
        .set_nonblocking(true)
        .map_err(|e| TransportError::io(me_id, "nonblocking accept", &e))?;
    let deadline = Instant::now() + io_deadline;
    while accept_count > 0 {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| TransportError::io(me_id, "blocking stream", &e))?;
                stream
                    .set_read_timeout(Some(io_deadline))
                    .map_err(|e| TransportError::io(me_id, "read timeout", &e))?;
                let mut id_buf = [0u8; 2];
                stream
                    .read_exact(&mut id_buf)
                    .map_err(|e| TransportError::Handshake {
                        node: me_id,
                        peer: None,
                        detail: e.to_string(),
                    })?;
                let peer = NodeId(u16::from_be_bytes(id_buf));
                if peer.0 >= me {
                    return Err(TransportError::Handshake {
                        node: me_id,
                        peer: Some(peer),
                        detail: format!("unexpected handshake from {peer}"),
                    });
                }
                lock(&streams).insert(peer, stream);
                accept_count -= 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Deadline {
                        node: me_id,
                        waiting: format!("{accept_count} peer connection(s)"),
                        after: io_deadline,
                    });
                }
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(TransportError::io(me_id, "accept peer", &e)),
        }
    }
    // Reads during the run are bounded too: a vanished peer surfaces as a
    // reader-thread exit sentinel, and the main loop waiting for its
    // marker reports a typed error instead of hanging.
    for stream in lock(&streams).values() {
        stream
            .set_read_timeout(Some(io_deadline))
            .map_err(|e| TransportError::io(me_id, "read timeout", &e))?;
    }

    // One reader thread per peer; the *connection* determines `from` (N2).
    let mut reader_handles = Vec::new();
    for (peer, stream) in lock(&streams).iter() {
        let mut stream = stream
            .try_clone()
            .map_err(|e| TransportError::io(me_id, "clone for reader", &e))?;
        let tx = frame_tx.clone();
        let peer = *peer;
        reader_handles.push(thread::spawn(move || loop {
            match read_frame(&mut stream) {
                Ok((tag, round, payload)) => {
                    if tx
                        .send(InFrame {
                            from: peer,
                            tag,
                            round,
                            payload,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                Err(_) => {
                    // Peer closed (or the read deadline expired): tell the
                    // main loop, which decides whether the peer was still
                    // needed.
                    let _ = tx.send(InFrame {
                        from: peer,
                        tag: TAG_GONE,
                        round: 0,
                        payload: Vec::new(),
                    });
                    break;
                }
            }
        }));
    }
    drop(frame_tx);

    let mut stats = NetStats::new(n);
    // Messages buffered per round: round -> Vec<Envelope>.
    let mut buffered: HashMap<u32, Vec<Envelope>> = HashMap::new();
    // Marker senders per round.
    let mut markers: HashMap<u32, HashSet<NodeId>> = HashMap::new();
    // Peers whose reader thread has exited.
    let mut gone: HashSet<NodeId> = HashSet::new();

    let run = (|| -> Result<(), TransportError> {
        for round in 0..rounds {
            // Wait for every peer's marker for the previous round.
            if round > 0 {
                let prev = round - 1;
                while markers.get(&prev).map_or(0, HashSet::len) < n - 1 {
                    if let Some(peer) = gone
                        .iter()
                        .find(|p| !markers.get(&prev).is_some_and(|m| m.contains(p)))
                    {
                        return Err(TransportError::PeerLost {
                            node: me_id,
                            peer: *peer,
                            round,
                        });
                    }
                    match frame_rx.recv_timeout(io_deadline) {
                        Ok(frame) => ingest(frame, &mut buffered, &mut markers, &mut gone),
                        Err(_) => {
                            return Err(TransportError::Deadline {
                                node: me_id,
                                waiting: format!("round {prev} markers"),
                                after: io_deadline,
                            })
                        }
                    }
                }
            }
            // Drain anything already queued without blocking.
            while let Ok(frame) = frame_rx.try_recv() {
                ingest(frame, &mut buffered, &mut markers, &mut gone);
            }

            let inbox = if round > 0 {
                let mut msgs = buffered.remove(&(round - 1)).unwrap_or_default();
                // Deterministic order: by sender id, then arrival order.
                msgs.sort_by_key(|e| e.from);
                msgs
            } else {
                Vec::new()
            };

            let mut out = Outbox::new();
            node.on_round(round, &inbox, &mut out);

            for (to, payload) in out.into_messages() {
                if to.index() >= n || to == me_id {
                    stats.dropped_invalid += 1;
                    continue;
                }
                let env = Envelope {
                    from: me_id,
                    to,
                    round,
                    payload,
                };
                stats.record_send(me_id, round, env.wire_len());
                let mut guard = lock(&streams);
                let stream = guard.get_mut(&to).expect("stream for peer");
                write_frame(stream, TAG_MSG, round, &env.payload)
                    .map_err(|e| TransportError::io(me_id, format!("send frame to {to}"), &e))?;
            }
            // Round marker to everyone.
            let mut guard = lock(&streams);
            for (peer, stream) in guard.iter_mut() {
                write_frame(stream, TAG_MARKER, round, &[])
                    .map_err(|e| TransportError::io(me_id, format!("send marker to {peer}"), &e))?;
            }
        }
        Ok(())
    })();

    // Close the mesh half-duplex: `shutdown(Write)` sends FIN (the socket
    // is shared with reader-thread clones, so a plain drop would not), and
    // every peer's reader wakes with EOF once all its peers have finished.
    // The read half stays open so peers still flushing their final-round
    // markers never see a broken pipe. On the error path the streams are
    // dropped outright, which also unblocks every reader.
    for (_, stream) in lock(&streams).drain() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    drop(frame_rx);
    for h in reader_handles {
        let _ = h.join();
    }
    run?;
    stats.rounds = rounds;
    Ok((node, stats))
}

fn ingest(
    frame: InFrame,
    buffered: &mut HashMap<u32, Vec<Envelope>>,
    markers: &mut HashMap<u32, HashSet<NodeId>>,
    gone: &mut HashSet<NodeId>,
) {
    match frame.tag {
        TAG_MSG => buffered.entry(frame.round).or_default().push(Envelope {
            from: frame.from,
            to: NodeId(u16::MAX), // implicit: this node
            round: frame.round,
            payload: frame.payload.into(),
        }),
        TAG_MARKER => {
            markers.entry(frame.round).or_default().insert(frame.from);
        }
        TAG_GONE => {
            gone.insert(frame.from);
        }
        other => {
            // Unknown control tag: ignore (future extension space).
            let _ = other;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    struct Counter {
        id: NodeId,
        n: usize,
        got: usize,
        senders_ok: bool,
    }

    impl Node for Counter {
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
            if round == 0 {
                out.broadcast(self.n, self.id, [self.id.0 as u8]);
            }
            for env in inbox {
                self.got += 1;
                // payload claims a sender; N2 stamp must agree.
                self.senders_ok &= env.from.0 as u8 == env.payload[0];
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    fn cluster_nodes(n: usize) -> Vec<Box<dyn Node>> {
        (0..n)
            .map(|i| {
                Box::new(Counter {
                    id: NodeId(i as u16),
                    n,
                    got: 0,
                    senders_ok: true,
                }) as Box<dyn Node>
            })
            .collect()
    }

    #[test]
    fn mesh_exchange_over_tcp() {
        let n = 5;
        let report = TcpCluster::new(2).run(cluster_nodes(n));
        assert!(report.ok().is_ok());
        assert_eq!(report.stats.messages_total, n * (n - 1));
        for node in &report.nodes {
            let c = node.as_any().downcast_ref::<Counter>().unwrap();
            assert_eq!(c.got, n - 1);
            assert!(c.senders_ok, "N2 violated");
        }
    }

    #[test]
    fn single_node_degenerate() {
        let report = TcpCluster::new(3).run(cluster_nodes(1));
        assert_eq!(report.rounds, 3);
        assert_eq!(report.stats.messages_total, 0);
        assert!(report.errors.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = TcpCluster::new(0);
    }

    /// A node that panics mid-run: the report must carry a typed error for
    /// its slot (and typically peer-lost/deadline errors for the others)
    /// instead of propagating a panic or hanging.
    struct Bomb {
        id: NodeId,
        n: usize,
    }

    impl Node for Bomb {
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
            if round == 1 && self.id == NodeId(0) {
                panic!("boom");
            }
            out.broadcast(self.n, self.id, [round as u8]);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    #[test]
    fn lost_peer_is_a_typed_error_not_a_hang() {
        let n = 3;
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                Box::new(Bomb {
                    id: NodeId(i as u16),
                    n,
                }) as Box<dyn Node>
            })
            .collect();
        let report = TcpCluster::new(4)
            .with_io_deadline(Duration::from_secs(5))
            .run(nodes);
        assert!(report.ok().is_err());
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, TransportError::WorkerPanic { node } if *node == NodeId(0))),
            "panicked slot not reported: {:?}",
            report.errors
        );
        // The survivors must notice the vanished peer rather than hang.
        assert!(report.nodes.len() < n);
    }
}
