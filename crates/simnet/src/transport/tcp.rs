//! Full-mesh localhost TCP transport.
//!
//! Every node binds a listener on `127.0.0.1`, the mesh is established
//! (lower id connects to higher id, with an id handshake), and rounds are
//! synchronized with per-round *completion markers*: a node processes round
//! `r` only after receiving the round-`(r-1)` marker from every peer, which
//! — over reliable TCP — guarantees it holds every round-`(r-1)` message
//! addressed to it. This is the bounded-delay reliable network of paper
//! property N1 realized on a real stack.
//!
//! Property N2 (sender identification) is enforced structurally: messages
//! are attributed to the identity bound to the TCP connection they arrived
//! on at handshake time; nothing in the payload can change that.

use super::ClusterReport;
use crate::{Envelope, NetStats, Node, NodeId, Outbox};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Lock a mutex, tolerating poisoning (a panicked node thread already
/// aborts the run via `join`; the lock data itself is never left
/// inconsistent mid-operation).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Mesh-setup and per-read deadline: generous enough for slow CI machines,
/// short enough that a lost peer turns into a visible panic instead of a
/// silent hang.
const IO_DEADLINE: Duration = Duration::from_secs(60);

const TAG_MSG: u8 = 0;
const TAG_MARKER: u8 = 1;

/// A frame received from a peer (identity taken from the connection).
#[derive(Debug)]
struct InFrame {
    from: NodeId,
    tag: u8,
    round: u32,
    payload: Vec<u8>,
}

fn write_frame(stream: &mut TcpStream, tag: u8, round: u32, payload: &[u8]) -> std::io::Result<()> {
    let len = 1 + 4 + payload.len();
    stream.write_all(&(len as u32).to_be_bytes())?;
    stream.write_all(&[tag])?;
    stream.write_all(&round.to_be_bytes())?;
    stream.write_all(payload)?;
    Ok(())
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<(u8, u32, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len < 5 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too short",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let tag = body[0];
    let round = u32::from_be_bytes([body[1], body[2], body[3], body[4]]);
    Ok((tag, round, body[5..].to_vec()))
}

/// Full-mesh TCP cluster running node automata for a fixed number of rounds.
///
/// Unlike the simulator, the TCP transport cannot observe global quiescence
/// cheaply, so the round count is fixed up front (protocol round counts are
/// known: key distribution takes 3, the chain FD protocol `t + 2`, …).
#[derive(Debug)]
pub struct TcpCluster {
    rounds: u32,
}

impl TcpCluster {
    /// Cluster that runs exactly `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(rounds: u32) -> Self {
        assert!(rounds > 0, "at least one round required");
        TcpCluster { rounds }
    }

    /// Run the automata over localhost TCP.
    ///
    /// # Panics
    ///
    /// Panics on socket errors (this transport is a test/bench harness, not
    /// a hardened server) and on node id/index mismatches.
    pub fn run(&self, nodes: Vec<Box<dyn Node>>) -> ClusterReport {
        let n = nodes.len();
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.id(), NodeId(i as u16), "node id/index mismatch");
        }
        if n == 1 {
            return self.run_single(nodes);
        }

        // Bind all listeners first so every address is known before any
        // connection attempt.
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind listener"))
            .collect();
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("local addr"))
            .collect();
        let addrs = Arc::new(addrs);

        let rounds = self.rounds;
        let mut handles = Vec::with_capacity(n);
        for (i, node) in nodes.into_iter().enumerate() {
            let listener = listeners[i].try_clone().expect("clone listener");
            let addrs = Arc::clone(&addrs);
            handles.push(thread::spawn(move || {
                run_node(node, i as u16, listener, &addrs, rounds)
            }));
        }

        let mut results: Vec<(Box<dyn Node>, NetStats)> = handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();

        let mut stats = NetStats::new(n);
        stats.rounds = rounds;
        for (node, local) in &results {
            let id = node.id();
            for (r, count) in local.per_round.iter().enumerate() {
                if stats.per_round.len() <= r {
                    stats.per_round.resize(r + 1, 0);
                }
                stats.per_round[r] += count;
            }
            stats.messages_total += local.messages_total;
            stats.bytes_total += local.bytes_total;
            stats.dropped_invalid += local.dropped_invalid;
            stats.sent_by[id.index()] = local.messages_total;
        }

        results.sort_by_key(|(node, _)| node.id());
        ClusterReport {
            nodes: results.into_iter().map(|(node, _)| node).collect(),
            stats,
            rounds,
        }
    }

    /// Degenerate single-node "cluster" (no sockets needed).
    fn run_single(&self, mut nodes: Vec<Box<dyn Node>>) -> ClusterReport {
        let mut node = nodes.pop().expect("one node");
        let mut stats = NetStats::new(1);
        for round in 0..self.rounds {
            let mut out = Outbox::new();
            node.on_round(round, &[], &mut out);
            stats.dropped_invalid += out.into_messages().len();
        }
        stats.rounds = self.rounds;
        ClusterReport {
            nodes: vec![node],
            stats,
            rounds: self.rounds,
        }
    }
}

/// Per-node main loop: mesh setup, reader threads, round loop.
fn run_node(
    mut node: Box<dyn Node>,
    me: u16,
    listener: TcpListener,
    addrs: &[SocketAddr],
    rounds: u32,
) -> (Box<dyn Node>, NetStats) {
    let n = addrs.len();
    let me_id = NodeId(me);

    // Establish the mesh: accept from lower ids, connect to higher ids.
    // Handshake: initiator sends its id as 2 bytes.
    let streams: Arc<Mutex<HashMap<NodeId, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut accept_count = me as usize; // peers with smaller id connect to us

    let (frame_tx, frame_rx) = mpsc::channel::<InFrame>();

    // Connect outward (with a deadline so a dead peer cannot hang the
    // whole cluster).
    for (peer, addr) in addrs.iter().enumerate().skip(me as usize + 1) {
        let stream = TcpStream::connect_timeout(addr, IO_DEADLINE).expect("connect peer");
        let mut s = stream.try_clone().expect("clone stream");
        s.write_all(&me.to_be_bytes()).expect("handshake");
        lock(&streams).insert(NodeId(peer as u16), stream);
    }
    // Accept inward, bounded by the same deadline.
    listener.set_nonblocking(true).expect("nonblocking accept");
    let deadline = Instant::now() + IO_DEADLINE;
    while accept_count > 0 {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false).expect("blocking stream");
                stream
                    .set_read_timeout(Some(IO_DEADLINE))
                    .expect("read timeout");
                let mut id_buf = [0u8; 2];
                stream.read_exact(&mut id_buf).expect("handshake id");
                let peer = NodeId(u16::from_be_bytes(id_buf));
                assert!(peer.0 < me, "unexpected handshake from {peer}");
                lock(&streams).insert(peer, stream);
                accept_count -= 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                assert!(
                    Instant::now() < deadline,
                    "P{me}: peers failed to connect within {IO_DEADLINE:?}"
                );
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("accept peer: {e}"),
        }
    }
    // Reads during the run are bounded too: a vanished peer surfaces as a
    // reader-thread exit, and a main loop stuck waiting for its marker
    // panics on the closed channel instead of hanging.
    for stream in lock(&streams).values() {
        stream
            .set_read_timeout(Some(IO_DEADLINE))
            .expect("read timeout");
    }

    // One reader thread per peer; the *connection* determines `from` (N2).
    let mut reader_handles = Vec::new();
    for (peer, stream) in lock(&streams).iter() {
        let mut stream = stream.try_clone().expect("clone for reader");
        let tx = frame_tx.clone();
        let peer = *peer;
        reader_handles.push(thread::spawn(move || {
            #[allow(clippy::while_let_loop)]
            loop {
                match read_frame(&mut stream) {
                    Ok((tag, round, payload)) => {
                        if tx
                            .send(InFrame {
                                from: peer,
                                tag,
                                round,
                                payload,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    Err(_) => break, // peer closed
                }
            }
        }));
    }
    drop(frame_tx);

    let mut stats = NetStats::new(n);
    // Messages buffered per round: round -> Vec<Envelope>.
    let mut buffered: HashMap<u32, Vec<Envelope>> = HashMap::new();
    // Markers received per round: round -> count.
    let mut markers: HashMap<u32, usize> = HashMap::new();

    for round in 0..rounds {
        // Wait for every peer's marker for the previous round.
        if round > 0 {
            let prev = round - 1;
            while markers.get(&prev).copied().unwrap_or(0) < n - 1 {
                let frame = frame_rx.recv().expect("mesh alive while waiting");
                ingest(frame, &mut buffered, &mut markers);
            }
        }
        // Drain anything already queued without blocking.
        while let Ok(frame) = frame_rx.try_recv() {
            ingest(frame, &mut buffered, &mut markers);
        }

        let inbox = if round > 0 {
            let mut msgs = buffered.remove(&(round - 1)).unwrap_or_default();
            // Deterministic order: by sender id, then arrival order.
            msgs.sort_by_key(|e| e.from);
            msgs
        } else {
            Vec::new()
        };

        let mut out = Outbox::new();
        node.on_round(round, &inbox, &mut out);

        for (to, payload) in out.into_messages() {
            if to.index() >= n || to == me_id {
                stats.dropped_invalid += 1;
                continue;
            }
            let env = Envelope {
                from: me_id,
                to,
                round,
                payload,
            };
            stats.record_send(me_id, round, env.wire_len());
            let mut guard = lock(&streams);
            let stream = guard.get_mut(&to).expect("stream for peer");
            write_frame(stream, TAG_MSG, round, &env.payload).expect("send frame");
        }
        // Round marker to everyone.
        let mut guard = lock(&streams);
        for (_, stream) in guard.iter_mut() {
            write_frame(stream, TAG_MARKER, round, &[]).expect("send marker");
        }
    }

    // Close the mesh half-duplex: `shutdown(Write)` sends FIN (the socket
    // is shared with reader-thread clones, so a plain drop would not), and
    // every peer's reader wakes with EOF once all its peers have finished.
    // The read half stays open so peers still flushing their final-round
    // markers never see a broken pipe.
    for (_, stream) in lock(&streams).drain() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    drop(frame_rx);
    for h in reader_handles {
        let _ = h.join();
    }
    stats.rounds = rounds;
    (node, stats)
}

fn ingest(
    frame: InFrame,
    buffered: &mut HashMap<u32, Vec<Envelope>>,
    markers: &mut HashMap<u32, usize>,
) {
    match frame.tag {
        TAG_MSG => buffered.entry(frame.round).or_default().push(Envelope {
            from: frame.from,
            to: NodeId(u16::MAX), // implicit: this node
            round: frame.round,
            payload: frame.payload.into(),
        }),
        TAG_MARKER => *markers.entry(frame.round).or_default() += 1,
        other => {
            // Unknown control tag: ignore (future extension space).
            let _ = other;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    struct Counter {
        id: NodeId,
        n: usize,
        got: usize,
        senders_ok: bool,
    }

    impl Node for Counter {
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
            if round == 0 {
                out.broadcast(self.n, self.id, [self.id.0 as u8]);
            }
            for env in inbox {
                self.got += 1;
                // payload claims a sender; N2 stamp must agree.
                self.senders_ok &= env.from.0 as u8 == env.payload[0];
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    fn cluster_nodes(n: usize) -> Vec<Box<dyn Node>> {
        (0..n)
            .map(|i| {
                Box::new(Counter {
                    id: NodeId(i as u16),
                    n,
                    got: 0,
                    senders_ok: true,
                }) as Box<dyn Node>
            })
            .collect()
    }

    #[test]
    fn mesh_exchange_over_tcp() {
        let n = 5;
        let report = TcpCluster::new(2).run(cluster_nodes(n));
        assert_eq!(report.stats.messages_total, n * (n - 1));
        for node in &report.nodes {
            let c = node.as_any().downcast_ref::<Counter>().unwrap();
            assert_eq!(c.got, n - 1);
            assert!(c.senders_ok, "N2 violated");
        }
    }

    #[test]
    fn single_node_degenerate() {
        let report = TcpCluster::new(3).run(cluster_nodes(1));
        assert_eq!(report.rounds, 3);
        assert_eq!(report.stats.messages_total, 0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = TcpCluster::new(0);
    }
}
