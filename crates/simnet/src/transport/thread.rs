//! Lock-step thread transport.
//!
//! Each node automaton runs on its own OS thread; a router thread (the
//! caller) coordinates rounds over bounded std channels. Semantics are
//! identical to [`crate::SyncNetwork`] — this transport exists to prove the
//! automata are `Send` and to measure real parallel execution (experiment
//! F3).

use super::ClusterReport;
use crate::{Envelope, NetStats, Node, NodeId, Outbox, Payload};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread;

enum RoundCmd {
    Run { round: u32, inbox: Vec<Envelope> },
    Stop,
}

struct RoundResult {
    id: NodeId,
    msgs: Vec<(NodeId, Payload)>,
    done: bool,
}

/// One-thread-per-node lock-step cluster.
#[derive(Debug, Default)]
pub struct ThreadCluster {
    max_rounds: u32,
}

impl ThreadCluster {
    /// Cluster that runs at most `max_rounds` rounds (stops earlier when
    /// every node is done and no messages are in flight).
    pub fn new(max_rounds: u32) -> Self {
        ThreadCluster { max_rounds }
    }

    /// Run the automata to completion.
    ///
    /// # Panics
    ///
    /// Panics if node ids do not match their indices, or if a node thread
    /// panics.
    pub fn run(&self, nodes: Vec<Box<dyn Node>>) -> ClusterReport {
        let n = nodes.len();
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.id(), NodeId(i as u16), "node id/index mismatch");
        }

        let (res_tx, res_rx): (SyncSender<RoundResult>, Receiver<RoundResult>) = sync_channel(n);
        let mut cmd_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);

        for mut node in nodes {
            let (cmd_tx, cmd_rx): (SyncSender<RoundCmd>, Receiver<RoundCmd>) = sync_channel(1);
            let res_tx = res_tx.clone();
            cmd_txs.push(cmd_tx);
            handles.push(thread::spawn(move || {
                while let Ok(cmd) = cmd_rx.recv() {
                    match cmd {
                        RoundCmd::Run { round, inbox } => {
                            let mut out = Outbox::new();
                            node.on_round(round, &inbox, &mut out);
                            let result = RoundResult {
                                id: node.id(),
                                msgs: out.into_messages(),
                                done: node.is_done(),
                            };
                            if res_tx.send(result).is_err() {
                                break;
                            }
                        }
                        RoundCmd::Stop => break,
                    }
                }
                node
            }));
        }
        drop(res_tx);

        let mut stats = NetStats::new(n);
        let mut inboxes: Vec<Vec<Envelope>> = (0..n).map(|_| Vec::new()).collect();
        let mut round = 0u32;

        while round < self.max_rounds {
            for (i, tx) in cmd_txs.iter().enumerate() {
                let inbox = std::mem::take(&mut inboxes[i]);
                tx.send(RoundCmd::Run { round, inbox })
                    .expect("node thread alive");
            }
            let mut results: Vec<RoundResult> = (0..n)
                .map(|_| res_rx.recv().expect("node thread alive"))
                .collect();
            // Deterministic ordering regardless of thread scheduling.
            results.sort_by_key(|r| r.id);

            let mut all_done = true;
            let mut any_in_flight = false;
            for result in results {
                all_done &= result.done;
                for (to, payload) in result.msgs {
                    if to.index() >= n {
                        stats.dropped_invalid += 1;
                        continue;
                    }
                    let env = Envelope {
                        from: result.id,
                        to,
                        round,
                        payload,
                    };
                    stats.record_send(result.id, round, env.wire_len());
                    inboxes[to.index()].push(env);
                    any_in_flight = true;
                }
            }
            round += 1;
            stats.rounds = round;
            if all_done && !any_in_flight {
                break;
            }
        }

        for tx in &cmd_txs {
            let _ = tx.send(RoundCmd::Stop);
        }
        let nodes: Vec<Box<dyn Node>> = handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();

        ClusterReport {
            nodes,
            stats,
            rounds: round,
            errors: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    struct Counter {
        id: NodeId,
        n: usize,
        got: usize,
    }

    impl Node for Counter {
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
            if round == 0 {
                out.broadcast(self.n, self.id, [7]);
            }
            self.got += inbox.len();
        }
        fn is_done(&self) -> bool {
            self.got + 1 >= self.n
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    #[test]
    fn matches_simulator_semantics() {
        let n = 6;
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                Box::new(Counter {
                    id: NodeId(i as u16),
                    n,
                    got: 0,
                }) as Box<dyn Node>
            })
            .collect();
        let report = ThreadCluster::new(10).run(nodes);
        assert_eq!(report.stats.messages_total, n * (n - 1));
        assert_eq!(report.rounds, 2);
        for node in &report.nodes {
            let c = node.as_any().downcast_ref::<Counter>().unwrap();
            assert_eq!(c.got, n - 1);
        }
    }

    #[test]
    fn nodes_returned_in_id_order() {
        let n = 4;
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                Box::new(Counter {
                    id: NodeId(i as u16),
                    n,
                    got: 0,
                }) as Box<dyn Node>
            })
            .collect();
        let report = ThreadCluster::new(5).run(nodes);
        for (i, node) in report.nodes.iter().enumerate() {
            assert_eq!(node.id(), NodeId(i as u16));
        }
    }

    #[test]
    fn respects_max_rounds() {
        struct Forever {
            id: NodeId,
        }
        impl Node for Forever {
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_round(&mut self, _r: u32, _i: &[Envelope], out: &mut Outbox) {
                out.send(self.id, vec![1]); // self-loop keeps it alive
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        let report = ThreadCluster::new(4).run(vec![Box::new(Forever { id: NodeId(0) })]);
        assert_eq!(report.rounds, 4);
        assert_eq!(report.stats.messages_total, 4);
    }
}
