//! Deterministic fault injection and retry/backoff for the deployment
//! transports.
//!
//! The chaos layer turns the multi-process cluster into the same kind of
//! assertable object the simulated engines already are: every injected
//! fault — a refused connect, a handshake reset, a delayed accept, a
//! partial-write stall, a process kill at a named phase — is drawn from a
//! [`ChaosSpec`] by a **stateless seeded hash** over `(seed, node,
//! incarnation, site, key, attempt)`. Nothing depends on wall-clock
//! timing or arrival order, so the same seed replays the same injection
//! trace byte for byte, and a recovered run's report is byte-identical to
//! the fault-free one.
//!
//! Recovery has two tiers, mirroring the paper's fault taxonomy:
//!
//! * **Transient transport faults** (refuse/reset/delay/stall) are healed
//!   *inside* a worker by [`RetryPolicy`] — capped exponential backoff
//!   with seeded jitter around every connect/handshake and registry call.
//!   An exhausted budget surfaces as the typed
//!   [`TransportError::Exhausted`], never
//!   a hang.
//! * **Process kills** ([`ChaosPhase`]-scoped) end the worker with
//!   [`TransportError::Killed`]; the
//!   `lafd cluster` supervisor restarts the run under an incremented
//!   incarnation number (fencing stale sessions at the registry) up to
//!   `--max-restarts`, and degrades to crash-adversary semantics when a
//!   node stays dead — parity with the in-process `silent:I` scripted
//!   adversary.
//!
//! Kill rules fire while `incarnation < times`, so a transient kill
//! (`times = 1`) hits the first incarnation only and the restarted run is
//! clean, while a persistent kill (`xinf`) models a machine that never
//! comes back.

use super::TransportError;
use crate::NodeId;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Worker exit code for a chaos-injected kill (the supervisor counts it
/// against the victim's restart budget).
pub const CHAOS_KILL_EXIT: u8 = 46;

/// Worker exit code for a collateral failure — a peer vanished, a
/// deadline or retry budget expired, a barrier broke. The supervisor
/// restarts the generation without blaming this worker.
pub const COLLATERAL_EXIT: u8 = 45;

// ---------------------------------------------------------------------
// Seeded decisions
// ---------------------------------------------------------------------

/// SplitMix-style avalanche — the same stateless idiom the event engine's
/// [`crate::event`] latency models use for per-message randomness.
fn mix(parts: &[u64]) -> u64 {
    let mut z = 0x43_48_41_4F_53u64; // "CHAOS" salt
    for &p in parts {
        z ^= p;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a over the site label keeps distinct call sites independent.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// ChaosSpec
// ---------------------------------------------------------------------

/// A phase a kill rule can target, mirroring the worker lifecycle:
/// key distribution, a specific protocol round, or teardown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPhase {
    /// Right before the key-distribution mesh phase.
    Keydist,
    /// Entering protocol round `k` (before the round executes — nothing
    /// of round `k` reaches the wire).
    Round(u32),
    /// After the protocol phase, before the teardown deposit.
    Teardown,
}

impl ChaosPhase {
    /// Stable label used in specs and traces.
    pub fn label(&self) -> String {
        match self {
            ChaosPhase::Keydist => "keydist".to_string(),
            ChaosPhase::Round(k) => format!("round:{k}"),
            ChaosPhase::Teardown => "teardown".to_string(),
        }
    }

    /// Parse a phase label (`keydist`, `round:K`, `teardown`).
    pub fn parse(text: &str) -> Result<ChaosPhase, String> {
        match text {
            "keydist" => Ok(ChaosPhase::Keydist),
            "teardown" => Ok(ChaosPhase::Teardown),
            other => match other.strip_prefix("round:") {
                Some(k) => k
                    .parse()
                    .map(ChaosPhase::Round)
                    .map_err(|e| format!("chaos phase {other:?}: {e}")),
                None => Err(format!(
                    "chaos phase {other:?} (expected keydist, round:K, or teardown)"
                )),
            },
        }
    }
}

/// One kill rule: node `node` dies at `phase` while `incarnation <
/// times`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillRule {
    /// The victim slot.
    pub node: usize,
    /// Where in the lifecycle the process dies.
    pub phase: ChaosPhase,
    /// How many incarnations the rule fires for (`u64::MAX` = every
    /// incarnation — a machine that never comes back).
    pub times: u64,
}

/// A declarative, seeded fault-injection campaign. Parsed from the
/// `--chaos` CLI syntax: semicolon-separated clauses,
///
/// ```text
/// seed=7;kill=2@round:1;kill=0@keydist x inf;connect=30;reset=20;accept-delay=50:5;stall=25:2
/// ```
///
/// * `seed=S` — determinism seed (default 0).
/// * `kill=NODE@PHASE[xTIMES]` — repeatable; `TIMES` defaults to 1,
///   `xinf` fires every incarnation.
/// * `connect=PCT` — percent of connect attempts refused.
/// * `reset=PCT` — percent of handshakes reset after connecting.
/// * `accept-delay=PCT:MS` — percent of accepted handshakes held `MS`
///   milliseconds.
/// * `stall=PCT:MS` — percent of outgoing frames written halfway, then
///   stalled `MS` milliseconds before the rest follows.
///
/// Percentages are integers (0–100) so the spec stays `Eq` and the wire
/// form round-trips exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosSpec {
    /// Determinism seed: the entire injection trace is a pure function of
    /// `(seed, node, incarnation)`.
    pub seed: u64,
    /// Process-kill rules.
    pub kills: Vec<KillRule>,
    /// Percent of connect attempts refused before dialing.
    pub connect_refuse_pct: u8,
    /// Percent of handshakes reset right after the TCP connect.
    pub reset_pct: u8,
    /// `(percent, millis)`: delayed accepts.
    pub accept_delay: Option<(u8, u64)>,
    /// `(percent, millis)`: partial-write stalls.
    pub stall: Option<(u8, u64)>,
}

fn parse_pct(v: &str, what: &str) -> Result<u8, String> {
    let pct: u8 = v.parse().map_err(|e| format!("chaos {what}: {e}"))?;
    if pct > 100 {
        return Err(format!("chaos {what}: {pct} is not a percentage"));
    }
    Ok(pct)
}

fn parse_pct_ms(v: &str, what: &str) -> Result<(u8, u64), String> {
    let (pct, ms) = v
        .split_once(':')
        .ok_or_else(|| format!("chaos {what}: expected PCT:MS, got {v:?}"))?;
    Ok((
        parse_pct(pct, what)?,
        ms.parse()
            .map_err(|e| format!("chaos {what} millis: {e}"))?,
    ))
}

impl ChaosSpec {
    /// Parse the `--chaos` clause syntax (see the type docs).
    pub fn parse(text: &str) -> Result<ChaosSpec, String> {
        let mut spec = ChaosSpec::default();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("chaos clause {clause:?}: expected key=value"))?;
            match key.trim() {
                "seed" => {
                    spec.seed = value.parse().map_err(|e| format!("chaos seed: {e}"))?;
                }
                "kill" => {
                    let (node_phase, times) = match value.split_once('x') {
                        Some((head, "inf")) => (head.trim(), u64::MAX),
                        Some((head, times)) => (
                            head.trim(),
                            times
                                .trim()
                                .parse()
                                .map_err(|e| format!("chaos kill repeat: {e}"))?,
                        ),
                        None => (value, 1),
                    };
                    let (node, phase) = node_phase
                        .split_once('@')
                        .ok_or_else(|| format!("chaos kill {value:?}: expected NODE@PHASE"))?;
                    spec.kills.push(KillRule {
                        node: node
                            .trim()
                            .parse()
                            .map_err(|e| format!("chaos kill node: {e}"))?,
                        phase: ChaosPhase::parse(phase.trim())?,
                        times,
                    });
                }
                "connect" => spec.connect_refuse_pct = parse_pct(value, "connect")?,
                "reset" => spec.reset_pct = parse_pct(value, "reset")?,
                "accept-delay" => spec.accept_delay = Some(parse_pct_ms(value, "accept-delay")?),
                "stall" => spec.stall = Some(parse_pct_ms(value, "stall")?),
                other => return Err(format!("unknown chaos clause {other:?}")),
            }
        }
        Ok(spec)
    }

    /// The canonical clause form ([`ChaosSpec::parse`] is its inverse).
    pub fn to_spec_string(&self) -> String {
        let mut clauses = vec![format!("seed={}", self.seed)];
        for kill in &self.kills {
            let times = match kill.times {
                1 => String::new(),
                u64::MAX => "xinf".to_string(),
                times => format!("x{times}"),
            };
            clauses.push(format!("kill={}@{}{times}", kill.node, kill.phase.label()));
        }
        if self.connect_refuse_pct > 0 {
            clauses.push(format!("connect={}", self.connect_refuse_pct));
        }
        if self.reset_pct > 0 {
            clauses.push(format!("reset={}", self.reset_pct));
        }
        if let Some((pct, ms)) = self.accept_delay {
            clauses.push(format!("accept-delay={pct}:{ms}"));
        }
        if let Some((pct, ms)) = self.stall {
            clauses.push(format!("stall={pct}:{ms}"));
        }
        clauses.join(";")
    }

    /// A copy with every kill rule for `dead` nodes removed — the
    /// supervisor uses this for the degraded generation (the dead slots
    /// run the crash adversary; killing them again would be a loop).
    #[must_use]
    pub fn without_kills_for(&self, dead: &[usize]) -> ChaosSpec {
        let mut spec = self.clone();
        spec.kills.retain(|kill| !dead.contains(&kill.node));
        spec
    }
}

// ---------------------------------------------------------------------
// ChaosInjector
// ---------------------------------------------------------------------

/// The per-process face of a [`ChaosSpec`]: every decision is a pure
/// function of `(spec.seed, node, incarnation, site, key, attempt)`, and
/// every *fired* injection is recorded in a shared trace. Clone-cheap —
/// clones share the trace.
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    spec: ChaosSpec,
    node: usize,
    incarnation: u64,
    trace: Arc<Mutex<Vec<String>>>,
}

impl ChaosInjector {
    /// Build the injector for one `(node, incarnation)` of a campaign.
    pub fn new(spec: ChaosSpec, node: usize, incarnation: u64) -> ChaosInjector {
        ChaosInjector {
            spec,
            node,
            incarnation,
            trace: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The spec the injector draws from.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    fn draw(&self, site: &str, key: u64, attempt: u64) -> u64 {
        mix(&[
            self.spec.seed,
            self.node as u64,
            self.incarnation,
            site_hash(site),
            key,
            attempt,
        ])
    }

    fn fire(&self, event: String) {
        self.trace.lock().expect("chaos trace lock").push(event);
    }

    /// Does a kill rule fire at `phase` for this `(node, incarnation)`?
    /// Records the kill in the trace when it does.
    pub fn should_kill(&self, phase: ChaosPhase) -> bool {
        let fires = self
            .spec
            .kills
            .iter()
            .any(|k| k.node == self.node && k.phase == phase && self.incarnation < k.times);
        if fires {
            self.fire(format!("kill phase={}", phase.label()));
        }
        fires
    }

    /// Refuse connect attempt `attempt` at `site` (before dialing)?
    pub fn refuse_connect(&self, site: &str, attempt: u64) -> bool {
        let fires = self.spec.connect_refuse_pct > 0
            && self.draw("connect", site_hash(site), attempt) % 100
                < u64::from(self.spec.connect_refuse_pct);
        if fires {
            self.fire(format!("refuse-connect site={site} attempt={attempt}"));
        }
        fires
    }

    /// Reset the handshake to `peer` on attempt `attempt` (drop the
    /// connection right after the TCP connect, before the id byte)?
    pub fn reset_handshake(&self, peer: usize, attempt: u64) -> bool {
        let fires = self.spec.reset_pct > 0
            && self.draw("reset", peer as u64, attempt) % 100 < u64::from(self.spec.reset_pct);
        if fires {
            self.fire(format!("reset-handshake peer={peer} attempt={attempt}"));
        }
        fires
    }

    /// Hold the accepted handshake from `peer` before meshing it in?
    pub fn accept_delay(&self, peer: usize) -> Option<Duration> {
        let (pct, ms) = self.spec.accept_delay?;
        let fires = pct > 0 && self.draw("accept", peer as u64, 0) % 100 < u64::from(pct);
        if fires {
            self.fire(format!("accept-delay peer={peer} ms={ms}"));
            return Some(Duration::from_millis(ms));
        }
        None
    }

    /// Stall the `idx`-th frame to `peer` in `round` halfway through the
    /// write?
    pub fn stall(&self, peer: usize, round: u32, idx: u64) -> Option<Duration> {
        let (pct, ms) = self.spec.stall?;
        let key = (peer as u64) << 32 | u64::from(round);
        let fires = pct > 0 && self.draw("stall", key, idx) % 100 < u64::from(pct);
        if fires {
            self.fire(format!("stall peer={peer} round={round} idx={idx} ms={ms}"));
            return Some(Duration::from_millis(ms));
        }
        None
    }

    /// Every fired injection so far, in canonical (sorted) order — the
    /// replayable trace. Two runs of the same `(seed, node, incarnation)`
    /// produce identical traces.
    pub fn trace(&self) -> Vec<String> {
        let mut trace = self.trace.lock().expect("chaos trace lock").clone();
        trace.sort();
        trace
    }

    /// Number of injections fired so far.
    pub fn injected(&self) -> u64 {
        self.trace.lock().expect("chaos trace lock").len() as u64
    }

    /// The `(node, incarnation)` the injector draws for.
    pub fn identity(&self) -> (usize, u64) {
        (self.node, self.incarnation)
    }
}

// ---------------------------------------------------------------------
// Retry with capped exponential backoff + seeded jitter
// ---------------------------------------------------------------------

/// Capped exponential backoff: attempt `k` (0-based) sleeps
/// `min(cap, base · 2^k)`, scaled by a seeded jitter factor in
/// `[0.5, 1.0)` so colliding workers spread out deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts; `1` disables retry).
    pub max_attempts: u32,
    /// Backoff base.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(40),
            cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (attempt once, fail loud).
    pub fn once() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before retrying after failed attempt `attempt`
    /// (0-based), jittered by `seed`.
    pub fn backoff(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(2u32.saturating_pow(attempt))
            .min(self.cap);
        // Jitter factor in [1/2, 1): keeps backoff monotone in
        // expectation while decorrelating concurrent retriers.
        let jitter = mix(&[seed, u64::from(attempt), 0x4A49_5454]) % 512;
        exp.mul_f64(0.5 + (jitter as f64) / 1024.0)
    }
}

/// Shared retry context for one worker: the policy, the jitter seed, and
/// a counter the worker surfaces through its summary.
#[derive(Debug, Clone)]
pub struct RetryCtx {
    /// The backoff policy.
    pub policy: RetryPolicy,
    /// Jitter seed (derive from the run seed + node for decorrelation).
    pub jitter_seed: u64,
    counter: Arc<std::sync::atomic::AtomicU64>,
}

impl RetryCtx {
    /// A context with the given policy and jitter seed.
    pub fn new(policy: RetryPolicy, jitter_seed: u64) -> RetryCtx {
        RetryCtx {
            policy,
            jitter_seed,
            counter: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// How many retries (attempts after the first) have been spent.
    pub fn retries(&self) -> u64 {
        self.counter.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn record_retry(&self) {
        self.counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Default for RetryCtx {
    fn default() -> Self {
        RetryCtx::new(RetryPolicy::default(), 0)
    }
}

/// Run `op` under the retry policy: transient failures (as judged by
/// `retryable`) are retried with capped, jittered backoff; success or a
/// non-retryable failure returns immediately; an exhausted budget returns
/// the typed [`TransportError::Exhausted`] carrying the final error. With
/// retry disabled ([`RetryPolicy::once`]) the single attempt's error
/// passes through untouched — no `Exhausted` wrapper around a budget that
/// never existed.
///
/// `op` receives the 0-based attempt number (chaos injection keys off
/// it).
pub fn with_retry<T>(
    node: NodeId,
    context: &str,
    ctx: &RetryCtx,
    retryable: impl Fn(&TransportError) -> bool,
    mut op: impl FnMut(u64) -> Result<T, TransportError>,
) -> Result<T, TransportError> {
    let attempts = ctx.policy.max_attempts.max(1);
    let mut last: Option<TransportError> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(ctx.policy.backoff(attempt - 1, ctx.jitter_seed));
            ctx.record_retry();
        }
        match op(u64::from(attempt)) {
            Ok(value) => return Ok(value),
            Err(e) if retryable(&e) && attempt + 1 < attempts => last = Some(e),
            Err(e) if retryable(&e) && attempts > 1 => {
                return Err(TransportError::Exhausted {
                    node,
                    context: context.to_string(),
                    attempts,
                    last: e.to_string(),
                })
            }
            Err(e) => return Err(e),
        }
    }
    // Unreachable: the loop always returns. Kept for totality.
    Err(TransportError::Exhausted {
        node,
        context: context.to_string(),
        attempts,
        last: last.map(|e| e.to_string()).unwrap_or_default(),
    })
}

/// The default judgement of what is worth retrying: connection-level
/// failures that a healthy peer heals (refused/reset connects, broken
/// handshakes, plain socket errors). Deadlines, kills, protocol
/// violations, and already-exhausted budgets are final.
pub fn transient(error: &TransportError) -> bool {
    matches!(
        error,
        TransportError::Connect { .. }
            | TransportError::Handshake { .. }
            | TransportError::Io { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_spec_round_trips_through_the_clause_syntax() {
        let text = "seed=7;kill=2@round:1;kill=0@keydistxinf;kill=3@teardownx2;connect=30;reset=20;accept-delay=50:5;stall=25:2";
        let spec = ChaosSpec::parse(text).expect("parse");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.kills.len(), 3);
        assert_eq!(
            spec.kills[0],
            KillRule {
                node: 2,
                phase: ChaosPhase::Round(1),
                times: 1
            }
        );
        assert_eq!(spec.kills[1].times, u64::MAX);
        assert_eq!(spec.kills[2].times, 2);
        assert_eq!(spec.connect_refuse_pct, 30);
        assert_eq!(spec.stall, Some((25, 2)));
        let reparsed = ChaosSpec::parse(&spec.to_spec_string()).expect("reparse");
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn chaos_spec_rejects_malformed_clauses() {
        for bad in [
            "seed",
            "kill=2",
            "kill=2@round:x",
            "connect=101",
            "stall=50",
            "frobnicate=1",
        ] {
            assert!(ChaosSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn injection_decisions_are_deterministic_and_trace_identically() {
        let spec = ChaosSpec::parse("seed=11;connect=40;reset=30;stall=50:1;accept-delay=60:1")
            .expect("parse");
        let run = |spec: &ChaosSpec| {
            let inj = ChaosInjector::new(spec.clone(), 3, 0);
            for attempt in 0..6 {
                let _ = inj.refuse_connect("peer2", attempt);
                let _ = inj.reset_handshake(2, attempt);
            }
            for peer in 0..4 {
                let _ = inj.accept_delay(peer);
                for idx in 0..3 {
                    let _ = inj.stall(peer, 1, idx);
                }
            }
            inj.trace()
        };
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a, b, "same seed must fire the same injections");
        assert!(!a.is_empty(), "spec with high percentages must fire");
        let other = ChaosSpec {
            seed: 12,
            ..spec.clone()
        };
        assert_ne!(run(&other), a, "a different seed must diverge");
    }

    #[test]
    fn kill_rules_respect_incarnation_budgets() {
        let spec =
            ChaosSpec::parse("kill=1@round:2;kill=2@keydistx3;kill=3@teardownxinf").expect("parse");
        // times = 1: first incarnation only.
        assert!(ChaosInjector::new(spec.clone(), 1, 0).should_kill(ChaosPhase::Round(2)));
        assert!(!ChaosInjector::new(spec.clone(), 1, 1).should_kill(ChaosPhase::Round(2)));
        // wrong phase or node: never.
        assert!(!ChaosInjector::new(spec.clone(), 1, 0).should_kill(ChaosPhase::Round(1)));
        assert!(!ChaosInjector::new(spec.clone(), 0, 0).should_kill(ChaosPhase::Round(2)));
        // times = 3: incarnations 0..3.
        assert!(ChaosInjector::new(spec.clone(), 2, 2).should_kill(ChaosPhase::Keydist));
        assert!(!ChaosInjector::new(spec.clone(), 2, 3).should_kill(ChaosPhase::Keydist));
        // xinf: forever.
        assert!(ChaosInjector::new(spec.clone(), 3, 900).should_kill(ChaosPhase::Teardown));
        // stripping for degraded generations removes the rule.
        let stripped = spec.without_kills_for(&[3]);
        assert!(!ChaosInjector::new(stripped, 3, 900).should_kill(ChaosPhase::Teardown));
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(40),
            cap: Duration::from_millis(500),
        };
        for attempt in 0..8 {
            let full = Duration::from_millis(40)
                .saturating_mul(2u32.pow(attempt))
                .min(Duration::from_millis(500));
            let b = policy.backoff(attempt, 9);
            assert!(
                b >= full.mul_f64(0.5) && b < full,
                "attempt {attempt}: {b:?}"
            );
            assert_eq!(b, policy.backoff(attempt, 9), "jitter must be seeded");
        }
    }

    #[test]
    fn with_retry_recovers_then_exhausts_loudly() {
        let ctx = RetryCtx::new(
            RetryPolicy {
                max_attempts: 4,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
            },
            7,
        );
        let flaky = |fail_until: u64| {
            let ctx = ctx.clone();
            move |attempt: u64| -> Result<u64, TransportError> {
                let _ = &ctx;
                if attempt < fail_until {
                    Err(TransportError::Connect {
                        node: NodeId(0),
                        peer: NodeId(1),
                        error: "synthetic refuse".to_string(),
                    })
                } else {
                    Ok(attempt)
                }
            }
        };
        let ok = with_retry(NodeId(0), "test", &ctx, transient, flaky(2)).expect("recovers");
        assert_eq!(ok, 2);
        assert_eq!(ctx.retries(), 2);

        let err =
            with_retry(NodeId(0), "test", &ctx, transient, flaky(99)).expect_err("must exhaust");
        match err {
            TransportError::Exhausted { attempts, last, .. } => {
                assert_eq!(attempts, 4);
                assert!(last.contains("refuse"), "{last}");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }

        // Non-retryable errors pass through untouched.
        let fatal = with_retry(NodeId(0), "test", &ctx, transient, |_| {
            Err::<(), _>(TransportError::Protocol {
                node: NodeId(0),
                detail: "bad frame".to_string(),
            })
        })
        .expect_err("fatal");
        assert!(matches!(fatal, TransportError::Protocol { .. }));
    }
}
