//! Non-blocking readiness-loop mesh — the deployment transport.
//!
//! Where [`super::tcp`] spends one reader thread per connection, this
//! transport drives *all* of a node's connections from a **single-threaded
//! readiness loop** over nonblocking `TcpStream`s (poll/mio style, no
//! tokio): each sweep attempts partial reads and writes on every peer,
//! parses complete frames out of per-peer read buffers, and flushes
//! per-peer write queues as the kernel accepts bytes. `std` has no
//! portable `poll(2)` wrapper, so an idle sweep parks for 200 µs instead
//! of blocking in the kernel; an epoll/kqueue backend could replace that
//! nap without touching any of the framing or round logic.
//!
//! **Simulator-matching termination.** Round markers carry `(is_done,
//! sent_count)`. After executing round `r`, a node waits for every peer's
//! round-`r` marker; if all `n` nodes reported done and nobody sent a
//! message in round `r`, everyone deterministically stops with `rounds =
//! r + 1` — exactly the early-stop rule of
//! [`crate::SyncNetwork::run_until_done`]. Combined with the simulator's
//! delivery order (sender id, then send order — per-sender TCP FIFO plus a
//! stable sort), a mesh run reproduces the sync engine's `NetStats` and
//! outcomes byte for byte. Unlike [`super::tcp`], messages a node
//! addresses to *itself* are delivered locally (the simulator delivers
//! them too).
//!
//! **Delay shim.** An optional [`DelayShim`] reuses the event engine's
//! [`LatencyModel`]: outgoing frames are held in the write queue until
//! `round_wall · delay_ticks / TICKS_PER_ROUND` of wall time has passed
//! since the round started, so jitter/partial-synchrony models pace real
//! sockets. Because a round marker is queued *behind* the frames of its
//! round (FIFO per peer), marker gating still delivers every message into
//! the next round's inbox: the shim stretches wall time and socket-level
//! interleavings, never the protocol-visible round structure — counters
//! and outcomes stay byte-identical to the synchronous engine.
//!
//! Property N2 holds structurally as everywhere else: frames are
//! attributed to the connection they arrived on.

use super::chaos::{transient, with_retry, ChaosInjector, ChaosPhase, RetryCtx};
use super::{ClusterReport, TransportError};
use crate::event::TICKS_PER_ROUND;
use crate::{Envelope, LatencyModel, NetStats, Node, NodeId, Outbox};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

const TAG_MSG: u8 = 0;
const TAG_MARKER: u8 = 1;

/// How long an idle readiness sweep parks before the next sweep.
const IDLE_NAP: Duration = Duration::from_micros(200);

/// Wall-clock pacing of outgoing frames by a virtual-latency model: a
/// frame sent in round `r` from `from` to `to` leaves the write queue
/// `round_wall · model.delay(from, to, r) / TICKS_PER_ROUND` after the
/// round started. The synchronous model paces every link by exactly
/// `round_wall`; jitter/psync models spread links apart.
pub struct DelayShim {
    /// The virtual latency model deciding per-link flight ticks.
    pub model: Box<dyn LatencyModel>,
    /// Wall-clock duration of one virtual round ([`TICKS_PER_ROUND`]
    /// ticks).
    pub round_wall: Duration,
}

impl DelayShim {
    /// Wall-clock hold time for a frame.
    fn hold(&self, from: NodeId, to: NodeId, round: u32) -> Duration {
        let ticks = self.model.delay(from, to, round).max(1);
        let nanos = self.round_wall.as_nanos() * u128::from(ticks) / u128::from(TICKS_PER_ROUND);
        Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }
}

impl core::fmt::Debug for DelayShim {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DelayShim")
            .field("model", &self.model.name())
            .field("round_wall", &self.round_wall)
            .finish()
    }
}

/// An established full mesh for one node: the `n − 1` peer connections,
/// each bound to the peer identity fixed at handshake time (property N2).
#[derive(Debug)]
pub struct MeshPeers {
    me: NodeId,
    n: usize,
    peers: HashMap<NodeId, TcpStream>,
}

impl MeshPeers {
    /// Establish the mesh from a roster: connect to every higher id
    /// (sending our id as a 2-byte handshake), accept every lower id
    /// (reading theirs). `addrs[i]` must be node `i`'s listener address;
    /// `listener` must be the one bound at `addrs[me]`.
    pub fn establish(
        me: NodeId,
        listener: &TcpListener,
        addrs: &[SocketAddr],
        io_deadline: Duration,
    ) -> Result<MeshPeers, TransportError> {
        MeshPeers::establish_with(me, listener, addrs, io_deadline, &RetryCtx::default(), None)
    }

    /// [`MeshPeers::establish`] with an explicit retry context around every
    /// connect + handshake (transient failures back off and retry up to
    /// the policy's budget) and an optional [`ChaosInjector`] whose
    /// refuse/reset/accept-delay rules are exercised at the corresponding
    /// sites. Chaos faults are injected *inside* the retried operation, so
    /// they are healed by the same retry path that heals real ones.
    pub fn establish_with(
        me: NodeId,
        listener: &TcpListener,
        addrs: &[SocketAddr],
        io_deadline: Duration,
        retry: &RetryCtx,
        chaos: Option<&ChaosInjector>,
    ) -> Result<MeshPeers, TransportError> {
        let n = addrs.len();
        let mut peers = HashMap::with_capacity(n.saturating_sub(1));
        for (peer, addr) in addrs.iter().enumerate().skip(me.index() + 1) {
            let peer_id = NodeId(peer as u16);
            let site = format!("mesh connect peer {peer}");
            let stream = with_retry(me, &site, retry, transient, |attempt| {
                if let Some(inj) = chaos {
                    if inj.refuse_connect(&site, attempt) {
                        return Err(TransportError::Connect {
                            node: me,
                            peer: peer_id,
                            error: "chaos: connection refused".to_string(),
                        });
                    }
                }
                let mut stream = TcpStream::connect_timeout(addr, io_deadline).map_err(|e| {
                    TransportError::Connect {
                        node: me,
                        peer: peer_id,
                        error: e.to_string(),
                    }
                })?;
                if let Some(inj) = chaos {
                    if inj.reset_handshake(peer, attempt) {
                        // Connect, then vanish before identifying: the
                        // acceptor sees EOF mid-handshake and must skip
                        // the carcass; we retry with backoff.
                        drop(stream);
                        return Err(TransportError::Handshake {
                            node: me,
                            peer: Some(peer_id),
                            detail: "chaos: connection reset during handshake".to_string(),
                        });
                    }
                }
                stream
                    .write_all(&me.0.to_be_bytes())
                    .map_err(|e| TransportError::Handshake {
                        node: me,
                        peer: Some(peer_id),
                        detail: e.to_string(),
                    })?;
                Ok(stream)
            })?;
            peers.insert(peer_id, stream);
        }
        listener
            .set_nonblocking(true)
            .map_err(|e| TransportError::io(me, "nonblocking accept", &e))?;
        let deadline = Instant::now() + io_deadline;
        let mut expected = me.index();
        while expected > 0 {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| TransportError::io(me, "blocking handshake", &e))?;
                    stream
                        .set_read_timeout(Some(io_deadline))
                        .map_err(|e| TransportError::io(me, "handshake timeout", &e))?;
                    let mut id_buf = [0u8; 2];
                    if stream.read_exact(&mut id_buf).is_err() {
                        // A peer connected and died before identifying
                        // (reset, crash, chaos): drop the carcass and keep
                        // accepting — its owner retries with a fresh
                        // connection.
                        continue;
                    }
                    let peer = NodeId(u16::from_be_bytes(id_buf));
                    if peer >= me || peers.contains_key(&peer) {
                        return Err(TransportError::Handshake {
                            node: me,
                            peer: Some(peer),
                            detail: format!("unexpected handshake from {peer}"),
                        });
                    }
                    if let Some(inj) = chaos {
                        if let Some(hold) = inj.accept_delay(peer.index()) {
                            std::thread::sleep(hold);
                        }
                    }
                    peers.insert(peer, stream);
                    expected -= 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Deadline {
                            node: me,
                            waiting: format!("{expected} peer connection(s)"),
                            after: io_deadline,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(TransportError::io(me, "accept peer", &e)),
            }
        }
        for stream in peers.values() {
            stream
                .set_nonblocking(true)
                .map_err(|e| TransportError::io(me, "nonblocking stream", &e))?;
            let _ = stream.set_nodelay(true);
        }
        Ok(MeshPeers { me, n, peers })
    }

    /// This node's identity.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// System size (peers + self).
    pub fn n(&self) -> usize {
        self.n
    }
}

/// One frame queued for a peer, with the wall instant it may hit the wire
/// and an optional chaos stall: write half the frame, hold the rest for
/// the stall duration (exercising partial-write resumption on the
/// receiver).
struct OutFrame {
    bytes: Vec<u8>,
    due: Instant,
    stall: Option<Duration>,
}

/// Per-peer I/O state of the readiness loop.
struct PeerIo {
    stream: TcpStream,
    /// Unparsed inbound bytes (partial frames).
    rbuf: Vec<u8>,
    /// Frames not yet started (FIFO; head flushes when due).
    outq: VecDeque<OutFrame>,
    /// The frame currently on the wire, partially written.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Chaos stall on the current frame: `(byte limit, resume instant)` —
    /// no byte past `limit` hits the wire before `resume`.
    wstall: Option<(usize, Instant)>,
    /// The read half reached EOF (peer finished or vanished).
    eof: bool,
}

impl PeerIo {
    fn writes_pending(&self) -> bool {
        self.wpos < self.wbuf.len() || !self.outq.is_empty()
    }
}

fn frame_bytes(tag: u8, round: u32, payload: &[u8]) -> Vec<u8> {
    let len = 1 + 4 + payload.len();
    let mut bytes = Vec::with_capacity(4 + len);
    bytes.extend_from_slice(&(len as u32).to_be_bytes());
    bytes.push(tag);
    bytes.extend_from_slice(&round.to_be_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// A parsed inbound frame.
enum InFrame {
    Msg { round: u32, payload: Vec<u8> },
    Marker { round: u32, done: bool, sent: u64 },
}

/// Result of one mesh run (one protocol phase on one node).
pub struct MeshRun {
    /// The automaton, for outcome extraction.
    pub node: Box<dyn Node>,
    /// This node's local statistics (sends only — aggregate across nodes
    /// the way [`ClusterReport`] builders do).
    pub stats: NetStats,
    /// Rounds executed (identical on every node of the mesh by the
    /// deterministic termination rule).
    pub rounds: u32,
}

/// The single-threaded readiness-loop executor for one node of a mesh.
///
/// Construct per phase (the [`DelayShim`] is consumed by the run), then
/// [`run`](NonblockingMesh::run) the node over an established
/// [`MeshPeers`]. The mesh closes its connections at the end of the phase;
/// re-establish for the next phase.
#[derive(Debug)]
pub struct NonblockingMesh {
    rounds_limit: u32,
    io_deadline: Duration,
    shim: Option<DelayShim>,
    chaos: Option<ChaosInjector>,
}

impl NonblockingMesh {
    /// A mesh phase running at most `rounds_limit` rounds (it stops early
    /// by the simulator's rule — see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `rounds_limit == 0`.
    pub fn new(rounds_limit: u32) -> Self {
        assert!(rounds_limit > 0, "at least one round required");
        NonblockingMesh {
            rounds_limit,
            io_deadline: super::tcp::DEFAULT_IO_DEADLINE,
            shim: None,
            chaos: None,
        }
    }

    /// Replace the default 60 s no-progress deadline.
    #[must_use]
    pub fn with_io_deadline(mut self, io_deadline: Duration) -> Self {
        self.io_deadline = io_deadline;
        self
    }

    /// Install a wall-clock delay shim on outgoing frames.
    #[must_use]
    pub fn with_delay_shim(mut self, shim: DelayShim) -> Self {
        self.shim = Some(shim);
        self
    }

    /// Install a chaos injector: `round:k` kill rules fire at the top of
    /// round `k` (the run returns [`TransportError::Killed`] and nothing
    /// of round `k` reaches the wire), and stall rules hold the second
    /// half of selected outgoing frames.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosInjector) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Run the node over the mesh until the termination rule fires or
    /// `rounds_limit` rounds have executed, then close the connections.
    pub fn run(self, mut node: Box<dyn Node>, peers: MeshPeers) -> Result<MeshRun, TransportError> {
        let MeshPeers { me, n, peers } = peers;
        let mut io: HashMap<NodeId, PeerIo> = peers
            .into_iter()
            .map(|(peer, stream)| {
                (
                    peer,
                    PeerIo {
                        stream,
                        rbuf: Vec::new(),
                        outq: VecDeque::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        wstall: None,
                        eof: false,
                    },
                )
            })
            .collect();

        let mut stats = NetStats::new(n);
        // round -> messages delivered in round + 1, in arrival order.
        let mut buffered: HashMap<u32, Vec<Envelope>> = HashMap::new();
        // round -> per-node (done, sent) termination votes.
        let mut markers: HashMap<u32, HashMap<NodeId, (bool, u64)>> = HashMap::new();
        let mut rounds_executed = self.rounds_limit;

        for round in 0..self.rounds_limit {
            if let Some(inj) = &self.chaos {
                if inj.should_kill(ChaosPhase::Round(round)) {
                    // Crash semantics: drop every socket abruptly (no
                    // flush, no FIN handshake) and surface the typed kill.
                    drop(io);
                    return Err(TransportError::Killed {
                        node: me,
                        phase: ChaosPhase::Round(round).label(),
                    });
                }
            }
            let round_start = Instant::now();
            let inbox = if round > 0 {
                let mut msgs = buffered.remove(&(round - 1)).unwrap_or_default();
                // Simulator order: by sender id, then send order (stable).
                msgs.sort_by_key(|e| e.from);
                msgs
            } else {
                Vec::new()
            };

            let mut out = Outbox::new();
            node.on_round(round, &inbox, &mut out);

            let before = stats.messages_total;
            let mut stall_idx: HashMap<NodeId, u64> = HashMap::new();
            for (to, payload) in out.into_messages() {
                if to.index() >= n {
                    stats.dropped_invalid += 1;
                    continue;
                }
                let env = Envelope {
                    from: me,
                    to,
                    round,
                    payload,
                };
                stats.record_send(me, round, env.wire_len());
                if to == me {
                    // The simulator delivers self-addressed messages in
                    // the next round; so do we.
                    buffered.entry(round).or_default().push(env);
                    continue;
                }
                let due = match &self.shim {
                    Some(shim) => round_start + shim.hold(me, to, round),
                    None => round_start,
                };
                let stall = self.chaos.as_ref().and_then(|inj| {
                    let idx = stall_idx.entry(to).or_insert(0);
                    let decision = inj.stall(to.index(), round, *idx);
                    *idx += 1;
                    decision
                });
                let frame = frame_bytes(TAG_MSG, round, &env.payload);
                io.get_mut(&to)
                    .expect("established peer")
                    .outq
                    .push_back(OutFrame {
                        bytes: frame,
                        due,
                        stall,
                    });
            }
            let sent = (stats.messages_total - before) as u64;
            let done = node.is_done();

            // Termination vote to everyone (FIFO keeps it behind this
            // round's frames, so marker gating still implies delivery).
            let mut marker_payload = [0u8; 9];
            marker_payload[0] = u8::from(done);
            marker_payload[1..9].copy_from_slice(&sent.to_be_bytes());
            for peer_io in io.values_mut() {
                peer_io.outq.push_back(OutFrame {
                    bytes: frame_bytes(TAG_MARKER, round, &marker_payload),
                    due: round_start,
                    stall: None,
                });
            }
            markers.entry(round).or_default().insert(me, (done, sent));

            // Pump until every node's round-`round` vote is in.
            let mut last_progress = Instant::now();
            while markers.get(&round).map_or(0, HashMap::len) < n {
                let progress = sweep(me, &mut io, &mut buffered, &mut markers)?;
                if progress {
                    last_progress = Instant::now();
                } else {
                    if let Some(peer) = io.iter().find_map(|(peer, s)| {
                        (s.eof && !markers.get(&round).is_some_and(|m| m.contains_key(peer)))
                            .then_some(*peer)
                    }) {
                        return Err(TransportError::PeerLost {
                            node: me,
                            peer,
                            round,
                        });
                    }
                    if last_progress.elapsed() > self.io_deadline {
                        return Err(TransportError::Deadline {
                            node: me,
                            waiting: format!("round {round} markers"),
                            after: self.io_deadline,
                        });
                    }
                    std::thread::sleep(IDLE_NAP);
                }
            }

            // The simulator's early-stop rule, evaluated on identical data
            // by every node: all done and nothing in flight.
            let votes = &markers[&round];
            let all_done = votes.values().all(|(done, _)| *done);
            let in_flight: u64 = votes.values().map(|(_, sent)| *sent).sum();
            if all_done && in_flight == 0 {
                rounds_executed = round + 1;
                break;
            }
        }

        self.close(me, &mut io, &mut buffered, &mut markers)?;
        stats.rounds = rounds_executed;
        Ok(MeshRun {
            node,
            stats,
            rounds: rounds_executed,
        })
    }

    /// Graceful close: flush every queued frame, send FIN, drain peers to
    /// EOF (best effort — every node has already collected all the data it
    /// needs by the termination rule).
    fn close(
        &self,
        me: NodeId,
        io: &mut HashMap<NodeId, PeerIo>,
        buffered: &mut HashMap<u32, Vec<Envelope>>,
        markers: &mut HashMap<u32, HashMap<NodeId, (bool, u64)>>,
    ) -> Result<(), TransportError> {
        let deadline = Instant::now() + self.io_deadline;
        while io.values().any(PeerIo::writes_pending) {
            let progress = sweep(me, io, buffered, markers)?;
            if !progress {
                if Instant::now() >= deadline {
                    return Err(TransportError::Deadline {
                        node: me,
                        waiting: "final flush".to_string(),
                        after: self.io_deadline,
                    });
                }
                std::thread::sleep(IDLE_NAP);
            }
        }
        for peer_io in io.values() {
            let _ = peer_io.stream.shutdown(std::net::Shutdown::Write);
        }
        while !io.values().all(|s| s.eof) {
            match sweep(me, io, buffered, markers) {
                Ok(true) => {}
                Ok(false) => {
                    if Instant::now() >= deadline {
                        break; // best effort
                    }
                    std::thread::sleep(IDLE_NAP);
                }
                Err(_) => break, // peer dropped first; nothing left to need
            }
        }
        Ok(())
    }
}

/// One readiness sweep over every peer: flush due writes, absorb readable
/// bytes, parse complete frames. Returns whether any byte moved.
fn sweep(
    me: NodeId,
    io: &mut HashMap<NodeId, PeerIo>,
    buffered: &mut HashMap<u32, Vec<Envelope>>,
    markers: &mut HashMap<u32, HashMap<NodeId, (bool, u64)>>,
) -> Result<bool, TransportError> {
    let mut progress = false;
    let now = Instant::now();
    let mut scratch = [0u8; 65536];
    for (&peer, s) in io.iter_mut() {
        // Writes: start the next due frame whenever the wire is caught up.
        loop {
            if s.wpos >= s.wbuf.len() {
                match s.outq.front() {
                    Some(frame) if frame.due <= now => {
                        let frame = s.outq.pop_front().expect("checked front");
                        s.wstall = frame.stall.map(|hold| (frame.bytes.len() / 2, now + hold));
                        s.wbuf = frame.bytes;
                        s.wpos = 0;
                    }
                    _ => break,
                }
            }
            // A stalled frame exposes only its first half until the
            // resume instant passes (partial-write injection).
            let end = match s.wstall {
                Some((limit, resume)) if now < resume => limit.min(s.wbuf.len()),
                Some(_) => {
                    s.wstall = None;
                    s.wbuf.len()
                }
                None => s.wbuf.len(),
            };
            if s.wpos >= end {
                break;
            }
            match s.stream.write(&s.wbuf[s.wpos..end]) {
                Ok(0) => {
                    return Err(TransportError::PeerLost {
                        node: me,
                        peer,
                        round: 0,
                    })
                }
                Ok(k) => {
                    s.wpos += k;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::io(me, format!("send frame to {peer}"), &e)),
            }
        }
        // Reads: absorb whatever the kernel has.
        if !s.eof {
            loop {
                match s.stream.read(&mut scratch) {
                    Ok(0) => {
                        s.eof = true;
                        progress = true;
                        break;
                    }
                    Ok(k) => {
                        s.rbuf.extend_from_slice(&scratch[..k]);
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Reset mid-close or a vanished peer: surfaces as
                        // EOF; the caller decides whether it still needed
                        // this peer.
                        s.eof = true;
                        progress = true;
                        break;
                    }
                }
            }
        }
        // Frames: parse every complete frame out of the read buffer.
        for frame in parse_frames(me, peer, &mut s.rbuf)? {
            match frame {
                InFrame::Msg { round, payload } => {
                    buffered.entry(round).or_default().push(Envelope {
                        from: peer,
                        to: me,
                        round,
                        payload: payload.into(),
                    })
                }
                InFrame::Marker { round, done, sent } => {
                    markers.entry(round).or_default().insert(peer, (done, sent));
                }
            }
        }
    }
    Ok(progress)
}

/// Split complete frames off the front of `rbuf`.
fn parse_frames(
    me: NodeId,
    peer: NodeId,
    rbuf: &mut Vec<u8>,
) -> Result<Vec<InFrame>, TransportError> {
    let mut frames = Vec::new();
    let mut consumed = 0;
    while rbuf.len() - consumed >= 4 {
        let len = u32::from_be_bytes(
            rbuf[consumed..consumed + 4]
                .try_into()
                .expect("4-byte slice"),
        ) as usize;
        if len < 5 {
            return Err(TransportError::Protocol {
                node: me,
                detail: format!("frame from {peer} too short ({len} bytes)"),
            });
        }
        if rbuf.len() - consumed < 4 + len {
            break;
        }
        let body = &rbuf[consumed + 4..consumed + 4 + len];
        let tag = body[0];
        let round = u32::from_be_bytes(body[1..5].try_into().expect("4-byte slice"));
        let payload = &body[5..];
        match tag {
            TAG_MSG => frames.push(InFrame::Msg {
                round,
                payload: payload.to_vec(),
            }),
            TAG_MARKER => {
                if payload.len() != 9 {
                    return Err(TransportError::Protocol {
                        node: me,
                        detail: format!("malformed marker from {peer}"),
                    });
                }
                frames.push(InFrame::Marker {
                    round,
                    done: payload[0] != 0,
                    sent: u64::from_be_bytes(payload[1..9].try_into().expect("8-byte slice")),
                });
            }
            // Unknown control tag: ignore (future extension space).
            _ => {}
        }
        consumed += 4 + len;
    }
    rbuf.drain(..consumed);
    Ok(frames)
}

/// In-process harness: every node on its own thread, each running the
/// single-threaded readiness loop over real localhost sockets. The
/// cross-validation tests compare its [`ClusterReport`] against
/// [`crate::SyncNetwork`]; the multi-process `lafd cluster` workers use
/// [`MeshPeers`]/[`NonblockingMesh`] directly.
#[derive(Debug, Clone)]
pub struct NbCluster {
    rounds_limit: u32,
    io_deadline: Duration,
    shim: Option<(crate::LatencySpec, u64, Duration)>,
}

impl NbCluster {
    /// A cluster running at most `rounds_limit` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds_limit == 0`.
    pub fn new(rounds_limit: u32) -> Self {
        assert!(rounds_limit > 0, "at least one round required");
        NbCluster {
            rounds_limit,
            io_deadline: super::tcp::DEFAULT_IO_DEADLINE,
            shim: None,
        }
    }

    /// Replace the default no-progress deadline.
    #[must_use]
    pub fn with_io_deadline(mut self, io_deadline: Duration) -> Self {
        self.io_deadline = io_deadline;
        self
    }

    /// Install a delay shim built from `spec` (seeded) on every node.
    #[must_use]
    pub fn with_delay_shim(
        mut self,
        spec: crate::LatencySpec,
        seed: u64,
        round_wall: Duration,
    ) -> Self {
        self.shim = Some((spec, seed, round_wall));
        self
    }

    /// Run the automata to completion.
    ///
    /// # Panics
    ///
    /// Panics on node id/index mismatches.
    pub fn run(&self, nodes: Vec<Box<dyn Node>>) -> ClusterReport {
        let n = nodes.len();
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.id(), NodeId(i as u16), "node id/index mismatch");
        }
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind listener");
            addrs.push(listener.local_addr().expect("local addr"));
            listeners.push(listener);
        }
        let addrs = std::sync::Arc::new(addrs);
        let mut handles = Vec::with_capacity(n);
        for (i, node) in nodes.into_iter().enumerate() {
            let listener = listeners[i].try_clone().expect("clone listener");
            let addrs = std::sync::Arc::clone(&addrs);
            let mesh = NonblockingMesh::new(self.rounds_limit).with_io_deadline(self.io_deadline);
            let mesh = match self.shim {
                Some((spec, seed, round_wall)) => mesh.with_delay_shim(DelayShim {
                    model: spec.build(seed),
                    round_wall,
                }),
                None => mesh,
            };
            handles.push(std::thread::spawn(
                move || -> Result<MeshRun, TransportError> {
                    let me = NodeId(i as u16);
                    let peers = MeshPeers::establish(me, &listener, &addrs, mesh.io_deadline)?;
                    mesh.run(node, peers)
                },
            ));
        }

        let mut finished: Vec<MeshRun> = Vec::with_capacity(n);
        let mut errors = Vec::new();
        for (i, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(run)) => finished.push(run),
                Ok(Err(e)) => errors.push(e),
                Err(_) => errors.push(TransportError::WorkerPanic {
                    node: NodeId(i as u16),
                }),
            }
        }

        // Every node derives the round count from the same votes; a
        // mismatch means the transport broke its own invariant.
        let rounds = finished.first().map_or(0, |run| run.rounds);
        for run in &finished {
            if run.rounds != rounds {
                errors.push(TransportError::Protocol {
                    node: run.node.id(),
                    detail: format!(
                        "termination disagreement: {} rounds vs {rounds}",
                        run.rounds
                    ),
                });
            }
        }

        let mut stats = NetStats::new(n);
        stats.rounds = rounds;
        for run in &finished {
            let id = run.node.id();
            for (r, count) in run.stats.per_round.iter().enumerate() {
                if stats.per_round.len() <= r {
                    stats.per_round.resize(r + 1, 0);
                }
                stats.per_round[r] += count;
            }
            stats.messages_total += run.stats.messages_total;
            stats.bytes_total += run.stats.bytes_total;
            stats.dropped_invalid += run.stats.dropped_invalid;
            stats.sent_by[id.index()] = run.stats.messages_total;
        }

        finished.sort_by_key(|run| run.node.id());
        ClusterReport {
            nodes: finished.into_iter().map(|run| run.node).collect(),
            stats,
            rounds,
            errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LatencySpec, SyncNetwork};
    use std::any::Any;

    /// Deterministic chatterbox: broadcasts in rounds `0..until` (node 0
    /// additionally messages itself and one out-of-range destination),
    /// then declares itself done — exercising loopback delivery,
    /// dropped-send accounting, and the early-stop rule.
    struct Chatter {
        id: NodeId,
        n: usize,
        until: u32,
        done: bool,
        got: Vec<(NodeId, u8)>,
    }

    impl Chatter {
        fn set(n: usize, until: u32) -> Vec<Box<dyn Node>> {
            (0..n)
                .map(|i| {
                    Box::new(Chatter {
                        id: NodeId(i as u16),
                        n,
                        until,
                        done: false,
                        got: Vec::new(),
                    }) as Box<dyn Node>
                })
                .collect()
        }
    }

    impl Node for Chatter {
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
            for env in inbox {
                self.got.push((env.from, env.payload[0]));
            }
            if round < self.until {
                out.broadcast(self.n, self.id, [round as u8]);
                if self.id == NodeId(0) {
                    out.send(self.id, [0xAA]);
                    out.send(NodeId(self.n as u16), [0xBB]); // invalid: dropped
                }
            } else {
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    fn inboxes(report: &ClusterReport) -> Vec<Vec<(NodeId, u8)>> {
        report
            .nodes
            .iter()
            .map(|node| node.as_any().downcast_ref::<Chatter>().unwrap().got.clone())
            .collect()
    }

    #[test]
    fn mesh_reproduces_sync_network_exactly() {
        let (n, until, limit) = (5, 3, 9);
        let mut sync = SyncNetwork::new(Chatter::set(n, until));
        let sync_rounds = sync.run_until_done(limit);
        let (sync_nodes, sync_stats) = sync.finish();
        let sync_got: Vec<Vec<(NodeId, u8)>> = sync_nodes
            .iter()
            .map(|node| node.as_any().downcast_ref::<Chatter>().unwrap().got.clone())
            .collect();

        let report = NbCluster::new(limit)
            .with_io_deadline(Duration::from_secs(20))
            .run(Chatter::set(n, until));
        assert!(report.ok().is_ok(), "{:?}", report.errors);
        assert_eq!(report.rounds, sync_rounds, "early-stop rule diverged");
        assert_eq!(report.stats, sync_stats);
        assert_eq!(inboxes(&report), sync_got, "delivery order diverged");
        assert!(
            report.rounds < limit,
            "test must exercise early termination"
        );
    }

    #[test]
    fn delay_shim_changes_timing_not_results() {
        let (n, until, limit) = (4, 2, 6);
        let plain = NbCluster::new(limit)
            .with_io_deadline(Duration::from_secs(20))
            .run(Chatter::set(n, until));
        let shimmed = NbCluster::new(limit)
            .with_io_deadline(Duration::from_secs(20))
            .with_delay_shim(
                LatencySpec::Jitter { extra: 2 },
                7,
                Duration::from_millis(2),
            )
            .run(Chatter::set(n, until));
        assert!(plain.ok().is_ok() && shimmed.ok().is_ok());
        assert_eq!(plain.stats, shimmed.stats);
        assert_eq!(plain.rounds, shimmed.rounds);
        assert_eq!(inboxes(&plain), inboxes(&shimmed));
    }

    /// A node that dies mid-run must surface as typed errors on the
    /// survivors, never a hang.
    struct Quitter {
        id: NodeId,
        n: usize,
    }

    impl Node for Quitter {
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
            if round == 1 && self.id == NodeId(0) {
                panic!("killed");
            }
            out.broadcast(self.n, self.id, [round as u8]);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    #[test]
    fn vanished_node_is_loud_not_silent() {
        let n = 3;
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                Box::new(Quitter {
                    id: NodeId(i as u16),
                    n,
                }) as Box<dyn Node>
            })
            .collect();
        let report = NbCluster::new(5)
            .with_io_deadline(Duration::from_secs(5))
            .run(nodes);
        assert!(report.ok().is_err());
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, TransportError::WorkerPanic { node } if *node == NodeId(0))));
        assert!(report.errors.iter().any(|e| matches!(
            e,
            TransportError::PeerLost { .. } | TransportError::Deadline { .. }
        )));
    }

    #[test]
    fn single_node_mesh_stops_early() {
        let report = NbCluster::new(8).run(Chatter::set(1, 2));
        assert!(report.ok().is_ok(), "{:?}", report.errors);
        let mut sync = SyncNetwork::new(Chatter::set(1, 2));
        let sync_rounds = sync.run_until_done(8);
        let (_, sync_stats) = sync.finish();
        assert_eq!(report.rounds, sync_rounds);
        assert_eq!(report.stats, sync_stats);
    }
}
