//! Real transports driving the same [`crate::Node`] automata.
//!
//! The simulator ([`crate::SyncNetwork`]) is the reference executor used by
//! every experiment table; these transports demonstrate that the protocol
//! automata are genuinely transport-agnostic and provide the wall-clock
//! scaling data for experiment F3:
//!
//! * [`thread`] — one OS thread per node, lock-step rounds coordinated by a
//!   router over crossbeam channels.
//! * [`tcp`] — a full-mesh localhost TCP cluster with framed messages and
//!   per-round completion markers.
//!
//! Both enforce N2 the same way the simulator does: the receiver labels each
//! message with the identity bound to the *channel/connection* it arrived
//! on, never with anything the payload claims.

pub mod tcp;
pub mod thread;

pub use tcp::TcpCluster;
pub use thread::ThreadCluster;

use crate::{NetStats, Node};

/// Result of running a cluster to completion on a real transport.
pub struct ClusterReport {
    /// The node automata, in id order, for outcome inspection.
    pub nodes: Vec<Box<dyn Node>>,
    /// Aggregated message statistics (protocol messages only; transport
    /// control frames such as round markers are excluded so counts remain
    /// comparable with the simulator).
    pub stats: NetStats,
    /// Rounds executed.
    pub rounds: u32,
}

impl core::fmt::Debug for ClusterReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ClusterReport")
            .field("n", &self.nodes.len())
            .field("rounds", &self.rounds)
            .field("messages", &self.stats.messages_total)
            .finish()
    }
}
