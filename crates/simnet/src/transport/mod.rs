//! Real transports driving the same [`crate::Node`] automata.
//!
//! The simulator ([`crate::SyncNetwork`]) is the reference executor used by
//! every experiment table; these transports demonstrate that the protocol
//! automata are genuinely transport-agnostic and provide the wall-clock
//! scaling data for experiment F3:
//!
//! * [`thread`] — one OS thread per node, lock-step rounds coordinated by a
//!   router over crossbeam channels.
//! * [`tcp`] — a full-mesh localhost TCP cluster with framed messages and
//!   per-round completion markers (one reader thread per connection).
//! * [`nonblocking`] — the deployment-grade mesh: a single-threaded
//!   readiness loop per node over nonblocking `TcpStream`s with per-peer
//!   framed buffers, simulator-matching early termination, and an optional
//!   [`crate::LatencyModel`] wall-clock delay shim. This is the transport
//!   the multi-process `lafd cluster` workers run on.
//!
//! All of them enforce N2 the same way the simulator does: the receiver
//! labels each message with the identity bound to the *channel/connection*
//! it arrived on, never with anything the payload claims.

pub mod chaos;
pub mod nonblocking;
pub mod tcp;
pub mod thread;

pub use chaos::{ChaosInjector, ChaosPhase, ChaosSpec, RetryCtx, RetryPolicy};
pub use nonblocking::{DelayShim, MeshPeers, MeshRun, NbCluster, NonblockingMesh};
pub use tcp::TcpCluster;
pub use thread::ThreadCluster;

use crate::{NetStats, Node, NodeId};
use std::time::Duration;

/// A typed transport failure: what went wrong, where, and while doing
/// what. Lost peers and expired deadlines surface as values carried into
/// [`ClusterReport::errors`] (or returned by the nonblocking mesh) instead
/// of panics inside node threads, so an orchestrator can report them
/// loudly and exit nonzero rather than hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The node could not bind its listening socket.
    Bind {
        /// The node that failed to bind.
        node: NodeId,
        /// The address it tried to bind.
        addr: String,
        /// The underlying I/O error, stringified.
        error: String,
    },
    /// A connect to a peer failed (refused, reset, unreachable).
    Connect {
        /// The dialing node.
        node: NodeId,
        /// The peer it dialed.
        peer: NodeId,
        /// The underlying I/O error, stringified.
        error: String,
    },
    /// The identity handshake on a fresh connection broke (reset
    /// mid-handshake, EOF before the id, malformed id frame).
    Handshake {
        /// The node running the handshake.
        node: NodeId,
        /// The peer being handshaken, if known (`None` on the accept side
        /// before the id arrived).
        peer: Option<NodeId>,
        /// What broke.
        detail: String,
    },
    /// A socket operation failed.
    Io {
        /// The node that hit the error.
        node: NodeId,
        /// What the node was doing (`"connect peer 3"`, `"send frame"`, …).
        context: String,
        /// The underlying I/O error, stringified (I/O errors are not
        /// `Clone`).
        error: String,
    },
    /// A peer's connection closed before the run finished.
    PeerLost {
        /// The node that noticed.
        node: NodeId,
        /// The vanished peer.
        peer: NodeId,
        /// The round the node was executing when the peer vanished.
        round: u32,
    },
    /// No progress within the I/O deadline.
    Deadline {
        /// The node that timed out.
        node: NodeId,
        /// What the node was waiting for (`"peer connections"`,
        /// `"round 3 markers"`, …).
        waiting: String,
        /// The configured deadline that expired.
        after: Duration,
    },
    /// A peer violated the transport protocol (bad handshake, malformed
    /// frame, inconsistent termination vote).
    Protocol {
        /// The node that detected the violation.
        node: NodeId,
        /// Human-readable description.
        detail: String,
    },
    /// A node's worker thread panicked instead of returning.
    WorkerPanic {
        /// The slot whose thread died.
        node: NodeId,
    },
    /// A retry budget ran out: the operation failed transiently on every
    /// attempt the [`chaos::RetryPolicy`] allowed.
    Exhausted {
        /// The retrying node.
        node: NodeId,
        /// What was being retried (`"registry register"`,
        /// `"mesh connect peer 3"`, …).
        context: String,
        /// How many attempts were made.
        attempts: u32,
        /// The final attempt's error, stringified.
        last: String,
    },
    /// A chaos kill rule fired: the worker must die at this phase with
    /// crash semantics (abrupt socket drop, exit code
    /// [`chaos::CHAOS_KILL_EXIT`]).
    Killed {
        /// The victim.
        node: NodeId,
        /// The phase label the kill fired at (`"keydist"`, `"round:3"`,
        /// `"teardown"`).
        phase: String,
    },
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Bind { node, addr, error } => {
                write!(f, "{node}: could not bind {addr}: {error}")
            }
            TransportError::Connect { node, peer, error } => {
                write!(f, "{node}: could not connect to {peer}: {error}")
            }
            TransportError::Handshake { node, peer, detail } => match peer {
                Some(peer) => write!(f, "{node}: handshake with {peer} broke: {detail}"),
                None => write!(f, "{node}: inbound handshake broke: {detail}"),
            },
            TransportError::Io {
                node,
                context,
                error,
            } => {
                write!(f, "{node}: i/o error while {context}: {error}")
            }
            TransportError::PeerLost { node, peer, round } => {
                write!(f, "{node}: lost connection to {peer} in round {round}")
            }
            TransportError::Deadline {
                node,
                waiting,
                after,
            } => {
                write!(
                    f,
                    "{node}: no progress waiting for {waiting} within {after:?}"
                )
            }
            TransportError::Protocol { node, detail } => {
                write!(f, "{node}: transport protocol violation: {detail}")
            }
            TransportError::WorkerPanic { node } => {
                write!(f, "{node}: worker thread panicked")
            }
            TransportError::Exhausted {
                node,
                context,
                attempts,
                last,
            } => {
                write!(
                    f,
                    "{node}: retry budget exhausted after {attempts} attempts while {context}: {last}"
                )
            }
            TransportError::Killed { node, phase } => {
                write!(f, "{node}: chaos kill at phase {phase}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    /// Wrap an I/O error with its node and context.
    pub fn io(node: NodeId, context: impl Into<String>, error: &std::io::Error) -> Self {
        TransportError::Io {
            node,
            context: context.into(),
            error: error.to_string(),
        }
    }
}

/// Result of running a cluster to completion on a real transport.
pub struct ClusterReport {
    /// The node automata of the slots that finished, in id order (slots
    /// whose thread failed are absent — see [`ClusterReport::errors`]).
    pub nodes: Vec<Box<dyn Node>>,
    /// Aggregated message statistics (protocol messages only; transport
    /// control frames such as round markers are excluded so counts remain
    /// comparable with the simulator).
    pub stats: NetStats,
    /// Rounds executed.
    pub rounds: u32,
    /// Transport failures, one per node that could not finish. Empty on a
    /// clean run; inspect (or [`ClusterReport::ok`]) before trusting
    /// `nodes`/`stats`.
    pub errors: Vec<TransportError>,
}

impl ClusterReport {
    /// `Ok` iff every node finished cleanly; otherwise the first failure.
    pub fn ok(&self) -> Result<(), &TransportError> {
        match self.errors.first() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl core::fmt::Debug for ClusterReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ClusterReport")
            .field("n", &self.nodes.len())
            .field("rounds", &self.rounds)
            .field("messages", &self.stats.messages_total)
            .field("errors", &self.errors.len())
            .finish()
    }
}
