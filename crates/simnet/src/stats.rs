//! Per-run network statistics — the raw material for every experiment table.

use crate::NodeId;

/// Message/byte/round accounting for one protocol run.
///
/// The paper's quantitative claims are message-complexity claims
/// (3n(n−1) for key distribution, n−1 per failure-discovery run,
/// O(n·t) non-authenticated), so the simulator counts everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Rounds actually executed.
    pub rounds: u32,
    /// Total messages delivered (sent to valid destinations).
    pub messages_total: usize,
    /// Total payload+header bytes on the wire.
    pub bytes_total: usize,
    /// Messages sent per round, indexed by round number.
    pub per_round: Vec<usize>,
    /// Messages sent per node, indexed by node.
    pub sent_by: Vec<usize>,
    /// Messages addressed to unknown node ids (dropped).
    pub dropped_invalid: usize,
}

impl NetStats {
    /// Create stats for an `n`-node run.
    pub fn new(n: usize) -> Self {
        NetStats {
            sent_by: vec![0; n],
            ..NetStats::default()
        }
    }

    /// Record one sent message.
    pub(crate) fn record_send(&mut self, from: NodeId, round: u32, wire_len: usize) {
        self.messages_total += 1;
        self.bytes_total += wire_len;
        let r = round as usize;
        if self.per_round.len() <= r {
            self.per_round.resize(r + 1, 0);
        }
        self.per_round[r] += 1;
        if let Some(slot) = self.sent_by.get_mut(from.index()) {
            *slot += 1;
        }
    }

    /// Record `count` sent messages sharing one sender, round, and wire
    /// size — the batched form [`record_send`](NetStats::record_send) for a
    /// compressed broadcast. Final counters are identical to calling
    /// `record_send` `count` times.
    pub(crate) fn record_send_n(
        &mut self,
        from: NodeId,
        round: u32,
        wire_len: usize,
        count: usize,
    ) {
        self.messages_total += count;
        self.bytes_total += wire_len * count;
        let r = round as usize;
        if self.per_round.len() <= r {
            self.per_round.resize(r + 1, 0);
        }
        self.per_round[r] += count;
        if let Some(slot) = self.sent_by.get_mut(from.index()) {
            *slot += count;
        }
    }

    /// Merge another run's statistics into this one (for cumulative
    /// amortization accounting, experiment F1).
    pub fn absorb(&mut self, other: &NetStats) {
        self.rounds += other.rounds;
        self.messages_total += other.messages_total;
        self.bytes_total += other.bytes_total;
        self.dropped_invalid += other.dropped_invalid;
        if self.sent_by.len() < other.sent_by.len() {
            self.sent_by.resize(other.sent_by.len(), 0);
        }
        for (i, v) in other.sent_by.iter().enumerate() {
            self.sent_by[i] += v;
        }
        self.per_round.extend_from_slice(&other.per_round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = NetStats::new(2);
        s.record_send(NodeId(0), 0, 10);
        s.record_send(NodeId(0), 1, 20);
        s.record_send(NodeId(1), 1, 30);
        assert_eq!(s.messages_total, 3);
        assert_eq!(s.bytes_total, 60);
        assert_eq!(s.per_round, vec![1, 2]);
        assert_eq!(s.sent_by, vec![2, 1]);
    }

    #[test]
    fn absorb_sums() {
        let mut a = NetStats::new(2);
        a.record_send(NodeId(0), 0, 5);
        a.rounds = 1;
        let mut b = NetStats::new(2);
        b.record_send(NodeId(1), 0, 7);
        b.rounds = 2;
        a.absorb(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.messages_total, 2);
        assert_eq!(a.bytes_total, 12);
        assert_eq!(a.sent_by, vec![1, 1]);
    }

    #[test]
    fn record_send_n_matches_n_single_records() {
        let mut batched = NetStats::new(3);
        batched.record_send_n(NodeId(1), 2, 10, 4);
        let mut single = NetStats::new(3);
        for _ in 0..4 {
            single.record_send(NodeId(1), 2, 10);
        }
        assert_eq!(batched, single);
    }

    #[test]
    fn unknown_sender_ignored_gracefully() {
        let mut s = NetStats::new(1);
        s.record_send(NodeId(9), 0, 1); // out of range: counted globally only
        assert_eq!(s.messages_total, 1);
        assert_eq!(s.sent_by, vec![0]);
    }
}
