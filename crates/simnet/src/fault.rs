//! Link-level fault injection.
//!
//! The paper's model guarantees reliable links (N1) and attributes all
//! faults to *nodes*. The test-suite nevertheless wants to check what the
//! protocols do when N1 itself is violated (dropped or corrupted messages
//! should surface as discovered failures, never as silent disagreement), so
//! the simulator accepts an explicit [`FaultPlan`] that breaks N1 on
//! selected (round, from, to) triples. Correct runs never install one.

use crate::NodeId;
use std::collections::HashMap;

/// What to do to a matched message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Silently drop the message.
    Drop,
    /// XOR the byte at the given payload offset with the given mask
    /// (no-op on shorter payloads).
    Corrupt {
        /// Payload byte offset to corrupt.
        offset: usize,
        /// XOR mask applied at `offset`.
        mask: u8,
    },
    /// Duplicate the message (delivered twice in the same round).
    Duplicate,
    /// Deliver the message `rounds` rounds later than scheduled (a timing
    /// fault: in the round-synchronous engine the message is held back; in
    /// the discrete-event engine its delivery time moves by whole rounds).
    Delay {
        /// Extra rounds to hold the message back (≥ 1 to have any effect).
        rounds: u32,
    },
    /// Deliver the message in its scheduled round but *after* every other
    /// message in the receiver's inbox for that round (a reordering fault).
    Reorder,
}

/// A deliberate violation of network property N1 for testing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: HashMap<(u32, NodeId, NodeId), LinkFault>,
}

impl FaultPlan {
    /// Empty plan (no violations).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Install a fault for the message sent in `round` from `from` to `to`.
    /// Returns `self` for chaining.
    pub fn with(mut self, round: u32, from: NodeId, to: NodeId, fault: LinkFault) -> Self {
        self.faults.insert((round, from, to), fault);
        self
    }

    /// Number of installed faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when no faults are installed.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Look up the fault for a message, if any.
    pub(crate) fn lookup(&self, round: u32, from: NodeId, to: NodeId) -> Option<LinkFault> {
        self.faults.get(&(round, from, to)).copied()
    }

    /// The largest [`LinkFault::Delay`] in the plan (0 if none) — drivers
    /// extend their round budget by this much so a delayed message is
    /// still *delivered late* rather than silently degraded into a drop.
    pub fn max_delay_rounds(&self) -> u32 {
        self.faults
            .values()
            .filter_map(|f| match f {
                LinkFault::Delay { rounds } => Some(*rounds),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Generate `k` seeded random faults over an `n`-node system and the
    /// first `rounds` rounds, drawing the fault kind from `kinds`
    /// round-robin over a deterministic PRNG.
    ///
    /// This is the workload generator of the assumption-ablation experiment:
    /// the paper's guarantees are proved *under* N1, and this constructor
    /// produces controlled N1 violations to measure what the discovery
    /// machinery does when the model itself is broken.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `rounds == 0`, or `kinds` is empty.
    pub fn random(n: usize, rounds: u32, k: usize, seed: u64, kinds: &[LinkFault]) -> Self {
        assert!(n >= 2, "need at least two nodes");
        assert!(rounds > 0, "need at least one round");
        assert!(!kinds.is_empty(), "need at least one fault kind");
        let mut state = seed ^ 0x4641_554c_5453; // "FAULTS" salt
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        while plan.len() < k {
            let round = (next() % rounds as u64) as u32;
            let from = NodeId((next() % n as u64) as u16);
            let to = NodeId((next() % n as u64) as u16);
            if from == to {
                continue;
            }
            let kind = match kinds[(next() % kinds.len() as u64) as usize] {
                LinkFault::Corrupt { .. } => LinkFault::Corrupt {
                    offset: (next() % 64) as usize,
                    mask: (next() % 255 + 1) as u8,
                },
                LinkFault::Delay { .. } => LinkFault::Delay {
                    rounds: (next() % 3 + 1) as u32,
                },
                other => other,
            };
            plan = plan.with(round, from, to, kind);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_matches_exact_triple() {
        let plan = FaultPlan::new().with(2, NodeId(0), NodeId(1), LinkFault::Drop);
        assert_eq!(plan.lookup(2, NodeId(0), NodeId(1)), Some(LinkFault::Drop));
        assert_eq!(plan.lookup(1, NodeId(0), NodeId(1)), None);
        assert_eq!(plan.lookup(2, NodeId(1), NodeId(0)), None);
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
    }

    #[test]
    fn random_plans_are_deterministic_and_sized() {
        let kinds = [LinkFault::Drop, LinkFault::Corrupt { offset: 0, mask: 1 }];
        let a = FaultPlan::random(6, 4, 5, 42, &kinds);
        let b = FaultPlan::random(6, 4, 5, 42, &kinds);
        assert_eq!(a.len(), 5);
        for (&key, &fault) in &a.faults {
            assert_eq!(b.faults.get(&key), Some(&fault));
            assert_ne!(key.1, key.2, "no self-loops");
            assert!(key.0 < 4);
        }
    }

    #[test]
    fn random_plans_differ_across_seeds() {
        let kinds = [LinkFault::Drop];
        let a = FaultPlan::random(8, 6, 8, 1, &kinds);
        let b = FaultPlan::random(8, 6, 8, 2, &kinds);
        assert!(a.faults.keys().any(|k| !b.faults.contains_key(k)));
    }

    #[test]
    fn later_install_wins() {
        let plan = FaultPlan::new()
            .with(0, NodeId(0), NodeId(1), LinkFault::Drop)
            .with(0, NodeId(0), NodeId(1), LinkFault::Duplicate);
        assert_eq!(
            plan.lookup(0, NodeId(0), NodeId(1)),
            Some(LinkFault::Duplicate)
        );
    }
}
