//! The deterministic discrete-event network simulator.
//!
//! [`SyncNetwork`](crate::SyncNetwork) can only express the paper's
//! round-synchronous model: everything sent in round `r` arrives at
//! `r + 1`, in lockstep. [`EventNetwork`] runs the *same* [`Node`]
//! automata under a priority-queue scheduler with **virtual time**:
//!
//! * every message is scheduled by `(deliver_at, seq)`, so execution is
//!   byte-deterministic for a given seed and latency model — `seq` is a
//!   global send counter that breaks ties exactly like the synchronous
//!   engine's sender-order delivery;
//! * the scheduler is a *hybrid*: round-aligned arrivals (the dominant
//!   case — synchronous and fixed delays are whole rounds) park in a flat
//!   ring of per-boundary buckets, which preserves send order for free;
//!   only out-of-band arrivals (jitter, per-message overrides) pay for a
//!   binary heap. Broadcasts with a uniform round-aligned delay stay
//!   *compressed*: one `DeliveryRecord` stands for `n − 1` messages,
//!   and the per-receiver envelopes are materialized into a reused arena
//!   only when their round executes (see [`SchedCounters`]);
//! * a pluggable [`LatencyModel`] decides each message's flight time in
//!   virtual ticks ([`TICKS_PER_ROUND`] per round), with optional
//!   per-link overrides ([`PerLink`]);
//! * round boundaries are derived from timeouts instead of lockstep: node
//!   automata still see `on_round(r, …)`, but round `r` fires when virtual
//!   time reaches `r · TICKS_PER_ROUND`, and a message is in round `r`'s
//!   inbox iff its delivery time is at or before that boundary. Existing
//!   protocols run unmodified.
//!
//! Under [`Synchronous`] latency the event engine reproduces the
//! synchronous engine *exactly* — same inbox contents and order, same
//! statistics, same outcomes (see the cross-validation tests). Under
//! [`SeededJitter`] / [`PartialSynchrony`] messages may arrive rounds
//! late, which the paper's protocols surface as *discovered* timing
//! failures, never as silent disagreement.

use crate::fault::{FaultPlan, LinkFault};
use crate::node::OutOp;
use crate::{Envelope, NetStats, Node, NodeId, Outbox, Payload, Trace};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// Virtual ticks per protocol round. Latency models express flight times
/// in ticks, so sub-round jitter is expressible while round boundaries
/// stay exact multiples.
pub const TICKS_PER_ROUND: u64 = 1024;

/// A per-message flight-time override map, keyed by send index (the k-th
/// message handed to the transport, counting from 0) and valued in virtual
/// ticks. Shared by handle: a search loop re-running the same schedule
/// hands the same `Arc` to every episode instead of deep-cloning the map
/// (see [`EventNetwork::set_delay_overrides`]).
pub type DelayOverrides = Arc<HashMap<u64, u64>>;

/// Which simulation engine drives a run (CLI / sweep selector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Engine {
    /// The lockstep round-synchronous engine ([`crate::SyncNetwork`]).
    Sync,
    /// The discrete-event engine ([`EventNetwork`]).
    Event,
}

impl Engine {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Sync => "sync",
            Engine::Event => "event",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Result<Engine, String> {
        Ok(match name {
            "sync" | "round" => Engine::Sync,
            "event" | "des" => Engine::Event,
            other => return Err(format!("unknown engine {other} (sync|event)")),
        })
    }
}

impl core::fmt::Display for Engine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Declarative latency configuration: a copyable description of a
/// [`LatencyModel`] that sweeps and CLIs can carry around and that
/// [`LatencySpec::build`] turns into the model itself (seeding any
/// randomness deterministically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LatencySpec {
    /// Every message takes exactly one round — the paper's N1 model.
    Synchronous,
    /// Every message takes exactly `rounds` rounds.
    Fixed {
        /// Flight time in whole rounds (≥ 1).
        rounds: u32,
    },
    /// Seeded per-message jitter: flight time uniform in
    /// `[1 round, (1 + extra) rounds]` at tick granularity.
    Jitter {
        /// Maximum extra flight time in rounds.
        extra: u32,
    },
    /// Partial synchrony: jittery like [`LatencySpec::Jitter`] before the
    /// global stabilization round `gst`, exactly synchronous from `gst` on.
    PartialSynchrony {
        /// Global stabilization time, as a round number.
        gst: u32,
        /// Maximum extra flight time in rounds before `gst`.
        extra: u32,
    },
}

impl LatencySpec {
    /// Collapse specs that are byte-equivalent to [`LatencySpec::Synchronous`]
    /// (`fixed:1`, `jitter:0`, partial synchrony with `gst = 0` or
    /// `extra = 0`) onto it, so the strict closed-form and cross-validation
    /// checks keyed on `Synchronous` apply to them too.
    pub fn normalize(self) -> LatencySpec {
        match self {
            LatencySpec::Fixed { rounds: 1 }
            | LatencySpec::Jitter { extra: 0 }
            | LatencySpec::PartialSynchrony { gst: 0, .. }
            | LatencySpec::PartialSynchrony { extra: 0, .. } => LatencySpec::Synchronous,
            other => other,
        }
    }

    /// Instantiate the model; `seed` feeds any randomness.
    pub fn build(self, seed: u64) -> Box<dyn LatencyModel> {
        match self {
            LatencySpec::Synchronous => Box::new(Synchronous),
            LatencySpec::Fixed { rounds } => Box::new(FixedDelay { rounds }),
            LatencySpec::Jitter { extra } => Box::new(SeededJitter { seed, extra }),
            LatencySpec::PartialSynchrony { gst, extra } => {
                Box::new(PartialSynchrony { gst, extra, seed })
            }
        }
    }

    /// How many automaton rounds a protocol needing `base` rounds under
    /// synchrony may need under this latency (every hop can stretch, plus
    /// slack for the final deliveries to drain).
    pub fn round_budget(self, base: u32) -> u32 {
        let stretch = |extra: u32| {
            base.saturating_mul(extra.saturating_add(1))
                .saturating_add(2)
        };
        match self {
            LatencySpec::Synchronous => base,
            LatencySpec::Fixed { rounds } => stretch(rounds.max(1) - 1),
            LatencySpec::Jitter { extra } => stretch(extra),
            LatencySpec::PartialSynchrony { gst, extra } => gst.saturating_add(stretch(extra)),
        }
    }

    /// The envelope of flight times this spec can assign to a message sent
    /// in `round`, as an inclusive `(min, max)` range in virtual ticks.
    ///
    /// This is the contract the adversarial scheduler search is bound by:
    /// a delivery schedule is *admissible* for a spec iff every per-message
    /// delay lies within these bounds. Degenerate specs (`sync`, `fixed:D`,
    /// post-GST partial synchrony) have `min == max` — there is no schedule
    /// freedom to search over.
    pub fn tick_bounds(self, round: u32) -> (u64, u64) {
        match self {
            LatencySpec::Synchronous => (TICKS_PER_ROUND, TICKS_PER_ROUND),
            LatencySpec::Fixed { rounds } => {
                let d = u64::from(rounds.max(1)) * TICKS_PER_ROUND;
                (d, d)
            }
            LatencySpec::Jitter { extra } => (
                TICKS_PER_ROUND,
                u64::from(extra.saturating_add(1)) * TICKS_PER_ROUND,
            ),
            LatencySpec::PartialSynchrony { gst, extra } => {
                if round >= gst {
                    (TICKS_PER_ROUND, TICKS_PER_ROUND)
                } else {
                    (
                        TICKS_PER_ROUND,
                        u64::from(extra.saturating_add(1)) * TICKS_PER_ROUND,
                    )
                }
            }
        }
    }

    /// Whether any round's envelope admits more than one delay — i.e.
    /// whether an adversarial scheduler has any freedom at all. `false`
    /// for [`LatencySpec::Synchronous`] and [`LatencySpec::Fixed`], whose
    /// schedules are fully determined.
    pub fn has_schedule_freedom(self) -> bool {
        match self.normalize() {
            LatencySpec::Synchronous | LatencySpec::Fixed { .. } => false,
            LatencySpec::Jitter { .. } | LatencySpec::PartialSynchrony { .. } => true,
        }
    }

    /// Stable machine-readable name (used in reports and CLI flags).
    pub fn name(self) -> String {
        match self {
            LatencySpec::Synchronous => "sync".to_string(),
            LatencySpec::Fixed { rounds } => format!("fixed:{rounds}"),
            LatencySpec::Jitter { extra } => format!("jitter:{extra}"),
            LatencySpec::PartialSynchrony { gst, extra } => format!("psync:{gst}:{extra}"),
        }
    }

    /// Parse a CLI name: `sync`, `fixed:D`, `jitter:E`, `psync:GST:E`.
    pub fn parse(spec: &str) -> Result<LatencySpec, String> {
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or_default();
        // A sanity cap: round budgets scale with these parameters, so an
        // absurd value would make a run step through billions of (empty)
        // rounds rather than fail fast.
        const MAX_PARAM: u32 = 10_000;
        let mut num = |what: &str| -> Result<u32, String> {
            let v = parts
                .next()
                .ok_or_else(|| format!("latency {spec}: missing {what}"))?
                .parse::<u32>()
                .map_err(|e| format!("latency {spec}: {what}: {e}"))?;
            if v > MAX_PARAM {
                return Err(format!(
                    "latency {spec}: {what} {v} is unreasonably large (max {MAX_PARAM})"
                ));
            }
            Ok(v)
        };
        let parsed = match head {
            "sync" | "synchronous" => LatencySpec::Synchronous,
            "fixed" => {
                let rounds = num("rounds")?;
                if rounds == 0 {
                    return Err(format!("latency {spec}: rounds must be >= 1"));
                }
                LatencySpec::Fixed { rounds }
            }
            "jitter" => LatencySpec::Jitter {
                extra: num("extra")?,
            },
            "psync" | "partial" => LatencySpec::PartialSynchrony {
                gst: num("gst")?,
                extra: num("extra")?,
            },
            other => {
                return Err(format!(
                    "unknown latency {other} (sync|fixed:D|jitter:E|psync:GST:E)"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("latency {spec}: trailing components"));
        }
        Ok(parsed.normalize())
    }
}

impl Default for LatencySpec {
    /// [`LatencySpec::Synchronous`] — the paper's N1 timing.
    fn default() -> Self {
        LatencySpec::Synchronous
    }
}

impl core::fmt::Display for LatencySpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Decides message flight times for the event engine.
///
/// Must be deterministic: the same `(from, to, round)` always yields the
/// same delay, so a run is replayable from its seed.
pub trait LatencyModel: Send {
    /// Short model name for reports.
    fn name(&self) -> &'static str;

    /// Flight time in virtual ticks for a message sent from `from` to `to`
    /// in round `round`. Must be ≥ 1; [`TICKS_PER_ROUND`] means "arrives
    /// exactly at the next round boundary" (the synchronous behaviour).
    fn delay(&self, from: NodeId, to: NodeId, round: u32) -> u64;

    /// If every destination of a message sent by `from` in `round` gets
    /// the *same* flight time, that flight time; `None` when delays are
    /// (or may be) destination-dependent.
    ///
    /// This is the event engine's broadcast fast-path gate: a uniform,
    /// round-aligned delay lets an `n`-way broadcast travel as a single
    /// compressed delivery record instead of `n − 1` queue entries.
    /// Returning `None` is always correct (the engine falls back to
    /// per-message scheduling); returning `Some(d)` when some destination
    /// would get a different delay is not. The default is conservative.
    fn uniform_delay(&self, _from: NodeId, _round: u32) -> Option<u64> {
        None
    }
}

/// Exactly one round per hop — the paper's N1 timing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Synchronous;

impl LatencyModel for Synchronous {
    fn name(&self) -> &'static str {
        "sync"
    }
    fn delay(&self, _from: NodeId, _to: NodeId, _round: u32) -> u64 {
        TICKS_PER_ROUND
    }
    fn uniform_delay(&self, _from: NodeId, _round: u32) -> Option<u64> {
        Some(TICKS_PER_ROUND)
    }
}

/// A constant flight time of whole rounds.
#[derive(Debug, Clone, Copy)]
pub struct FixedDelay {
    /// Flight time in rounds (≥ 1).
    pub rounds: u32,
}

impl LatencyModel for FixedDelay {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn delay(&self, _from: NodeId, _to: NodeId, _round: u32) -> u64 {
        u64::from(self.rounds.max(1)) * TICKS_PER_ROUND
    }
    fn uniform_delay(&self, _from: NodeId, _round: u32) -> Option<u64> {
        Some(u64::from(self.rounds.max(1)) * TICKS_PER_ROUND)
    }
}

/// SplitMix-style avalanche over (seed, from, to, round) — deterministic
/// per-message randomness without any state.
fn mix(seed: u64, from: NodeId, to: NodeId, round: u32) -> u64 {
    let mut z = seed
        ^ (u64::from(from.0) << 48)
        ^ (u64::from(to.0) << 32)
        ^ u64::from(round)
        ^ 0x4C41_5445_4E43; // "LATENC" salt
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded per-message jitter, uniform in `[1, 1 + extra]` rounds at tick
/// granularity.
#[derive(Debug, Clone, Copy)]
pub struct SeededJitter {
    /// Determinism seed.
    pub seed: u64,
    /// Maximum extra rounds of flight time.
    pub extra: u32,
}

impl LatencyModel for SeededJitter {
    fn name(&self) -> &'static str {
        "jitter"
    }
    fn delay(&self, from: NodeId, to: NodeId, round: u32) -> u64 {
        let span = u64::from(self.extra) * TICKS_PER_ROUND;
        TICKS_PER_ROUND + mix(self.seed, from, to, round) % (span + 1)
    }
    fn uniform_delay(&self, _from: NodeId, _round: u32) -> Option<u64> {
        // `extra = 0` degenerates to synchrony; anything else jitters
        // per destination.
        (self.extra == 0).then_some(TICKS_PER_ROUND)
    }
}

/// Jitter before the global stabilization round, synchronous after it.
#[derive(Debug, Clone, Copy)]
pub struct PartialSynchrony {
    /// Global stabilization time (round number).
    pub gst: u32,
    /// Maximum extra rounds of flight time before `gst`.
    pub extra: u32,
    /// Determinism seed.
    pub seed: u64,
}

impl LatencyModel for PartialSynchrony {
    fn name(&self) -> &'static str {
        "psync"
    }
    fn delay(&self, from: NodeId, to: NodeId, round: u32) -> u64 {
        if round >= self.gst {
            TICKS_PER_ROUND
        } else {
            SeededJitter {
                seed: self.seed,
                extra: self.extra,
            }
            .delay(from, to, round)
        }
    }
    fn uniform_delay(&self, _from: NodeId, round: u32) -> Option<u64> {
        (round >= self.gst || self.extra == 0).then_some(TICKS_PER_ROUND)
    }
}

/// A base model with per-link overrides — e.g. one slow WAN link in an
/// otherwise synchronous cluster.
pub struct PerLink {
    base: Box<dyn LatencyModel>,
    overrides: HashMap<(NodeId, NodeId), Box<dyn LatencyModel>>,
}

impl PerLink {
    /// Wrap a base model with no overrides yet.
    pub fn new(base: Box<dyn LatencyModel>) -> Self {
        PerLink {
            base,
            overrides: HashMap::new(),
        }
    }

    /// Use `model` for messages from `from` to `to` (directed). Returns
    /// `self` for chaining.
    pub fn with_link(mut self, from: NodeId, to: NodeId, model: Box<dyn LatencyModel>) -> Self {
        self.overrides.insert((from, to), model);
        self
    }
}

impl LatencyModel for PerLink {
    fn name(&self) -> &'static str {
        "per-link"
    }
    fn delay(&self, from: NodeId, to: NodeId, round: u32) -> u64 {
        match self.overrides.get(&(from, to)) {
            Some(model) => model.delay(from, to, round),
            None => self.base.delay(from, to, round),
        }
    }
    fn uniform_delay(&self, from: NodeId, round: u32) -> Option<u64> {
        // Any override may give one destination a different delay.
        if self.overrides.is_empty() {
            self.base.uniform_delay(from, round)
        } else {
            None
        }
    }
}

/// A declarative, copyable per-link latency override — the CLI/sweep
/// counterpart of [`PerLink`], carried around like [`LatencySpec`] and
/// turned into a model at build time.
///
/// Overrides are *directed*: `0:1:fixed:4` slows messages from `P0` to
/// `P1` but not the reverse link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LinkLatencySpec {
    /// Sender side of the directed link.
    pub from: NodeId,
    /// Receiver side of the directed link.
    pub to: NodeId,
    /// The latency model applied to this link.
    pub spec: LatencySpec,
}

impl LinkLatencySpec {
    /// Parse a CLI spec `FROM:TO:MODEL[:ARG...]`, e.g. `0:1:fixed:4` or
    /// `2:5:jitter:3`.
    pub fn parse(raw: &str) -> Result<LinkLatencySpec, String> {
        let mut parts = raw.splitn(3, ':');
        let mut node = |what: &str| -> Result<NodeId, String> {
            parts
                .next()
                .ok_or_else(|| format!("link latency {raw}: missing {what}"))?
                .parse::<u16>()
                .map(NodeId)
                .map_err(|e| format!("link latency {raw}: {what}: {e}"))
        };
        let from = node("from")?;
        let to = node("to")?;
        if from == to {
            return Err(format!("link latency {raw}: from and to must differ"));
        }
        let spec = LatencySpec::parse(
            parts
                .next()
                .ok_or_else(|| format!("link latency {raw}: missing latency model"))?,
        )
        .map_err(|e| format!("link latency {raw}: {e}"))?;
        Ok(LinkLatencySpec { from, to, spec })
    }

    /// Stable machine-readable name, round-tripping through [`parse`].
    ///
    /// [`parse`]: LinkLatencySpec::parse
    pub fn name(&self) -> String {
        format!("{}:{}:{}", self.from.index(), self.to.index(), self.spec)
    }

    /// Build a [`PerLink`] model from a base spec plus these overrides.
    /// `seed` feeds any randomness in the base and the override models.
    pub fn build_model(
        base: LatencySpec,
        overrides: &[LinkLatencySpec],
        seed: u64,
    ) -> Box<dyn LatencyModel> {
        if overrides.is_empty() {
            return base.build(seed);
        }
        let mut model = PerLink::new(base.build(seed));
        for link in overrides {
            model = model.with_link(link.from, link.to, link.spec.build(seed));
        }
        Box::new(model)
    }
}

impl core::fmt::Display for LinkLatencySpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A delivery scheduled out-of-band (unaligned delay); the heap orders by
/// `(at, seq)` ascending.
#[derive(Debug)]
struct QueuedEvent {
    at: u64,
    seq: u64,
    env: Envelope,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Destination set of a [`DeliveryRecord`].
#[derive(Debug, Clone, Copy)]
enum Dest {
    /// One destination.
    One(NodeId),
    /// Every node of an `n`-node system except `skip` (a compressed
    /// broadcast — the record stands for `n − 1` logical messages).
    All { n: usize, skip: NodeId },
}

impl Dest {
    /// Number of logical messages this destination set stands for.
    fn count(self) -> u64 {
        match self {
            Dest::One(_) => 1,
            Dest::All { n, skip } => (n as u64) - u64::from(skip.index() < n),
        }
    }

    /// Whether node `i` receives a copy.
    fn covers(self, me: NodeId) -> bool {
        match self {
            Dest::One(to) => to == me,
            Dest::All { n, skip } => me.index() < n && me != skip,
        }
    }
}

/// One round-aligned delivery parked in the flat ring. A whole broadcast
/// is one record: the per-receiver [`Envelope`]s are only materialized —
/// into a reused arena — when the destination round executes.
#[derive(Debug)]
struct DeliveryRecord {
    from: NodeId,
    /// Round the message was sent in (what [`Envelope::round`] carries and
    /// what fault plans key on).
    round: u32,
    payload: Payload,
    dest: Dest,
}

/// Scheduler/arena counters exposed for observability: how delivery
/// traffic split between the flat ring and the binary-heap fallback, and
/// the inbox arena's high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Logical messages scheduled through the flat ring (round-aligned
    /// delays; broadcasts counted expanded).
    pub ring_enqueued: u64,
    /// Messages scheduled through the binary-heap fallback (unaligned
    /// delays, or everything under the reference scheduler).
    pub heap_enqueued: u64,
    /// Peak number of envelopes materialized in the per-node inbox arena.
    pub arena_hwm: usize,
}

/// Discrete-event network simulator.
///
/// Drives the same [`Node`] automata as [`crate::SyncNetwork`], but message
/// delivery times come from a [`LatencyModel`] over virtual time instead of
/// lockstep rounds. Determinism: the event queue is ordered by
/// `(deliver_at, seq)` where `seq` is the global send counter, so for a
/// fixed seed, latency model, and fault plan the execution — inbox
/// contents, inbox order, statistics — is byte-identical across runs.
pub struct EventNetwork {
    nodes: Vec<Box<dyn Node>>,
    /// Heap fallback for out-of-band deliveries: jittered delays, schedule
    /// overrides — anything whose arrival tick is not a round boundary.
    /// Under the reference scheduler it carries *everything*.
    heap: BinaryHeap<QueuedEvent>,
    /// The flat delivery ring: one bucket of compressed delivery records
    /// per upcoming round boundary. `ring[k]` matures at round
    /// `ring_base + k`. Buckets are in send (= seq) order by construction,
    /// so maturing a bucket needs no sorting.
    ring: VecDeque<Vec<DeliveryRecord>>,
    /// Round index of `ring.front()`.
    ring_base: u64,
    /// Heap deliveries popped for the current boundary, filed per node in
    /// `(deliver_at, seq)` order.
    pending: Vec<Vec<Envelope>>,
    /// Reorder-faulted messages, appended after everything else at the
    /// boundary.
    pending_reordered: Vec<Vec<Envelope>>,
    /// Logical messages still in flight (ring records counted expanded).
    in_flight: u64,
    /// Reused per-node inbox arena: envelopes are materialized into this
    /// buffer at each boundary and the allocation is recycled across nodes
    /// and rounds (reset, not freed, at round boundaries).
    inbox_buf: Vec<Envelope>,
    now: u64,
    seq: u64,
    round: u32,
    stats: NetStats,
    trace: Option<Trace>,
    faults: FaultPlan,
    latency: Box<dyn LatencyModel>,
    rushing: Vec<NodeId>,
    /// Per-message flight-time overrides keyed by *send index* (the k-th
    /// message handed to the transport, counting from 0). See
    /// [`EventNetwork::set_delay_overrides`].
    delay_overrides: DelayOverrides,
    /// When enabled, the applied flight time of every sent message, in
    /// send order.
    delay_log: Option<Vec<(u32, u64)>>,
    /// Messages handed to the transport so far — the key space of
    /// `delay_overrides` and the index space of `delay_log`.
    sent: u64,
    /// Force every delivery through the binary heap (the pre-ring
    /// scheduler). Used by equivalence tests as the reference ordering.
    reference_scheduler: bool,
    /// Ring/heap/arena counters; see [`SchedCounters`].
    sched: SchedCounters,
    /// End-of-round virtual-tick marks, one per executed round. `None`
    /// when observability is off.
    round_marks: Option<Vec<u64>>,
    /// Peak number of deliveries in flight seen at any round boundary
    /// (only tracked while round marks are enabled).
    max_queue_depth: usize,
}

impl EventNetwork {
    /// Build a network from node automata (synchronous latency by default).
    ///
    /// # Panics
    ///
    /// Panics if `nodes[i].id() != NodeId(i)` — ids must match positions so
    /// the simulator can stamp senders (N2).
    pub fn new(nodes: Vec<Box<dyn Node>>) -> Self {
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(
                node.id(),
                NodeId(i as u16),
                "node at index {i} reports id {}",
                node.id()
            );
        }
        let n = nodes.len();
        EventNetwork {
            nodes,
            heap: BinaryHeap::new(),
            ring: VecDeque::new(),
            ring_base: 0,
            pending: (0..n).map(|_| Vec::new()).collect(),
            pending_reordered: (0..n).map(|_| Vec::new()).collect(),
            in_flight: 0,
            inbox_buf: Vec::new(),
            now: 0,
            seq: 0,
            round: 0,
            stats: NetStats::new(n),
            trace: None,
            faults: FaultPlan::new(),
            latency: Box::new(Synchronous),
            rushing: Vec::new(),
            delay_overrides: Arc::new(HashMap::new()),
            delay_log: None,
            sent: 0,
            reference_scheduler: false,
            sched: SchedCounters::default(),
            round_marks: None,
            max_queue_depth: 0,
        }
    }

    /// Enable end-of-round timestamping. Marks are *virtual ticks* — the
    /// round-boundary time after each executed round — so for a fixed seed,
    /// latency model, and fault plan they are byte-identical across runs
    /// and machines (the same determinism contract as the event queue
    /// itself). Also starts tracking the peak number of deliveries in
    /// flight observed at round boundaries.
    pub fn enable_round_marks(&mut self) {
        self.round_marks = Some(Vec::new());
    }

    /// End-of-round marks recorded so far (virtual ticks), or `None` when
    /// observability is off.
    pub fn round_marks(&self) -> Option<&[u64]> {
        self.round_marks.as_deref()
    }

    /// Peak deliveries-in-flight observed at round boundaries, or `None`
    /// when round marks were never enabled.
    pub fn max_queue_depth(&self) -> Option<usize> {
        self.round_marks.as_ref().map(|_| self.max_queue_depth)
    }

    /// Install a latency model (default: [`Synchronous`]).
    pub fn set_latency(&mut self, model: Box<dyn LatencyModel>) {
        self.latency = model;
    }

    /// Install per-message flight-time overrides, keyed by send index (the
    /// k-th message handed to the transport, counting from 0) and valued in
    /// virtual ticks.
    ///
    /// This is the adversarial scheduler's hook: an override *replaces* the
    /// latency model's delay for exactly that message (still clamped to
    /// ≥ 1 tick; [`LinkFault::Delay`] faults are added on top afterwards,
    /// exactly as for model-chosen delays). Because execution is a pure
    /// function of the node automata, the latency model, the fault plan,
    /// and these overrides, re-installing the same override map replays a
    /// schedule byte-for-byte — the replay contract behind
    /// `fd_core::schedsearch`'s schedule certificates.
    ///
    /// The map is taken by [`Arc`] handle ([`DelayOverrides`]) so callers
    /// replaying one schedule many times — the scheduler search runs the
    /// same certificate on thousands of fresh networks — share it instead
    /// of paying an O(messages) copy per run.
    pub fn set_delay_overrides(&mut self, overrides: DelayOverrides) {
        self.delay_overrides = overrides;
    }

    /// Record the applied flight time of every sent message (send round and
    /// pre-fault delay in ticks, in send order), readable afterwards via
    /// [`EventNetwork::delay_log`]. Off by default — the log costs memory
    /// proportional to the message count.
    pub fn enable_delay_log(&mut self) {
        self.delay_log = Some(Vec::new());
    }

    /// The applied per-message delays, if [`EventNetwork::enable_delay_log`]
    /// was called: entry `k` is `(send_round, ticks)` of the k-th sent
    /// message. Feeding these back through
    /// [`EventNetwork::set_delay_overrides`] on a fresh network reproduces
    /// the run exactly.
    pub fn delay_log(&self) -> Option<&[(u32, u64)]> {
        self.delay_log.as_deref()
    }

    /// Enable message tracing with the given capacity.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Trace::with_capacity(cap));
    }

    /// Install a link-fault plan (timing and N1 violations for tests).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Force every delivery through the binary heap, disabling the flat
    /// ring and the compressed-broadcast fast path. The heap scheduler is
    /// the original `(deliver_at, seq)` reference ordering; equivalence
    /// tests run it against the hybrid to pin total delivery order.
    pub fn set_reference_scheduler(&mut self, on: bool) {
        self.reference_scheduler = on;
    }

    /// Ring/heap/arena counters accumulated so far.
    pub fn sched_counters(&self) -> SchedCounters {
        self.sched
    }

    /// Grant *rushing* power to the given (byzantine) nodes — the same
    /// semantics as [`crate::SyncNetwork::set_rushing`]: they act after all
    /// other nodes at each round boundary and preview the messages those
    /// nodes addressed to them in the same round.
    pub fn set_rushing(&mut self, nodes: Vec<NodeId>) {
        self.rushing = nodes;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for the degenerate empty network.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The next round number to execute.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Current virtual time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &dyn Node {
        self.nodes[id.index()].as_ref()
    }

    /// Consume the network, returning the automata for outcome inspection.
    pub fn into_nodes(self) -> Vec<Box<dyn Node>> {
        self.nodes
    }

    /// Consume the network, returning the automata, the statistics, and
    /// the recorded delay log by move — the report path's alternative to
    /// `stats().clone()` + `delay_log().to_vec()` + `into_nodes()`.
    #[allow(clippy::type_complexity)]
    pub fn finish(self) -> (Vec<Box<dyn Node>>, NetStats, Option<Vec<(u32, u64)>>) {
        (self.nodes, self.stats, self.delay_log)
    }

    /// `true` when every node reports [`Node::is_done`].
    pub fn all_done(&self) -> bool {
        self.nodes.iter().all(|n| n.is_done())
    }

    /// Apply delivery-time faults and file the message into its inbox.
    fn deliver(&mut self, env: Envelope) {
        match self.faults.lookup(env.round, env.from, env.to) {
            Some(LinkFault::Drop) => {}
            Some(LinkFault::Corrupt { offset, mask }) => {
                let mut env = env;
                // Copy-on-write: sibling deliveries sharing the buffer
                // must not observe the corruption.
                if offset < env.payload.len() {
                    env.payload.make_mut()[offset] ^= mask;
                }
                self.pending[env.to.index()].push(env);
            }
            Some(LinkFault::Duplicate) => {
                self.pending[env.to.index()].push(env.clone());
                self.pending[env.to.index()].push(env);
            }
            Some(LinkFault::Reorder) => self.pending_reordered[env.to.index()].push(env),
            // Delay was already applied when the delivery was scheduled.
            Some(LinkFault::Delay { .. }) | None => self.pending[env.to.index()].push(env),
        }
    }

    /// Park `record` in the ring bucket for round-boundary `at` (must be a
    /// multiple of [`TICKS_PER_ROUND`], strictly in the future).
    fn ring_push(&mut self, at: u64, record: DeliveryRecord) {
        debug_assert!(at.is_multiple_of(TICKS_PER_ROUND));
        let idx = (at / TICKS_PER_ROUND - self.ring_base) as usize;
        if self.ring.len() <= idx {
            self.ring.resize_with(idx + 1, Vec::new);
        }
        self.ring[idx].push(record);
    }

    /// Advance virtual time to the next round boundary and execute it.
    pub fn step(&mut self) {
        let round = self.round;
        let boundary = u64::from(round) * TICKS_PER_ROUND;
        self.now = boundary;

        // Mature this boundary's ring bucket. Records are already in send
        // (= seq) order; all of them arrive exactly at the boundary.
        let bucket: Vec<DeliveryRecord> = if self.ring_base == u64::from(round) {
            self.ring_base += 1;
            self.ring.pop_front().unwrap_or_default()
        } else {
            Vec::new()
        };
        for rec in &bucket {
            self.in_flight -= rec.dest.count();
        }

        // Drain heap events due at or before the boundary into the pending
        // inboxes in (deliver_at, seq) order. In hybrid mode the heap only
        // holds unaligned deliveries (strictly before the boundary), so
        // they sort ahead of every bucket record; under the reference
        // scheduler the heap carries everything, aligned included.
        while let Some(ev) = self.heap.peek() {
            if ev.at > boundary {
                break;
            }
            let ev = self.heap.pop().expect("peeked");
            self.in_flight -= 1;
            self.deliver(ev.env);
        }

        // Run every node on its inbox, non-rushers first in id order, then
        // rushers (who preview this round's traffic addressed to them).
        let n = self.nodes.len();
        let order: Vec<usize> = (0..n)
            .filter(|i| !self.rushing.contains(&NodeId(*i as u16)))
            .chain((0..n).filter(|i| self.rushing.contains(&NodeId(*i as u16))))
            .collect();
        let mut sent_this_round: Vec<Envelope> = Vec::new();
        for i in order {
            self.run_node(i, round, &bucket, &mut sent_this_round);
        }

        self.round = round + 1;
        self.stats.rounds = self.round;
        if let Some(marks) = self.round_marks.as_mut() {
            marks.push(u64::from(self.round) * TICKS_PER_ROUND);
            self.max_queue_depth = self.max_queue_depth.max(self.in_flight as usize);
        }
    }

    /// Assemble node `i`'s inbox into the arena, run its round, and
    /// dispatch its outbox.
    fn run_node(
        &mut self,
        i: usize,
        round: u32,
        bucket: &[DeliveryRecord],
        sent_this_round: &mut Vec<Envelope>,
    ) {
        let me = NodeId(i as u16);
        let mut inbox = std::mem::take(&mut self.inbox_buf);
        inbox.clear();
        // Heap deliveries first (strictly earlier arrival ticks in hybrid
        // mode; everything in reference mode)…
        inbox.append(&mut self.pending[i]);
        // …then this node's slice of the matured bucket, materialized into
        // the arena. With no fault plan the envelope is a plain handle
        // clone; otherwise each member goes through the same per-delivery
        // fault dispatch as `deliver`.
        for rec in bucket {
            if !rec.dest.covers(me) {
                continue;
            }
            let env = Envelope {
                from: rec.from,
                to: me,
                round: rec.round,
                payload: rec.payload.clone(),
            };
            if self.faults.is_empty() {
                inbox.push(env);
                continue;
            }
            match self.faults.lookup(env.round, env.from, env.to) {
                Some(LinkFault::Drop) => {}
                Some(LinkFault::Corrupt { offset, mask }) => {
                    let mut env = env;
                    // Copy-on-write: sibling deliveries sharing the buffer
                    // must not observe the corruption.
                    if offset < env.payload.len() {
                        env.payload.make_mut()[offset] ^= mask;
                    }
                    inbox.push(env);
                }
                Some(LinkFault::Duplicate) => {
                    inbox.push(env.clone());
                    inbox.push(env);
                }
                Some(LinkFault::Reorder) => self.pending_reordered[i].push(env),
                // Delay was already applied when the delivery was scheduled.
                Some(LinkFault::Delay { .. }) | None => inbox.push(env),
            }
        }
        // …then reorder-faulted messages, then a rusher's preview.
        inbox.append(&mut self.pending_reordered[i]);
        if self.rushing.contains(&me) {
            inbox.extend(sent_this_round.iter().filter(|env| env.to == me).cloned());
        }

        let mut out = Outbox::new();
        self.nodes[i].on_round(round, &inbox, &mut out);
        self.sched.arena_hwm = self.sched.arena_hwm.max(inbox.len());
        inbox.clear();
        self.inbox_buf = inbox;

        self.dispatch_outbox(me, round, out, sent_this_round);
    }

    /// Schedule a node's queued sends. Broadcasts ride the compressed
    /// fast path — one ring record and one batched statistics update for
    /// `n − 1` logical messages — whenever nothing per-message-observable
    /// is active; everything else expands through [`EventNetwork::send_one`]
    /// in exactly the legacy per-message order.
    fn dispatch_outbox(
        &mut self,
        from: NodeId,
        round: u32,
        out: Outbox,
        sent_this_round: &mut Vec<Envelope>,
    ) {
        let n = self.nodes.len();
        // Per-message machinery that the compressed path cannot feed:
        // faults (per-link lookups), tracing, delay logging/overrides
        // (send-index keyed), rushing previews, and the reference
        // scheduler itself.
        let fast_eligible = !self.reference_scheduler
            && self.faults.is_empty()
            && self.trace.is_none()
            && self.delay_log.is_none()
            && self.delay_overrides.is_empty()
            && self.rushing.is_empty();
        let uniform = if fast_eligible {
            self.latency
                .uniform_delay(from, round)
                .map(|d| d.max(1))
                .filter(|d| d.is_multiple_of(TICKS_PER_ROUND))
        } else {
            None
        };
        for op in out.into_ops() {
            match op {
                OutOp::Broadcast {
                    n: bn,
                    skip,
                    payload,
                } if bn == n && uniform.is_some() => {
                    let d = uniform.expect("guarded");
                    let count = bn - usize::from(skip.index() < bn);
                    if count == 0 {
                        continue;
                    }
                    self.stats.record_send_n(
                        from,
                        round,
                        Envelope::wire_len_with(payload.len()),
                        count,
                    );
                    self.sent += count as u64;
                    self.seq += count as u64;
                    self.in_flight += count as u64;
                    self.sched.ring_enqueued += count as u64;
                    self.ring_push(
                        self.now + d,
                        DeliveryRecord {
                            from,
                            round,
                            payload,
                            dest: Dest::All { n: bn, skip },
                        },
                    );
                }
                OutOp::Broadcast {
                    n: bn,
                    skip,
                    payload,
                } => {
                    for peer in NodeId::all(bn) {
                        if peer != skip {
                            self.send_one(from, round, peer, payload.clone(), sent_this_round);
                        }
                    }
                }
                OutOp::Send(to, payload) => {
                    self.send_one(from, round, to, payload, sent_this_round);
                }
            }
        }
    }

    /// Schedule one message exactly as the legacy per-message path did,
    /// then route it: round-aligned arrivals park in the flat ring,
    /// anything else (or everything, under the reference scheduler) goes
    /// through the binary heap.
    fn send_one(
        &mut self,
        from: NodeId,
        round: u32,
        to: NodeId,
        payload: Payload,
        sent_this_round: &mut Vec<Envelope>,
    ) {
        if to.index() >= self.nodes.len() {
            self.stats.dropped_invalid += 1;
            return;
        }
        let env = Envelope {
            from,
            to,
            round,
            payload,
        };
        self.stats.record_send(from, round, env.wire_len());
        if let Some(trace) = self.trace.as_mut() {
            trace.record(&env);
        }
        let mut delay = self
            .delay_overrides
            .get(&self.sent)
            .copied()
            .unwrap_or_else(|| self.latency.delay(from, to, round))
            .max(1);
        if let Some(log) = self.delay_log.as_mut() {
            log.push((round, delay));
        }
        self.sent += 1;
        if let Some(LinkFault::Delay { rounds }) = self.faults.lookup(round, from, to) {
            delay += u64::from(rounds) * TICKS_PER_ROUND;
        }
        // The preview copy is only needed while a rusher is active.
        if !self.rushing.is_empty() {
            sent_this_round.push(env.clone());
        }
        self.seq += 1;
        self.in_flight += 1;
        let at = self.now + delay;
        if !self.reference_scheduler && at.is_multiple_of(TICKS_PER_ROUND) {
            self.sched.ring_enqueued += 1;
            self.ring_push(
                at,
                DeliveryRecord {
                    from,
                    round,
                    payload: env.payload,
                    dest: Dest::One(to),
                },
            );
        } else {
            self.sched.heap_enqueued += 1;
            self.heap.push(QueuedEvent {
                at,
                seq: self.seq,
                env,
            });
        }
    }

    /// Run until every node is done and no message is in flight (checked
    /// after at least one round), or `max_rounds` is reached. Returns the
    /// number of rounds executed.
    pub fn run_until_done(&mut self, max_rounds: u32) -> u32 {
        while self.round < max_rounds {
            self.step();
            if self.all_done()
                && self.in_flight == 0
                && self.pending.iter().all(Vec::is_empty)
                && self.pending_reordered.iter().all(Vec::is_empty)
            {
                break;
            }
        }
        self.round
    }
}

impl core::fmt::Debug for EventNetwork {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventNetwork")
            .field("n", &self.nodes.len())
            .field("round", &self.round)
            .field("now", &self.now)
            .field("in_flight", &self.in_flight)
            .field("latency", &self.latency.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyncNetwork;
    use std::any::Any;

    /// Sends its id to every peer in round 0, then records what it saw and
    /// in which round it saw it.
    struct Echo {
        id: NodeId,
        n: usize,
        seen: Vec<(u32, NodeId, Vec<u8>)>,
    }

    impl Node for Echo {
        fn id(&self) -> NodeId {
            self.id
        }
        fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
            if round == 0 {
                out.broadcast(self.n, self.id, [self.id.0 as u8]);
            }
            for env in inbox {
                self.seen.push((round, env.from, env.payload.to_vec()));
            }
        }
        fn is_done(&self) -> bool {
            self.seen.len() + 1 >= self.n
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    fn echo_nodes(n: usize) -> Vec<Box<dyn Node>> {
        (0..n)
            .map(|i| {
                Box::new(Echo {
                    id: NodeId(i as u16),
                    n,
                    seen: Vec::new(),
                }) as Box<dyn Node>
            })
            .collect()
    }

    fn seen(net: EventNetwork) -> Vec<Vec<(u32, NodeId, Vec<u8>)>> {
        net.into_nodes()
            .into_iter()
            .map(|b| b.into_any().downcast::<Echo>().unwrap().seen)
            .collect()
    }

    #[test]
    fn synchronous_latency_matches_sync_network_exactly() {
        let mut sync = SyncNetwork::new(echo_nodes(5));
        let sync_rounds = sync.run_until_done(10);
        let mut event = EventNetwork::new(echo_nodes(5));
        let event_rounds = event.run_until_done(10);
        assert_eq!(sync_rounds, event_rounds);
        assert_eq!(sync.stats(), event.stats());
        let sync_seen: Vec<_> = sync
            .into_nodes()
            .into_iter()
            .map(|b| {
                b.into_any()
                    .downcast::<Echo>()
                    .unwrap()
                    .seen
                    .iter()
                    .map(|(_, f, p)| (*f, p.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let event_seen: Vec<_> = seen(event)
            .into_iter()
            .map(|s| s.into_iter().map(|(_, f, p)| (f, p)).collect::<Vec<_>>())
            .collect();
        assert_eq!(sync_seen, event_seen);
    }

    #[test]
    fn runs_are_deterministic_across_repeats() {
        let run = |seed| {
            let mut net = EventNetwork::new(echo_nodes(6));
            net.set_latency(Box::new(SeededJitter { seed, extra: 2 }));
            net.run_until_done(12);
            let stats = net.stats().clone();
            (stats, seen(net))
        };
        assert_eq!(run(9), run(9));
        // Different seeds reshuffle arrival rounds.
        let (_, a) = run(1);
        let (_, b) = run(2);
        assert_ne!(a, b, "different jitter seeds produced identical timing");
    }

    #[test]
    fn jitter_spreads_arrivals_across_rounds() {
        let mut net = EventNetwork::new(echo_nodes(6));
        net.set_latency(Box::new(SeededJitter { seed: 3, extra: 2 }));
        net.run_until_done(12);
        let all: Vec<u32> = seen(net)
            .into_iter()
            .flatten()
            .map(|(round, _, _)| round)
            .collect();
        assert!(all.iter().all(|&r| (1..=3).contains(&r)));
        assert!(
            all.iter().any(|&r| r > 1),
            "extra=2 jitter never delayed anything"
        );
    }

    #[test]
    fn fixed_delay_shifts_every_arrival() {
        let mut net = EventNetwork::new(echo_nodes(4));
        net.set_latency(Box::new(FixedDelay { rounds: 3 }));
        net.run_until_done(10);
        for node in seen(net) {
            assert!(node.iter().all(|&(round, _, _)| round == 3));
        }
    }

    #[test]
    fn partial_synchrony_is_synchronous_after_gst() {
        struct TwoShot {
            id: NodeId,
            n: usize,
            seen: Vec<(u32, NodeId)>,
        }
        impl Node for TwoShot {
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
                // Broadcast in round 0 (before gst) and round 5 (after).
                if round == 0 || round == 5 {
                    out.broadcast(self.n, self.id, [round as u8]);
                }
                for env in inbox {
                    self.seen.push((round, env.from));
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        let nodes: Vec<Box<dyn Node>> = (0..5)
            .map(|i| {
                Box::new(TwoShot {
                    id: NodeId(i),
                    n: 5,
                    seen: Vec::new(),
                }) as Box<dyn Node>
            })
            .collect();
        let mut net = EventNetwork::new(nodes);
        net.set_latency(Box::new(PartialSynchrony {
            gst: 5,
            extra: 3,
            seed: 11,
        }));
        for _ in 0..8 {
            net.step();
        }
        for boxed in net.into_nodes() {
            let node = boxed.into_any().downcast::<TwoShot>().unwrap();
            // Post-gst messages arrive exactly one round later.
            assert!(node
                .seen
                .iter()
                .filter(|(r, _)| *r > 5)
                .all(|(r, _)| *r == 6));
        }
    }

    #[test]
    fn per_link_override_slows_one_link() {
        let mut net = EventNetwork::new(echo_nodes(3));
        net.set_latency(Box::new(PerLink::new(Box::new(Synchronous)).with_link(
            NodeId(0),
            NodeId(1),
            Box::new(FixedDelay { rounds: 4 }),
        )));
        net.run_until_done(10);
        let all = seen(net);
        // P1 got P2's message in round 1 and P0's only in round 4.
        let rounds_at_p1: Vec<(u32, NodeId)> = all[1].iter().map(|&(r, f, _)| (r, f)).collect();
        assert_eq!(rounds_at_p1, vec![(1, NodeId(2)), (4, NodeId(0))]);
    }

    #[test]
    fn delay_fault_adds_whole_rounds() {
        let mut net = EventNetwork::new(echo_nodes(3));
        net.set_fault_plan(FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(1),
            LinkFault::Delay { rounds: 2 },
        ));
        net.run_until_done(10);
        let all = seen(net);
        let arrivals: Vec<(u32, NodeId)> = all[1].iter().map(|&(r, f, _)| (r, f)).collect();
        assert_eq!(arrivals, vec![(1, NodeId(2)), (3, NodeId(0))]);
    }

    #[test]
    fn zero_round_delay_is_a_noop_on_both_engines() {
        let plan = FaultPlan::new().with(0, NodeId(0), NodeId(1), LinkFault::Delay { rounds: 0 });
        let mut sync = SyncNetwork::new(echo_nodes(3));
        sync.set_fault_plan(plan.clone());
        let sync_rounds = sync.run_until_done(6);
        let mut event = EventNetwork::new(echo_nodes(3));
        event.set_fault_plan(plan);
        let event_rounds = event.run_until_done(6);
        assert_eq!(sync_rounds, event_rounds);
        assert_eq!(sync.stats(), event.stats());
        // The message still arrived in round 1 on both engines.
        let all = seen(event);
        assert_eq!(
            all[1].iter().map(|&(r, f, _)| (r, f)).collect::<Vec<_>>(),
            vec![(1, NodeId(0)), (1, NodeId(2))]
        );
    }

    #[test]
    fn reorder_fault_moves_message_last_in_round() {
        let mut net = EventNetwork::new(echo_nodes(3));
        net.set_fault_plan(FaultPlan::new().with(0, NodeId(0), NodeId(2), LinkFault::Reorder));
        net.run_until_done(5);
        let all = seen(net);
        let froms: Vec<NodeId> = all[2].iter().map(|&(_, f, _)| f).collect();
        assert_eq!(froms, vec![NodeId(1), NodeId(0)]);
    }

    #[test]
    fn drop_corrupt_duplicate_match_sync_semantics() {
        let plan = FaultPlan::new()
            .with(0, NodeId(0), NodeId(1), LinkFault::Drop)
            .with(0, NodeId(2), NodeId(1), LinkFault::Duplicate)
            .with(
                0,
                NodeId(0),
                NodeId(2),
                LinkFault::Corrupt {
                    offset: 0,
                    mask: 0xff,
                },
            );
        let mut sync = SyncNetwork::new(echo_nodes(4));
        sync.set_fault_plan(plan.clone());
        sync.run_until_done(6);
        let mut event = EventNetwork::new(echo_nodes(4));
        event.set_fault_plan(plan);
        event.run_until_done(6);
        assert_eq!(sync.stats(), event.stats());
        let sync_seen: Vec<Vec<(NodeId, Vec<u8>)>> = sync
            .into_nodes()
            .into_iter()
            .map(|b| {
                b.into_any()
                    .downcast::<Echo>()
                    .unwrap()
                    .seen
                    .iter()
                    .map(|(_, f, p)| (*f, p.clone()))
                    .collect()
            })
            .collect();
        let event_seen: Vec<Vec<(NodeId, Vec<u8>)>> = seen(event)
            .into_iter()
            .map(|s| s.into_iter().map(|(_, f, p)| (f, p)).collect())
            .collect();
        assert_eq!(sync_seen, event_seen);
    }

    #[test]
    fn rushing_preview_matches_sync_semantics() {
        let mut sync = SyncNetwork::new(echo_nodes(3));
        sync.set_rushing(vec![NodeId(2)]);
        sync.run_until_done(5);
        let mut event = EventNetwork::new(echo_nodes(3));
        event.set_rushing(vec![NodeId(2)]);
        event.run_until_done(5);
        assert_eq!(sync.stats(), event.stats());
        let rushed = seen(event);
        // Preview (2 messages in round 0) + regular delivery (2 in round 1).
        assert_eq!(rushed[2].len(), 4);
        assert!(rushed[2][..2].iter().all(|&(r, _, _)| r == 0));
    }

    #[test]
    fn invalid_destination_dropped_and_counted() {
        struct Stray {
            id: NodeId,
        }
        impl Node for Stray {
            fn id(&self) -> NodeId {
                self.id
            }
            fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
                if round == 0 {
                    out.send(NodeId(99), vec![1]);
                }
            }
            fn is_done(&self) -> bool {
                true
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        let mut net = EventNetwork::new(vec![Box::new(Stray { id: NodeId(0) })]);
        net.run_until_done(3);
        assert_eq!(net.stats().messages_total, 0);
        assert_eq!(net.stats().dropped_invalid, 1);
    }

    #[test]
    #[should_panic(expected = "reports id")]
    fn mismatched_ids_rejected() {
        let _ = EventNetwork::new(vec![Box::new(Echo {
            id: NodeId(5),
            n: 1,
            seen: Vec::new(),
        })]);
    }

    #[test]
    fn virtual_time_tracks_round_boundaries() {
        let mut net = EventNetwork::new(echo_nodes(3));
        assert_eq!(net.now(), 0);
        net.step();
        assert_eq!(net.round(), 1);
        net.step();
        assert_eq!(net.now(), TICKS_PER_ROUND);
    }

    #[test]
    fn latency_spec_parse_round_trips() {
        for spec in [
            LatencySpec::Synchronous,
            LatencySpec::Fixed { rounds: 2 },
            LatencySpec::Jitter { extra: 3 },
            LatencySpec::PartialSynchrony { gst: 4, extra: 1 },
        ] {
            assert_eq!(LatencySpec::parse(&spec.name()).unwrap(), spec);
        }
        // Specs byte-equivalent to synchrony normalize onto it, so the
        // strict checks keyed on Synchronous still apply.
        for sync_alias in ["fixed:1", "jitter:0", "psync:0:3", "psync:3:0"] {
            assert_eq!(
                LatencySpec::parse(sync_alias).unwrap(),
                LatencySpec::Synchronous,
                "{sync_alias}"
            );
        }
        assert!(LatencySpec::parse("warp:9").is_err());
        assert!(LatencySpec::parse("fixed:0").is_err());
        assert!(LatencySpec::parse("jitter").is_err());
        assert!(LatencySpec::parse("sync:1").is_err());
        assert!(LatencySpec::parse("jitter:4294967295").is_err());
        assert!(LatencySpec::parse("fixed:10001").is_err());
        assert_eq!(Engine::parse("event").unwrap(), Engine::Event);
        assert!(Engine::parse("quantum").is_err());
    }

    #[test]
    fn delay_override_replaces_model_delay_for_one_message() {
        // Baseline: everything arrives in round 1.
        let mut net = EventNetwork::new(echo_nodes(3));
        net.enable_delay_log();
        net.run_until_done(10);
        let log: Vec<(u32, u64)> = net.delay_log().unwrap().to_vec();
        assert_eq!(log.len(), 6);
        assert!(log.iter().all(|&(r, d)| r == 0 && d == TICKS_PER_ROUND));

        // Override the very first sent message (P0 -> P1 under id order)
        // to take three rounds; everything else is untouched.
        let mut net = EventNetwork::new(echo_nodes(3));
        net.set_delay_overrides(Arc::new(HashMap::from([(0u64, 3 * TICKS_PER_ROUND)])));
        net.enable_delay_log();
        net.run_until_done(10);
        assert_eq!(net.delay_log().unwrap()[0], (0, 3 * TICKS_PER_ROUND));
        let all = seen(net);
        let at_p1: Vec<(u32, NodeId)> = all[1].iter().map(|&(r, f, _)| (r, f)).collect();
        assert_eq!(at_p1, vec![(1, NodeId(2)), (3, NodeId(0))]);
    }

    #[test]
    fn replaying_a_delay_log_reproduces_the_run_exactly() {
        let run = |overrides: HashMap<u64, u64>| {
            let mut net = EventNetwork::new(echo_nodes(6));
            net.set_latency(Box::new(SeededJitter { seed: 5, extra: 2 }));
            net.set_delay_overrides(Arc::new(overrides));
            net.enable_delay_log();
            net.run_until_done(15);
            let stats = net.stats().clone();
            let log: Vec<(u32, u64)> = net.delay_log().unwrap().to_vec();
            (stats, log, seen(net))
        };
        let (stats, log, observed) = run(HashMap::new());
        // Replay the recorded schedule through the override hook on a
        // fresh network with a *different* base model: identical run.
        let schedule: HashMap<u64, u64> = log
            .iter()
            .enumerate()
            .map(|(i, &(_, d))| (i as u64, d))
            .collect();
        let mut replay = EventNetwork::new(echo_nodes(6));
        replay.set_delay_overrides(Arc::new(schedule));
        replay.enable_delay_log();
        replay.run_until_done(15);
        assert_eq!(replay.stats(), &stats);
        assert_eq!(replay.delay_log().unwrap(), &log[..]);
        assert_eq!(seen(replay), observed);
    }

    #[test]
    fn link_latency_spec_parses_and_builds_per_link() {
        let link = LinkLatencySpec::parse("0:1:fixed:4").unwrap();
        assert_eq!(link.from, NodeId(0));
        assert_eq!(link.to, NodeId(1));
        assert_eq!(link.spec, LatencySpec::Fixed { rounds: 4 });
        assert_eq!(LinkLatencySpec::parse(&link.name()).unwrap(), link);
        assert!(LinkLatencySpec::parse("0:0:fixed:4").is_err());
        assert!(LinkLatencySpec::parse("0:1").is_err());
        assert!(LinkLatencySpec::parse("0:1:warp").is_err());
        assert!(LinkLatencySpec::parse("x:1:sync").is_err());

        let mut net = EventNetwork::new(echo_nodes(3));
        net.set_latency(LinkLatencySpec::build_model(
            LatencySpec::Synchronous,
            &[link],
            1,
        ));
        net.run_until_done(10);
        let all = seen(net);
        let at_p1: Vec<(u32, NodeId)> = all[1].iter().map(|&(r, f, _)| (r, f)).collect();
        assert_eq!(at_p1, vec![(1, NodeId(2)), (4, NodeId(0))]);
    }

    #[test]
    fn tick_bounds_describe_each_spec_envelope() {
        let t = TICKS_PER_ROUND;
        assert_eq!(LatencySpec::Synchronous.tick_bounds(0), (t, t));
        assert_eq!(
            LatencySpec::Fixed { rounds: 3 }.tick_bounds(5),
            (3 * t, 3 * t)
        );
        assert_eq!(LatencySpec::Jitter { extra: 2 }.tick_bounds(9), (t, 3 * t));
        let ps = LatencySpec::PartialSynchrony { gst: 4, extra: 1 };
        assert_eq!(ps.tick_bounds(3), (t, 2 * t));
        assert_eq!(ps.tick_bounds(4), (t, t));
        // Every model-chosen delay lies within the advertised bounds.
        for spec in [
            LatencySpec::Jitter { extra: 2 },
            LatencySpec::PartialSynchrony { gst: 2, extra: 3 },
        ] {
            let model = spec.build(11);
            for round in 0..6u32 {
                let (lo, hi) = spec.tick_bounds(round);
                for (a, b) in [(0u16, 1u16), (1, 2), (3, 0)] {
                    let d = model.delay(NodeId(a), NodeId(b), round);
                    assert!((lo..=hi).contains(&d), "{spec:?} round {round}: {d}");
                }
            }
        }
    }

    #[test]
    fn hybrid_scheduler_matches_reference_heap_exactly() {
        // Same automata, same latency, same faults — one run on the
        // ring+heap hybrid, one forced entirely through the heap. The
        // total delivery order (per node, per round, per sender) and the
        // statistics must be identical.
        let model = |k: usize| -> Box<dyn LatencyModel> {
            match k {
                0 => Box::new(Synchronous),
                1 => Box::new(FixedDelay { rounds: 2 }),
                2 => Box::new(SeededJitter { seed: 7, extra: 2 }),
                3 => Box::new(PartialSynchrony {
                    gst: 2,
                    extra: 3,
                    seed: 13,
                }),
                _ => Box::new(Synchronous),
            }
        };
        let faulty = FaultPlan::new()
            .with(0, NodeId(0), NodeId(1), LinkFault::Reorder)
            .with(0, NodeId(2), NodeId(3), LinkFault::Duplicate)
            .with(0, NodeId(4), NodeId(0), LinkFault::Delay { rounds: 2 });
        for k in 0..5usize {
            let plan = if k == 4 {
                faulty.clone()
            } else {
                FaultPlan::new()
            };
            let run = |reference: bool| {
                let mut net = EventNetwork::new(echo_nodes(6));
                net.set_reference_scheduler(reference);
                net.set_latency(model(k));
                net.set_fault_plan(plan.clone());
                net.run_until_done(20);
                (net.stats().clone(), net.sched_counters(), seen(net))
            };
            let (fast_stats, fast_sched, fast_seen) = run(false);
            let (ref_stats, ref_sched, ref_seen) = run(true);
            assert_eq!(fast_stats, ref_stats, "scenario {k}: stats diverged");
            assert_eq!(fast_seen, ref_seen, "scenario {k}: delivery order diverged");
            // The reference run schedules everything through the heap.
            assert_eq!(ref_sched.ring_enqueued, 0, "scenario {k}");
            assert_eq!(
                ref_sched.heap_enqueued,
                fast_sched.ring_enqueued + fast_sched.heap_enqueued,
                "scenario {k}: hybrid lost or invented messages"
            );
        }
    }

    #[test]
    fn sched_counters_split_ring_and_heap_traffic() {
        // Pure synchrony: every delivery is round-aligned → all ring.
        let mut net = EventNetwork::new(echo_nodes(4));
        net.run_until_done(6);
        let sched = net.sched_counters();
        assert_eq!(sched.ring_enqueued, 12);
        assert_eq!(sched.heap_enqueued, 0);
        // Each node materializes 3 envelopes in round 1.
        assert_eq!(sched.arena_hwm, 3);

        // Jitter: unaligned delays fall back to the heap.
        let mut net = EventNetwork::new(echo_nodes(4));
        net.set_latency(Box::new(SeededJitter { seed: 3, extra: 2 }));
        net.run_until_done(12);
        let sched = net.sched_counters();
        assert_eq!(sched.ring_enqueued + sched.heap_enqueued, 12);
        assert!(
            sched.heap_enqueued > 0,
            "extra=2 jitter produced no unaligned delay"
        );

        // Reference mode: everything through the heap, even under synchrony.
        let mut net = EventNetwork::new(echo_nodes(4));
        net.set_reference_scheduler(true);
        net.run_until_done(6);
        let sched = net.sched_counters();
        assert_eq!(sched.ring_enqueued, 0);
        assert_eq!(sched.heap_enqueued, 12);
    }

    #[test]
    fn broadcast_fast_path_keeps_stats_and_order() {
        // A broadcast under synchrony travels compressed; the observable
        // surface (stats, per-node inboxes) must match the expanded form
        // byte for byte. Compare against SyncNetwork, the original oracle.
        let mut sync = SyncNetwork::new(echo_nodes(8));
        sync.run_until_done(10);
        let mut event = EventNetwork::new(echo_nodes(8));
        event.run_until_done(10);
        assert_eq!(sync.stats(), event.stats());
        // All 56 sends rode the ring as compressed broadcasts.
        assert_eq!(event.sched_counters().ring_enqueued, 56);
        assert_eq!(event.sched_counters().heap_enqueued, 0);
        let sync_seen: Vec<_> = sync
            .into_nodes()
            .into_iter()
            .map(|b| {
                b.into_any()
                    .downcast::<Echo>()
                    .unwrap()
                    .seen
                    .iter()
                    .map(|(_, f, p)| (*f, p.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let event_seen: Vec<_> = seen(event)
            .into_iter()
            .map(|s| s.into_iter().map(|(_, f, p)| (f, p)).collect::<Vec<_>>())
            .collect();
        assert_eq!(sync_seen, event_seen);
    }

    #[test]
    fn fast_path_disengages_per_observable_feature() {
        // Per-message-observable features force the expanded path; the
        // witness is one trace record / log entry per *logical* message,
        // which a compressed broadcast could not produce.
        let mut net = EventNetwork::new(echo_nodes(3));
        net.enable_trace(16);
        net.run_until_done(6);
        assert_eq!(net.trace().unwrap().events().len(), 6);

        let mut net = EventNetwork::new(echo_nodes(3));
        net.enable_delay_log();
        net.run_until_done(6);
        assert_eq!(net.delay_log().unwrap().len(), 6);
    }

    #[test]
    fn round_budget_covers_worst_case_stretch() {
        assert_eq!(LatencySpec::Synchronous.round_budget(5), 5);
        assert_eq!(LatencySpec::Fixed { rounds: 2 }.round_budget(5), 12);
        assert_eq!(LatencySpec::Jitter { extra: 1 }.round_budget(5), 12);
        assert_eq!(
            LatencySpec::PartialSynchrony { gst: 3, extra: 1 }.round_budget(5),
            15
        );
        // Absurd parameters saturate instead of overflowing.
        assert_eq!(
            LatencySpec::Jitter { extra: u32::MAX }.round_budget(5),
            u32::MAX
        );
        assert_eq!(
            LatencySpec::PartialSynchrony {
                gst: u32::MAX,
                extra: u32::MAX
            }
            .round_budget(5),
            u32::MAX
        );
    }
}
