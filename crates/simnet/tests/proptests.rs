//! Property-based tests for the wire codec and envelope layer: round-trips
//! over arbitrary data, decoder robustness against arbitrary bytes
//! (malformed input must error, never panic), and the [`Payload`]
//! sharing semantics (an `Arc`-backed payload must be observationally
//! identical to the `Vec<u8>` it models, through any mix of clones,
//! slices, and copy-on-write mutations).

use fd_simnet::codec::{decode_seq, CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, NodeId, Payload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn primitives_round_trip(a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>()) {
        let mut w = Writer::new();
        a.encode(&mut w);
        b.encode(&mut w);
        c.encode(&mut w);
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(u8::decode(&mut r).unwrap(), a);
        prop_assert_eq!(u16::decode(&mut r).unwrap(), b);
        prop_assert_eq!(u32::decode(&mut r).unwrap(), c);
        prop_assert_eq!(u64::decode(&mut r).unwrap(), d);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn byte_strings_round_trip(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let bytes = data.encode_to_vec();
        prop_assert_eq!(Vec::<u8>::decode_exact(&bytes).unwrap(), data);
    }

    #[test]
    fn sequences_round_trip(items in prop::collection::vec(any::<u32>(), 0..64)) {
        let bytes = items.as_slice().encode_to_vec();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(decode_seq::<u32>(&mut r).unwrap(), items);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn envelopes_round_trip(from in any::<u16>(), to in any::<u16>(), round in any::<u32>(), payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let env = Envelope { from: NodeId(from), to: NodeId(to), round, payload: payload.into() };
        let bytes = env.encode_to_vec();
        prop_assert_eq!(env.wire_len(), bytes.len());
        prop_assert_eq!(Envelope::decode_exact(&bytes).unwrap(), env);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(garbage in prop::collection::vec(any::<u8>(), 0..300)) {
        // Whatever happens, it must be Ok or Err — no panics, no hangs.
        let _ = Envelope::decode_exact(&garbage);
        let mut r = Reader::new(&garbage);
        let _ = decode_seq::<u64>(&mut r);
        let mut r = Reader::new(&garbage);
        let _ = r.get_bytes();
    }

    #[test]
    fn truncation_always_detected(data in prop::collection::vec(any::<u8>(), 1..128), cut in any::<usize>()) {
        let env = Envelope {
            from: NodeId(1),
            to: NodeId(2),
            round: 3,
            payload: data.into(),
        };
        let bytes = env.encode_to_vec();
        let cut = cut % bytes.len(); // strictly shorter
        let truncated = &bytes[..cut];
        prop_assert!(Envelope::decode_exact(truncated).is_err());
    }

    #[test]
    fn extension_always_detected(extra in prop::collection::vec(any::<u8>(), 1..32)) {
        let env = Envelope { from: NodeId(0), to: NodeId(1), round: 0, payload: vec![9].into() };
        let mut bytes = env.encode_to_vec();
        bytes.extend_from_slice(&extra);
        prop_assert_eq!(Envelope::decode_exact(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn canonical_encoding_is_injective(
        p1 in prop::collection::vec(any::<u8>(), 0..64),
        p2 in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Distinct payloads encode to distinct bytes (signing depends on it).
        let e1 = Envelope { from: NodeId(0), to: NodeId(1), round: 0, payload: p1.clone().into() };
        let e2 = Envelope { from: NodeId(0), to: NodeId(1), round: 0, payload: p2.clone().into() };
        prop_assert_eq!(e1.encode_to_vec() == e2.encode_to_vec(), p1 == p2);
    }

    #[test]
    fn payload_models_vec_through_clone_and_slice(
        data in prop::collection::vec(any::<u8>(), 0..256),
        a in any::<usize>(),
        b in any::<usize>(),
    ) {
        // Model: plain Vec. Implementation: shared Arc-backed Payload.
        let payload = Payload::from(data.clone());
        prop_assert_eq!(&payload, &data);
        prop_assert_eq!(payload.len(), data.len());
        prop_assert_eq!(payload.encode_to_vec(), data.encode_to_vec());

        // A clone shares the buffer but remains byte-identical.
        let shared = payload.clone();
        prop_assert!(shared.shares_buffer_with(&payload));
        prop_assert_eq!(&shared, &payload);

        // A slice window equals the model's slice, still sharing.
        let (lo, hi) = {
            let a = a % (data.len() + 1);
            let b = b % (data.len() + 1);
            (a.min(b), a.max(b))
        };
        let window = payload.slice(lo..hi);
        prop_assert_eq!(window.as_slice(), &data[lo..hi]);
        prop_assert!(window.is_empty() || window.shares_buffer_with(&payload));
    }

    #[test]
    fn payload_copy_on_write_isolates_mutation(
        data in prop::collection::vec(any::<u8>(), 1..128),
        offset in any::<usize>(),
        mask in 1..=u8::MAX,
    ) {
        let offset = offset % data.len();
        let original = Payload::from(data.clone());
        let mut mutated = original.clone();
        mutated.make_mut()[offset] ^= mask;

        // The mutated handle sees the flip; every other handle (and the
        // model) is untouched — exactly the Corrupt-fault requirement.
        let mut model = data.clone();
        model[offset] ^= mask;
        prop_assert_eq!(&mutated, &model);
        prop_assert_eq!(&original, &data);
        prop_assert!(!mutated.shares_buffer_with(&original));

        // In-place mutation when uniquely owned is equivalent.
        let mut unique = Payload::from(data.clone());
        unique.make_mut()[offset] ^= mask;
        prop_assert_eq!(unique, model);
    }
}
