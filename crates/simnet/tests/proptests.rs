//! Property-based tests for the wire codec and envelope layer: round-trips
//! over arbitrary data, and decoder robustness against arbitrary bytes
//! (malformed input must error, never panic).

use fd_simnet::codec::{decode_seq, CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn primitives_round_trip(a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>()) {
        let mut w = Writer::new();
        a.encode(&mut w);
        b.encode(&mut w);
        c.encode(&mut w);
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(u8::decode(&mut r).unwrap(), a);
        prop_assert_eq!(u16::decode(&mut r).unwrap(), b);
        prop_assert_eq!(u32::decode(&mut r).unwrap(), c);
        prop_assert_eq!(u64::decode(&mut r).unwrap(), d);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn byte_strings_round_trip(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let bytes = data.encode_to_vec();
        prop_assert_eq!(Vec::<u8>::decode_exact(&bytes).unwrap(), data);
    }

    #[test]
    fn sequences_round_trip(items in prop::collection::vec(any::<u32>(), 0..64)) {
        let bytes = items.as_slice().encode_to_vec();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(decode_seq::<u32>(&mut r).unwrap(), items);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn envelopes_round_trip(from in any::<u16>(), to in any::<u16>(), round in any::<u32>(), payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let env = Envelope { from: NodeId(from), to: NodeId(to), round, payload };
        let bytes = env.encode_to_vec();
        prop_assert_eq!(env.wire_len(), bytes.len());
        prop_assert_eq!(Envelope::decode_exact(&bytes).unwrap(), env);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(garbage in prop::collection::vec(any::<u8>(), 0..300)) {
        // Whatever happens, it must be Ok or Err — no panics, no hangs.
        let _ = Envelope::decode_exact(&garbage);
        let mut r = Reader::new(&garbage);
        let _ = decode_seq::<u64>(&mut r);
        let mut r = Reader::new(&garbage);
        let _ = r.get_bytes();
    }

    #[test]
    fn truncation_always_detected(data in prop::collection::vec(any::<u8>(), 1..128), cut in any::<usize>()) {
        let env = Envelope {
            from: NodeId(1),
            to: NodeId(2),
            round: 3,
            payload: data,
        };
        let bytes = env.encode_to_vec();
        let cut = cut % bytes.len(); // strictly shorter
        let truncated = &bytes[..cut];
        prop_assert!(Envelope::decode_exact(truncated).is_err());
    }

    #[test]
    fn extension_always_detected(extra in prop::collection::vec(any::<u8>(), 1..32)) {
        let env = Envelope { from: NodeId(0), to: NodeId(1), round: 0, payload: vec![9] };
        let mut bytes = env.encode_to_vec();
        bytes.extend_from_slice(&extra);
        prop_assert_eq!(Envelope::decode_exact(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn canonical_encoding_is_injective(
        p1 in prop::collection::vec(any::<u8>(), 0..64),
        p2 in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Distinct payloads encode to distinct bytes (signing depends on it).
        let e1 = Envelope { from: NodeId(0), to: NodeId(1), round: 0, payload: p1.clone() };
        let e2 = Envelope { from: NodeId(0), to: NodeId(1), round: 0, payload: p2.clone() };
        prop_assert_eq!(e1.encode_to_vec() == e2.encode_to_vec(), p1 == p2);
    }
}
