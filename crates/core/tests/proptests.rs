//! Property-based tests for the chain-signature machinery (paper §4,
//! Theorem 4): arbitrary chain shapes, arbitrary tampering, arbitrary
//! store divergence — verification must accept exactly the honest chains
//! and flag everything else.

use fd_core::chain::ChainMessage;
use fd_core::keys::{KeyStore, Keyring};
use fd_crypto::{SchnorrScheme, SignatureScheme};
use fd_simnet::codec::{Decode, Encode};
use fd_simnet::NodeId;
use proptest::prelude::*;

const N: usize = 6;

fn rings() -> Vec<Keyring> {
    let scheme = SchnorrScheme::test_tiny();
    (0..N)
        .map(|i| Keyring::generate(&scheme, NodeId(i as u16), 12345))
        .collect()
}

fn global_store() -> KeyStore {
    let pks: Vec<_> = rings().iter().map(|r| r.pk.clone()).collect();
    KeyStore::global(NodeId(0), &pks)
}

/// Build an honest chain: origin 0, extended through `hops` (each hop a
/// node id 1..N, distinct from predecessor not required by chain rules —
/// any sequence is structurally fine as long as names match assignments).
fn honest_chain(body: &[u8], hops: &[usize]) -> (ChainMessage, NodeId) {
    let scheme = SchnorrScheme::test_tiny();
    let rings = rings();
    let mut msg = ChainMessage::originate(&scheme, &rings[0].sk, NodeId(0), body.to_vec()).unwrap();
    let mut assignee = NodeId(0);
    for &h in hops {
        msg = msg.extend(&scheme, &rings[h].sk, assignee).unwrap();
        assignee = NodeId(h as u16);
    }
    (msg, assignee)
}

fn hop_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..N, 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn honest_chains_always_verify(body in prop::collection::vec(any::<u8>(), 0..64), hops in hop_strategy()) {
        let scheme = SchnorrScheme::test_tiny();
        let (msg, sender) = honest_chain(&body, &hops);
        let store = global_store();
        prop_assert_eq!(msg.verify(&scheme, &store, sender), Ok(sender));
        prop_assert_eq!(msg.signature_count(), hops.len() + 1);
    }

    #[test]
    fn chain_codec_round_trips(body in prop::collection::vec(any::<u8>(), 0..64), hops in hop_strategy()) {
        let (msg, _) = honest_chain(&body, &hops);
        let bytes = msg.encode_to_vec();
        prop_assert_eq!(ChainMessage::decode_exact(&bytes).unwrap(), msg);
    }

    #[test]
    fn any_byte_flip_is_detected(
        body in prop::collection::vec(any::<u8>(), 1..32),
        hops in hop_strategy(),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        // Flip one bit anywhere in the encoded chain: verification must
        // fail (decode error counts as detection too).
        let scheme = SchnorrScheme::test_tiny();
        let (msg, sender) = honest_chain(&body, &hops);
        let mut bytes = msg.encode_to_vec();
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        let store = global_store();
        match ChainMessage::decode_exact(&bytes) {
            Err(_) => {} // malformed: detected
            Ok(tampered) => {
                prop_assert!(
                    tampered.verify(&scheme, &store, sender).is_err(),
                    "bit flip at byte {idx} survived verification"
                );
            }
        }
    }

    #[test]
    fn wrong_immediate_sender_always_detected(
        body in prop::collection::vec(any::<u8>(), 0..32),
        hops in prop::collection::vec(1usize..N, 1..4),
        claim in 0usize..N,
    ) {
        let scheme = SchnorrScheme::test_tiny();
        let (msg, sender) = honest_chain(&body, &hops);
        let claimed = NodeId(claim as u16);
        prop_assume!(claimed != sender);
        let store = global_store();
        prop_assert!(msg.verify(&scheme, &store, claimed).is_err());
    }

    #[test]
    fn extension_preserves_inner_verifiability(
        body in prop::collection::vec(any::<u8>(), 0..32),
        hops in hop_strategy(),
        next in 1usize..N,
    ) {
        // Extending an honest chain honestly keeps it verifiable.
        let scheme = SchnorrScheme::test_tiny();
        let (msg, sender) = honest_chain(&body, &hops);
        let rings = rings();
        let extended = msg.extend(&scheme, &rings[next].sk, sender).unwrap();
        let store = global_store();
        prop_assert_eq!(
            extended.verify(&scheme, &store, NodeId(next as u16)),
            Ok(NodeId(next as u16))
        );
    }

    #[test]
    fn divergent_store_discovers_on_foreign_layer(
        body in prop::collection::vec(any::<u8>(), 0..32),
        signer in 1usize..N,
        foreign_seed in any::<u64>(),
    ) {
        // A store that accepted a DIFFERENT predicate for `signer` must
        // fail the layer (the G3/Theorem-4 mechanism).
        let scheme = SchnorrScheme::test_tiny();
        let rings = rings();
        let msg = ChainMessage::originate(&scheme, &rings[0].sk, NodeId(0), body.clone())
            .unwrap()
            .extend(&scheme, &rings[signer].sk, NodeId(0))
            .unwrap();
        let mut store = global_store();
        let (_, foreign_pk) = scheme.keypair_from_seed(foreign_seed);
        prop_assume!(foreign_pk != rings[signer].pk);
        store.accept(NodeId(signer as u16), foreign_pk);
        prop_assert!(msg.verify(&scheme, &store, NodeId(signer as u16)).is_err());
    }

    #[test]
    fn body_is_bound_to_signature(
        body1 in prop::collection::vec(any::<u8>(), 0..32),
        body2 in prop::collection::vec(any::<u8>(), 0..32),
        hops in hop_strategy(),
    ) {
        prop_assume!(body1 != body2);
        let scheme = SchnorrScheme::test_tiny();
        let (msg, sender) = honest_chain(&body1, &hops);
        let mut swapped = msg;
        swapped.body = body2;
        let store = global_store();
        prop_assert!(swapped.verify(&scheme, &store, sender).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every wire decoder must reject (never panic on) arbitrary bytes —
    /// byzantine nodes control payloads completely, so the decoders are a
    /// direct attack surface.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = ChainMessage::decode_exact(&bytes);
        let _ = fd_core::fd::FdMsg::decode_exact(&bytes);
        let _ = fd_core::fd::NaMsg::decode_exact(&bytes);
        let _ = fd_core::fd::SrMsg::decode_exact(&bytes);
        let _ = fd_core::fd::VecMsg::decode_exact(&bytes);
        let _ = fd_core::ba::DsMsg::decode_exact(&bytes);
        let _ = fd_core::ba::EigMsg::decode_exact(&bytes);
        let _ = fd_core::ba::PkMsg::decode_exact(&bytes);
        let _ = fd_core::ba::DgMsg::decode_exact(&bytes);
    }

    /// Mutating any single byte of an encoded chain either fails to decode
    /// or fails to verify — flipped bits cannot survive both layers.
    #[test]
    fn single_byte_mutations_never_verify(
        hops in prop::collection::vec(1usize..N, 1..3),
        body in prop::collection::vec(any::<u8>(), 1..16),
        byte_index in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let scheme = SchnorrScheme::test_tiny();
        let (msg, sender) = honest_chain(&body, &hops);
        let mut bytes = msg.encode_to_vec();
        let i = byte_index.index(bytes.len());
        bytes[i] ^= mask;
        if let Ok(decoded) = ChainMessage::decode_exact(&bytes) {
            if decoded != msg {
                prop_assert!(
                    decoded.verify(&scheme, &global_store(), sender).is_err(),
                    "mutated chain verified (byte {i}, mask {mask:#x})"
                );
            }
        }
    }
}
