//! # fd-core
//!
//! The primary contribution of
//! [Borcherding, *Efficient Failure Discovery with Limited Authentication*,
//! ICDCS 1995](https://doi.org/10.1109/ICDCS.1995.500023), implemented as a
//! library of protocol automata over [`fd_simnet`]:
//!
//! * [`localauth`] — **local authentication** (paper §3): the 3-round
//!   challenge–response key distribution protocol of Fig. 1, which
//!   establishes per-node key stores without any trusted dealer, at
//!   `3·n·(n−1)` messages, tolerating *any* number of byzantine nodes.
//! * [`chain`] — chain signatures with the paper's §4 name-embedding rule
//!   and the Theorem 4 verification discipline (assignment mismatches are
//!   *discovered*, never silent).
//! * [`fd`] — Failure Discovery protocols: the authenticated chain protocol
//!   of Fig. 2 (`n−1` messages), the non-authenticated witness baseline
//!   (`O(n·t)` messages), and a small-value-range variant.
//! * [`ba`] — Byzantine Agreement on top: the FD→BA extension whose
//!   failure-free runs cost exactly the FD protocol's messages, plus
//!   Dolev–Strong and EIG baselines.
//! * [`adversary`] — a library of byzantine behaviours (key equivocation,
//!   key sharing, value equivocation, chain tampering, forgery, silence)
//!   used to validate Theorems 2 and 4 experimentally.
//! * [`props`] — executable statements of the paper's properties F1–F3 and
//!   G1–G3, plus the degradation contract of the §7 extension.
//! * [`epoch`] — key rotation: re-running local authentication in epochs,
//!   with cross-epoch replays discovered by the unchanged Theorem 4
//!   machinery.
//! * [`runner`] — cluster orchestration over the pluggable
//!   [`runner::NetworkDriver`] seam: every protocol runs on the lockstep
//!   engine (the paper's §2 timing) or the discrete-event engine
//!   (latency models, per-link overrides, adversarial schedules).
//! * [`spec`] — the unified execution API: one typed [`RunSpec`] per
//!   protocol run, executed via [`runner::Cluster::run`], plus
//!   [`Session`], which lazily runs the key distribution once and
//!   amortizes it across many runs (the paper's §6 economics as an
//!   object). Adversaries are declarative values
//!   ([`adversary::AdversarySpec`]), not closures.
//! * [`wire`] — wire schema v1: the versioned, dependency-free JSON
//!   encoding of requests ([`spec::SpecBuilder`]) and reports, shared by
//!   `lafd run --spec`, `lafd serve`, and the remote sweep client.
//! * [`service`] — the sharded session service behind `lafd serve`:
//!   pre-warmed [`Session`]s keyed by `(n, scheme)` reusing keydist,
//!   predicate table, and verification cache across requests, with
//!   bounded LRU eviction and graceful drain.
//! * [`deploy`] — the deployment layer behind `lafd cluster`: a
//!   discovery registry (register/lookup/barrier/teardown over framed
//!   wire-v1 JSON), the per-worker lifecycle over the non-blocking
//!   socket mesh, and the aggregation of per-worker summaries back into
//!   a byte-identical [`runner::FdRunReport`].
//! * `compat` — deprecated pre-`RunSpec` shims (the old per-protocol
//!   `run_*` methods), with the migration table; gated behind the
//!   off-by-default `compat` cargo feature.
//! * [`metrics`] — the paper's closed-form message-complexity
//!   expressions (`3n(n−1)` key distribution, `n−1` chain FD,
//!   `(t+2)(n−1)` non-authenticated, the §6 amortization crossover)
//!   that every run and experiment table is checked against.
//! * [`sweep`] — declarative scenario matrices (`{engine × latency ×
//!   protocol × n × t × adversary × scheme × seed}`) fanned out across a
//!   thread pool, with formula checks, outcome classification, and
//!   byte-deterministic reports.
//! * [`schedsearch`] — adversarial scheduler search: hunts for the
//!   delivery schedule within a latency envelope that maximizes
//!   disagreement, emitting replayable schedule certificates — the
//!   worst-case-adversary counterpart to the sweep's sampled timing.
//! * [`obs`] — zero-dependency observability: phase spans (keydist,
//!   per-round delivery, verification, report assembly) and counters
//!   (verify-cache hits/misses, predicate interning, queue depths), with
//!   deterministic virtual-tick timestamps on the event engine and
//!   wall-clock on the sync engine; exports Chrome trace-event JSON and
//!   folded stacks.
//! * [`report`] — bench-trajectory rendering: parses committed
//!   `BENCH_*.json` baselines and renders markdown/HTML trend tables
//!   with per-cell deltas (the `lafd report` backend).
//!
//! ## Quickstart
//!
//! ```
//! use fd_core::runner::Cluster;
//! use fd_core::spec::{Protocol, RunSpec, Session};
//! use std::sync::Arc;
//!
//! // 7 nodes tolerating t = 2 faults, all honest, tiny test crypto.
//! let cluster = Cluster::new(7, 2, Arc::new(fd_crypto::SchnorrScheme::test_tiny()), 42);
//! let mut session = Session::new(cluster);
//!
//! // One-time key distribution (paper Fig. 1): 3·n·(n−1) messages.
//! assert_eq!(session.keydist().stats.messages_total, 3 * 7 * 6);
//!
//! // Arbitrarily many cheap failure-discovery runs (paper Fig. 2): n−1 each.
//! let run = session.run(&RunSpec::new(Protocol::ChainFd, b"attack at dawn".to_vec()));
//! assert_eq!(run.stats.messages_total, 6);
//! assert!(run.all_decided(b"attack at dawn"));
//! assert_eq!(session.keydist_runs(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod ba;
pub mod chain;
#[cfg(feature = "compat")]
pub mod compat;
pub mod deploy;
pub mod epoch;
pub mod fd;
pub mod keys;
pub mod localauth;
pub mod metrics;
pub mod obs;
pub mod props;
pub mod report;
pub mod runner;
pub mod schedsearch;
pub mod service;
pub mod spec;
pub mod sweep;
pub mod wire;

mod outcome;
mod pool;

pub use adversary::{AdversaryKind, AdversarySpec};
pub use keys::{KeyStore, Keyring};
pub use outcome::{DiscoveryReason, Outcome};
pub use spec::{Protocol, RunSpec, Session};
