//! Chain signatures with the paper's §4 name-embedding rule.
//!
//! A chain-signed message has the structure
//! `{P_{k-1}, { … {P_0, {m}_{S_0}}_{S_1} … }_{S_{k-1}}}_{S_k}`:
//! the innermost payload is signed by its *origin*, and every subsequent
//! signer signs the previous document **together with the name of the node
//! the previous document is assigned to**. Verification (Theorem 4
//! discipline) assigns the outermost layer to the *immediate sender*
//! (network property N2), each inner layer to the node named just outside
//! it, and *discovers a failure* on any predicate failure or name mismatch.
//! This is what substitutes for the missing global-authentication property
//! G3: assignments may go wrong under local authentication, but never
//! silently.

use crate::keys::{KeyStore, VerifyCache};
use crate::outcome::DiscoveryReason;
use fd_crypto::{SecretKey, Signature, SignatureScheme};
use fd_simnet::codec::{decode_seq, CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::NodeId;

/// One signature layer: the name of the node the *inner* document is
/// assigned to, plus the signature of this layer's signer over
/// `(inner_assignee ‖ inner document)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLayer {
    /// Whom the signer assigned the inner document to (the paper's
    /// mandatory embedded name).
    pub inner_assignee: NodeId,
    /// Signature over the canonical layer bytes.
    pub sig: Signature,
}

impl Encode for ChainLayer {
    fn encode(&self, w: &mut Writer) {
        self.inner_assignee.encode(w);
        w.put_bytes(&self.sig.0);
    }
}

impl Decode for ChainLayer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ChainLayer {
            inner_assignee: NodeId::decode(r)?,
            sig: Signature(r.get_bytes()?.to_vec()),
        })
    }
}

/// A chain-signed message (paper §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainMessage {
    /// Claimed origin `P_0` (self-attested inside `sig0`).
    pub origin: NodeId,
    /// The innermost payload `m`.
    pub body: Vec<u8>,
    /// Origin signature `{origin ‖ m}_{S_origin}`.
    pub sig0: Signature,
    /// Outer layers, innermost first.
    pub layers: Vec<ChainLayer>,
}

/// Canonical bytes the origin signs.
fn origin_bytes(origin: NodeId, body: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_raw(b"fd-chain-origin-v1");
    origin.encode(&mut w);
    w.put_bytes(body);
    w.into_bytes()
}

/// Canonical bytes a layer signer signs: `(assignee ‖ inner document)`.
fn layer_bytes(assignee: NodeId, inner_doc: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_raw(b"fd-chain-layer-v1");
    assignee.encode(&mut w);
    w.put_bytes(inner_doc);
    w.into_bytes()
}

impl ChainMessage {
    /// Create the innermost message `{m}_{S_origin}` (what `P_0` sends in
    /// the failure-discovery protocol, Fig. 2).
    ///
    /// # Errors
    ///
    /// Propagates signing errors for malformed secret keys.
    pub fn originate(
        scheme: &dyn SignatureScheme,
        sk: &SecretKey,
        origin: NodeId,
        body: Vec<u8>,
    ) -> Result<Self, fd_crypto::CryptoError> {
        let sig0 = scheme.sign(sk, &origin_bytes(origin, &body))?;
        Ok(ChainMessage {
            origin,
            body,
            sig0,
            layers: Vec::new(),
        })
    }

    /// The canonical document bytes of the chain with its current layers
    /// (this is what the *next* signer signs, together with an assignee
    /// name).
    pub fn document(&self) -> Vec<u8> {
        let mut doc = {
            let mut w = Writer::new();
            self.origin.encode(&mut w);
            w.put_bytes(&self.body);
            w.put_bytes(&self.sig0.0);
            w.into_bytes()
        };
        for layer in &self.layers {
            let mut w = Writer::new();
            layer.inner_assignee.encode(&mut w);
            w.put_bytes(&doc);
            w.put_bytes(&layer.sig.0);
            doc = w.into_bytes();
        }
        doc
    }

    /// Extend the chain: sign the current document together with
    /// `assignee` — the node *this* signer assigns the current document to
    /// (for an honest signer: the verified assignee, i.e. the immediate
    /// sender it received the chain from, or the origin for a bare chain).
    ///
    /// # Errors
    ///
    /// Propagates signing errors for malformed secret keys.
    pub fn extend(
        mut self,
        scheme: &dyn SignatureScheme,
        sk: &SecretKey,
        assignee: NodeId,
    ) -> Result<Self, fd_crypto::CryptoError> {
        let doc = self.document();
        let sig = scheme.sign(sk, &layer_bytes(assignee, &doc))?;
        self.layers.push(ChainLayer {
            inner_assignee: assignee,
            sig,
        });
        Ok(self)
    }

    /// Number of signatures on the chain (origin + layers).
    pub fn signature_count(&self) -> usize {
        1 + self.layers.len()
    }

    /// The signer sequence implied by the chain *given* the immediate
    /// sender: origin, then each layer's signer (layer `k`'s signer is
    /// named by layer `k+1`; the outermost signer is the immediate sender).
    pub fn signer_sequence(&self, immediate_sender: NodeId) -> Vec<NodeId> {
        let mut signers = vec![self.origin];
        for k in 0..self.layers.len() {
            let signer = if k + 1 < self.layers.len() {
                self.layers[k + 1].inner_assignee
            } else {
                immediate_sender
            };
            signers.push(signer);
        }
        signers
    }

    /// Verify the chain against a local [`KeyStore`] per the Theorem 4
    /// discipline, with `immediate_sender` the node the message physically
    /// arrived from (N2).
    ///
    /// On success returns the node the *complete* message is assigned to
    /// (the outermost signer = the immediate sender; the origin for a bare
    /// chain).
    ///
    /// # Errors
    ///
    /// Any of these constitutes discovering a failure (the receiving node's
    /// view differs from all failure-free runs):
    ///
    /// * [`DiscoveryReason::UnknownSigner`] — no accepted predicate for a
    ///   claimed signer;
    /// * [`DiscoveryReason::BadSignature`] — a predicate failed;
    /// * [`DiscoveryReason::NameMismatch`] — a layer's embedded name differs
    ///   from this node's own assignment of the inner document.
    pub fn verify(
        &self,
        scheme: &dyn SignatureScheme,
        store: &KeyStore,
        immediate_sender: NodeId,
    ) -> Result<NodeId, DiscoveryReason> {
        // Innermost: the origin's own signature over (origin ‖ body).
        if store.accepted(self.origin).is_none() {
            return Err(DiscoveryReason::UnknownSigner);
        }
        if !store.assigns(
            scheme,
            self.origin,
            &origin_bytes(self.origin, &self.body),
            &self.sig0,
        ) {
            return Err(DiscoveryReason::BadSignature);
        }

        // Walk outwards, reconstructing the document and checking each
        // layer under the key of its (implied) signer.
        let mut doc = {
            let mut w = Writer::new();
            self.origin.encode(&mut w);
            w.put_bytes(&self.body);
            w.put_bytes(&self.sig0.0);
            w.into_bytes()
        };
        let mut prev_assignee = self.origin;
        for (k, layer) in self.layers.iter().enumerate() {
            // Theorem 4: the embedded name must match *our own* assignment
            // of the inner document.
            if layer.inner_assignee != prev_assignee {
                return Err(DiscoveryReason::NameMismatch);
            }
            let signer = if k + 1 < self.layers.len() {
                self.layers[k + 1].inner_assignee
            } else {
                immediate_sender
            };
            if store.accepted(signer).is_none() {
                return Err(DiscoveryReason::UnknownSigner);
            }
            if !store.assigns(
                scheme,
                signer,
                &layer_bytes(layer.inner_assignee, &doc),
                &layer.sig,
            ) {
                return Err(DiscoveryReason::BadSignature);
            }
            let mut w = Writer::new();
            layer.inner_assignee.encode(&mut w);
            w.put_bytes(&doc);
            w.put_bytes(&layer.sig.0);
            doc = w.into_bytes();
            prev_assignee = signer;
        }
        Ok(prev_assignee)
    }

    /// [`ChainMessage::verify`] through the store's per-run
    /// [`VerifyCache`], when one is attached (identical result either
    /// way).
    ///
    /// Two memoization layers compose here. The store's signature-level
    /// cache (inside [`KeyStore::assigns`]) already spares the public-key
    /// operations, but the Theorem 4 discipline still *reconstructs and
    /// hashes* every nested submessage at every hop — `O(L²)` bytes for an
    /// `L`-layer chain. The chain-level receipt short-circuits all of it
    /// for repeated receipts of the same bytes: the dissemination phase of
    /// chain FD sends one identical chain to `n − t − 1` nodes, and every
    /// Dolev–Strong relay broadcast reaches `n − 1` verifiers, so all but
    /// the first pay one linear hash instead of a quadratic re-walk.
    ///
    /// The receipt key covers the full chain encoding, the immediate
    /// sender, *and the store's accepted predicate for every implied
    /// signer* — so stores that disagree about a faulty node's key (the G3
    /// gap) hash to different receipts and keep their genuinely different
    /// verdicts.
    ///
    /// # Errors
    ///
    /// Exactly as [`ChainMessage::verify`].
    pub fn verify_cached(
        &self,
        scheme: &dyn SignatureScheme,
        store: &KeyStore,
        immediate_sender: NodeId,
    ) -> Result<NodeId, DiscoveryReason> {
        let Some(cache) = store.cache() else {
            return self.verify(scheme, store, immediate_sender);
        };
        let encoded = self.encode_to_vec();
        let scheme_name = scheme.name();
        let sender_bytes = immediate_sender.0.to_be_bytes();
        let mut parts: Vec<&[u8]> = vec![scheme_name.as_bytes(), &sender_bytes, &encoded];
        let signers = self.signer_sequence(immediate_sender);
        for signer in &signers {
            match store.accepted(*signer) {
                // A presence marker keeps "accepted an empty predicate"
                // distinct from "accepted nothing".
                Some(pk) => {
                    parts.push(b"+");
                    parts.push(&pk.0);
                }
                None => parts.push(b"-"),
            }
        }
        let key = VerifyCache::chain_key(&parts);
        if let Some(receipt) = cache.chain_get(&key) {
            return receipt;
        }
        let receipt = self.verify(scheme, store, immediate_sender);
        cache.chain_put(key, receipt.clone());
        receipt
    }
}

impl Encode for ChainMessage {
    fn encode(&self, w: &mut Writer) {
        self.origin.encode(w);
        w.put_bytes(&self.body);
        w.put_bytes(&self.sig0.0);
        self.layers.as_slice().encode(w);
    }
}

impl Decode for ChainMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ChainMessage {
            origin: NodeId::decode(r)?,
            body: r.get_bytes()?.to_vec(),
            sig0: Signature(r.get_bytes()?.to_vec()),
            layers: decode_seq::<ChainLayer>(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keyring;
    use fd_crypto::SchnorrScheme;

    fn setup(n: usize) -> (SchnorrScheme, Vec<Keyring>, KeyStore) {
        let scheme = SchnorrScheme::test_tiny();
        let rings: Vec<Keyring> = (0..n)
            .map(|i| Keyring::generate(&scheme, NodeId(i as u16), 11))
            .collect();
        let pks: Vec<_> = rings.iter().map(|r| r.pk.clone()).collect();
        let store = KeyStore::global(NodeId(0), &pks);
        (scheme, rings, store)
    }

    fn chain_through(
        scheme: &SchnorrScheme,
        rings: &[Keyring],
        body: &[u8],
        hops: &[usize],
    ) -> ChainMessage {
        let mut msg =
            ChainMessage::originate(scheme, &rings[0].sk, NodeId(0), body.to_vec()).unwrap();
        let mut assignee = NodeId(0);
        for &h in hops {
            msg = msg.extend(scheme, &rings[h].sk, assignee).unwrap();
            assignee = NodeId(h as u16);
        }
        msg
    }

    #[test]
    fn bare_chain_verifies_to_origin() {
        let (scheme, rings, store) = setup(3);
        let msg = chain_through(&scheme, &rings, b"v", &[]);
        assert_eq!(msg.verify(&scheme, &store, NodeId(0)), Ok(NodeId(0)));
        assert_eq!(msg.signature_count(), 1);
    }

    #[test]
    fn multi_layer_chain_verifies_to_sender() {
        let (scheme, rings, store) = setup(4);
        // P0 -> P1 -> P2, received from P2.
        let msg = chain_through(&scheme, &rings, b"v", &[1, 2]);
        assert_eq!(msg.verify(&scheme, &store, NodeId(2)), Ok(NodeId(2)));
        assert_eq!(
            msg.signer_sequence(NodeId(2)),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn wrong_immediate_sender_discovered() {
        let (scheme, rings, store) = setup(4);
        let msg = chain_through(&scheme, &rings, b"v", &[1, 2]);
        // P3 forwards P2's chain without signing: outer layer now fails
        // under P3's key.
        assert_eq!(
            msg.verify(&scheme, &store, NodeId(3)),
            Err(DiscoveryReason::BadSignature)
        );
    }

    #[test]
    fn tampered_body_discovered() {
        let (scheme, rings, store) = setup(3);
        let mut msg = chain_through(&scheme, &rings, b"v", &[1]);
        msg.body = b"w".to_vec();
        assert_eq!(
            msg.verify(&scheme, &store, NodeId(1)),
            Err(DiscoveryReason::BadSignature)
        );
    }

    #[test]
    fn wrong_embedded_name_discovered() {
        let (scheme, rings, store) = setup(4);
        // P1 extends but embeds the wrong assignee name (P2 instead of P0).
        let msg = ChainMessage::originate(&scheme, &rings[0].sk, NodeId(0), b"v".to_vec())
            .unwrap()
            .extend(&scheme, &rings[1].sk, NodeId(2))
            .unwrap();
        assert_eq!(
            msg.verify(&scheme, &store, NodeId(1)),
            Err(DiscoveryReason::NameMismatch)
        );
    }

    #[test]
    fn forged_origin_discovered() {
        let (scheme, rings, store) = setup(3);
        // P1 claims a body originated at P0 but signs with its own key.
        let msg = ChainMessage::originate(&scheme, &rings[1].sk, NodeId(0), b"v".to_vec()).unwrap();
        assert_eq!(
            msg.verify(&scheme, &store, NodeId(0)),
            Err(DiscoveryReason::BadSignature)
        );
    }

    #[test]
    fn unknown_signer_discovered() {
        let (scheme, rings, _) = setup(3);
        let msg = chain_through(&scheme, &rings, b"v", &[1]);
        // A store that never accepted P1's key cannot assign the layer.
        let mut store = KeyStore::new(3, NodeId(2));
        store.accept(NodeId(0), rings[0].pk.clone());
        assert_eq!(
            msg.verify(&scheme, &store, NodeId(1)),
            Err(DiscoveryReason::UnknownSigner)
        );
    }

    #[test]
    fn equivocated_key_discovered_at_minority() {
        // The G3 attack: faulty P1 distributed pk_a to P2 and pk_b to P3.
        // P1 signs with sk_a; P2 assigns fine, P3 discovers. (Theorem 4.)
        let scheme = SchnorrScheme::test_tiny();
        let p0 = Keyring::generate(&scheme, NodeId(0), 1);
        let (sk_a, pk_a) = scheme.keypair_from_seed(1001);
        let (_, pk_b) = scheme.keypair_from_seed(1002);

        let msg = ChainMessage::originate(&scheme, &p0.sk, NodeId(0), b"v".to_vec()).unwrap();
        let msg = ChainMessage {
            origin: msg.origin,
            body: msg.body.clone(),
            sig0: msg.sig0.clone(),
            layers: vec![],
        }
        .extend(&scheme, &sk_a, NodeId(0))
        .unwrap();

        let mut store2 = KeyStore::new(4, NodeId(2));
        store2.accept(NodeId(0), p0.pk.clone());
        store2.accept(NodeId(1), pk_a);
        let mut store3 = KeyStore::new(4, NodeId(3));
        store3.accept(NodeId(0), p0.pk.clone());
        store3.accept(NodeId(1), pk_b);

        assert_eq!(msg.verify(&scheme, &store2, NodeId(1)), Ok(NodeId(1)));
        assert_eq!(
            msg.verify(&scheme, &store3, NodeId(1)),
            Err(DiscoveryReason::BadSignature)
        );
    }

    #[test]
    fn codec_round_trip() {
        let (scheme, rings, _) = setup(3);
        let msg = chain_through(&scheme, &rings, b"value", &[1, 2]);
        let bytes = msg.encode_to_vec();
        assert_eq!(ChainMessage::decode_exact(&bytes).unwrap(), msg);
    }

    #[test]
    fn document_changes_with_every_layer() {
        let (scheme, rings, _) = setup(3);
        let m0 = chain_through(&scheme, &rings, b"v", &[]);
        let m1 = chain_through(&scheme, &rings, b"v", &[1]);
        assert_ne!(m0.document(), m1.document());
    }
}
