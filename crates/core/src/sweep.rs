//! Parallel scenario sweeps over `{engine × latency × protocol × n × t ×
//! adversary × scheme × seed}`.
//!
//! A [`SweepMatrix`] declares the axes; [`SweepMatrix::scenarios`] expands
//! them into the cartesian product, dropping combinations that violate a
//! protocol's admissibility bound (`t + 2 ≤ n`, `n > 3t` for the agreement
//! extensions, `n > 4t` for Phase King), pair an adversary with a
//! protocol it cannot speak, or pair the synchronous engine with a latency
//! model it cannot express. [`run_sweep`] fans the scenarios out across a
//! thread pool — every [`crate::runner::Cluster`] run is deterministic and
//! independent, so the sweep is embarrassingly parallel and its report is
//! byte-identical regardless of thread count.
//!
//! Each scenario's measured message count is checked against the paper's
//! closed-form expressions in [`crate::metrics`], and its outcomes are
//! classified so that the one state the paper forbids — two correct nodes
//! deciding different values with nobody discovering a failure — is
//! surfaced as [`SweepOutcome::SilentDisagreement`] and fails the row.
//!
//! Two latency-related rules apply on top:
//!
//! * **Cross-validation.** An event-engine scenario under
//!   [`LatencySpec::Synchronous`] is also executed on the synchronous
//!   engine, and the row fails unless message counts, bytes, and per-node
//!   outcomes match exactly ([`ScenarioRow::cross_ok`]).
//! * **Relaxed formulas under timing faults.** Under non-synchronous
//!   latency the closed forms no longer apply (late messages are
//!   *discovered* as timing failures); such rows only demand the safety
//!   property — no silent disagreement.
//!
//! ```
//! use fd_core::sweep::{run_sweep, SweepMatrix};
//!
//! let matrix = SweepMatrix::quick();
//! let report = run_sweep(&matrix, 2);
//! assert!(report.all_ok());
//! assert!(report.rows.len() >= 8);
//! ```

use crate::adversary::AdversarySpec;
use crate::metrics;
use crate::pool;
use crate::runner::{Cluster, FdRunReport};
use crate::schedsearch::{self, Score, SearchConfig, Strategy};
use crate::spec::{RunSpec, Session};
use fd_crypto::{DsaScheme, SchnorrScheme, SignatureScheme};
use fd_simnet::{Engine, LatencySpec, LinkLatencySpec};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

// The sweep's protocol and adversary axes migrated into the unified
// execution API ([`crate::spec`] / [`crate::adversary`]); re-exported
// here so matrix declarations (and old imports) keep reading naturally.
pub use crate::adversary::AdversaryKind;
pub use crate::spec::Protocol;

// Deprecated pre-`RunSpec` dispatch helpers, importable from their old
// home for old callers built with `--features compat`.
#[allow(deprecated)]
#[cfg(feature = "compat")]
pub use crate::compat::{run_keydist_for, run_protocol_with};

/// Signature-scheme selector (sweeps measure message counts, which are
/// crypto-independent, so the tiny test groups are the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchemeSpec {
    /// Schnorr over the tiny test group (fast; the default).
    Tiny,
    /// DSA over the tiny test group.
    DsaTiny,
    /// Schnorr over a 512-bit group (slow; for wire-size sweeps).
    S512,
}

impl SchemeSpec {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SchemeSpec::Tiny => "tiny",
            SchemeSpec::DsaTiny => "dsa-tiny",
            SchemeSpec::S512 => "s512",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Result<SchemeSpec, String> {
        Ok(match name {
            "tiny" | "schnorr-tiny" => SchemeSpec::Tiny,
            "dsa-tiny" | "dsa" => SchemeSpec::DsaTiny,
            "s512" => SchemeSpec::S512,
            other => return Err(format!("unknown scheme {other} (tiny|dsa-tiny|s512)")),
        })
    }

    /// Instantiate the scheme.
    pub fn build(self) -> Arc<dyn SignatureScheme> {
        match self {
            SchemeSpec::Tiny => Arc::new(SchnorrScheme::test_tiny()),
            SchemeSpec::DsaTiny => Arc::new(DsaScheme::test_tiny()),
            SchemeSpec::S512 => Arc::new(SchnorrScheme::s512()),
        }
    }
}

impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Rule deriving the fault budgets swept for each system size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultRule {
    /// The classic `t = ⌊(n−1)/3⌋` (clamped to `n − 2`).
    Classic,
    /// An explicit list of budgets; inadmissible `(n, t)` pairs are
    /// dropped per protocol.
    Explicit(Vec<usize>),
}

impl FaultRule {
    /// The budgets to try for a system of size `n`.
    pub fn budgets(&self, n: usize) -> Vec<usize> {
        match self {
            FaultRule::Classic => vec![(n.saturating_sub(1) / 3).min(n.saturating_sub(2))],
            FaultRule::Explicit(list) => list.clone(),
        }
    }
}

/// The adversarial-scheduler axis of a sweep: every event-engine row
/// whose latency envelope leaves schedule freedom (and that carries no
/// per-link override) additionally runs a bounded schedule search and
/// records the worst schedule found (see [`crate::schedsearch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchAxis {
    /// Protocol executions each row's search may spend.
    pub budget: usize,
    /// Search strategy.
    pub strategy: Strategy,
}

/// The axes of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepMatrix {
    /// Protocols to run.
    pub protocols: Vec<Protocol>,
    /// System sizes.
    pub sizes: Vec<usize>,
    /// Fault-budget rule.
    pub fault_rule: FaultRule,
    /// Adversaries to inject.
    pub adversaries: Vec<AdversaryKind>,
    /// Signature schemes.
    pub schemes: Vec<SchemeSpec>,
    /// RNG seeds (each seed derives fresh key material and a fresh value).
    pub seeds: Vec<u64>,
    /// Execution engines.
    pub engines: Vec<Engine>,
    /// Latency models (event engine only; the synchronous engine is
    /// paired exclusively with [`LatencySpec::Synchronous`]).
    pub latencies: Vec<LatencySpec>,
    /// Per-link latency overrides applied to every event-engine row
    /// (default: none). Rows with overrides are treated like
    /// timing-faulted rows: no closed-form expectation, no
    /// cross-validation, but silent disagreement still fails them.
    pub link_latency: Vec<LinkLatencySpec>,
    /// Optional adversarial scheduler search (default: off). Attaches to
    /// event-engine rows whose latency has schedule freedom
    /// ([`LatencySpec::has_schedule_freedom`]); rows under degenerate
    /// latency or with per-link overrides skip it.
    pub search: Option<SearchAxis>,
}

impl SweepMatrix {
    /// The default matrix behind `lafd sweep`: five protocols, three
    /// sizes, honest and silent-relay runs, two seeds — 60 scenarios.
    pub fn default_matrix() -> Self {
        SweepMatrix {
            protocols: vec![
                Protocol::ChainFd,
                Protocol::NonAuthFd,
                Protocol::FdToBa,
                Protocol::Degradable,
                Protocol::DolevStrong,
            ],
            sizes: vec![4, 7, 10],
            fault_rule: FaultRule::Classic,
            adversaries: vec![AdversaryKind::None, AdversaryKind::SilentRelay],
            schemes: vec![SchemeSpec::Tiny],
            seeds: vec![1, 2],
            engines: vec![Engine::Sync],
            latencies: vec![LatencySpec::Synchronous],
            link_latency: Vec::new(),
            search: None,
        }
    }

    /// A small failure-free matrix for tests and doctests (8 scenarios).
    pub fn quick() -> Self {
        SweepMatrix {
            protocols: vec![Protocol::ChainFd, Protocol::NonAuthFd],
            sizes: vec![4, 6],
            fault_rule: FaultRule::Classic,
            adversaries: vec![AdversaryKind::None],
            schemes: vec![SchemeSpec::Tiny],
            seeds: vec![1, 2],
            engines: vec![Engine::Sync],
            latencies: vec![LatencySpec::Synchronous],
            link_latency: Vec::new(),
            search: None,
        }
    }

    /// The cross-validation matrix: the default protocols on the event
    /// engine under synchronous latency, so every row re-runs on the
    /// synchronous engine and must match byte-for-byte
    /// ([`ScenarioRow::cross_ok`]).
    pub fn cross_validation() -> Self {
        SweepMatrix {
            engines: vec![Engine::Event],
            sizes: vec![4, 7],
            ..SweepMatrix::default_matrix()
        }
    }

    /// The timing-fault matrix: jitter, partial synchrony, and a uniform
    /// two-round delay on the event engine (48 scenarios). Late messages
    /// surface as discovered timing failures; the rows assert that none of
    /// them ever becomes silent disagreement.
    pub fn latency_matrix() -> Self {
        SweepMatrix {
            protocols: vec![
                Protocol::ChainFd,
                Protocol::NonAuthFd,
                Protocol::FdToBa,
                Protocol::DolevStrong,
            ],
            sizes: vec![4, 7],
            fault_rule: FaultRule::Classic,
            adversaries: vec![AdversaryKind::None],
            schemes: vec![SchemeSpec::Tiny],
            seeds: vec![1, 2],
            engines: vec![Engine::Event],
            latencies: vec![
                LatencySpec::Jitter { extra: 1 },
                LatencySpec::PartialSynchrony { gst: 2, extra: 1 },
                LatencySpec::Fixed { rounds: 2 },
            ],
            link_latency: Vec::new(),
            search: None,
        }
    }

    /// Expand the axes into concrete scenarios, skipping inadmissible
    /// `(protocol, n, t)` shapes, `(protocol, adversary)` pairs, and
    /// `(engine, latency)` pairs. The order is the deterministic
    /// nested-loop order of the axes.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        // Normalization can collapse distinct specs (e.g. `sync` and
        // `fixed:1`) onto the same pair; emit each pair once.
        let mut seen_pairs = BTreeSet::new();
        for &engine in &self.engines {
            for &latency in &self.latencies {
                // Specs equivalent to synchrony keep the strict checks.
                let latency = latency.normalize();
                // The synchronous engine has no notion of latency.
                if engine == Engine::Sync && latency != LatencySpec::Synchronous {
                    continue;
                }
                if !seen_pairs.insert((engine, latency)) {
                    continue;
                }
                for &protocol in &self.protocols {
                    for &n in &self.sizes {
                        for t in self.fault_rule.budgets(n) {
                            if !protocol.admissible(n, t) {
                                continue;
                            }
                            for &adversary in &self.adversaries {
                                if !adversary.applies_to(protocol) {
                                    continue;
                                }
                                // Injected adversaries replace relay P_1, which
                                // only participates meaningfully when t >= 1.
                                if adversary != AdversaryKind::None && t == 0 {
                                    continue;
                                }
                                for &scheme in &self.schemes {
                                    for &seed in &self.seeds {
                                        out.push(Scenario {
                                            protocol,
                                            n,
                                            t,
                                            adversary,
                                            scheme,
                                            seed,
                                            engine,
                                            latency,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One fully specified run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Protocol under test.
    pub protocol: Protocol,
    /// System size.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// Injected behaviour.
    pub adversary: AdversaryKind,
    /// Signature scheme.
    pub scheme: SchemeSpec,
    /// Determinism seed.
    pub seed: u64,
    /// Execution engine.
    pub engine: Engine,
    /// Latency model (event engine only).
    pub latency: LatencySpec,
}

impl Scenario {
    /// The value the sender proposes in this scenario (derived from the
    /// seed so different seeds exercise different payloads).
    pub fn value(&self) -> Vec<u8> {
        format!("sweep-value-{}", self.seed).into_bytes()
    }

    /// Whether the paper's failure-free expectations (closed-form message
    /// count, everyone decides the sender's value) apply: no adversary and
    /// no timing faults.
    pub fn strict(&self) -> bool {
        self.adversary == AdversaryKind::None && self.latency == LatencySpec::Synchronous
    }

    /// The [`RunSpec`] this scenario executes: the seeded value, the
    /// sweep's fixed default value, and the scripted adversary at the
    /// first chain relay.
    pub fn spec(&self) -> RunSpec {
        RunSpec::new(self.protocol, self.value())
            .with_default_value(b"sweep-default".to_vec())
            .with_adversary(AdversarySpec::scripted(self.adversary))
    }

    /// The cluster this scenario executes on (before the engine choice of
    /// a cross-validation twin is applied).
    pub fn cluster(&self) -> Cluster {
        Cluster::new(self.n, self.t, self.scheme.build(), self.seed)
            .with_engine(self.engine)
            .with_latency(self.latency)
    }
}

/// Classification of a run's correct-node outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepOutcome {
    /// Every correct node decided the same value.
    AllDecided,
    /// At least one correct node discovered a failure.
    Discovered,
    /// Some nodes are still pending, but no two decided differently.
    Incomplete,
    /// Two correct nodes decided different values and nobody discovered —
    /// the state the paper's F-properties forbid. Always a failure.
    SilentDisagreement,
}

impl SweepOutcome {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SweepOutcome::AllDecided => "all_decided",
            SweepOutcome::Discovered => "discovered",
            SweepOutcome::Incomplete => "incomplete",
            SweepOutcome::SilentDisagreement => "silent_disagreement",
        }
    }
}

impl fmt::Display for SweepOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of the adversarial scheduler search attached to one row by
/// [`SweepMatrix::search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchRowSummary {
    /// The strategy the row's search used.
    pub strategy: Strategy,
    /// Episodes executed.
    pub episodes: usize,
    /// The worst (highest-scoring) schedule found.
    pub best: Score,
    /// Whether the best schedule's certificate replayed exactly.
    pub replay_ok: bool,
}

/// Measurements and checks from one executed scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRow {
    /// The scenario that produced this row.
    pub scenario: Scenario,
    /// Key-distribution messages, for protocols that ran one.
    pub keydist_messages: Option<usize>,
    /// Whether the key distribution matched `3n(n−1)` (vacuously true
    /// when no key distribution ran).
    pub keydist_ok: bool,
    /// Messages of the protocol run itself.
    pub messages: usize,
    /// Wire bytes of the protocol run.
    pub bytes: usize,
    /// Rounds in which at least one message was sent.
    pub comm_rounds: usize,
    /// The closed-form expectation (failure-free scenarios only).
    pub expected_messages: Option<usize>,
    /// Outcome classification over the correct nodes.
    pub outcome: SweepOutcome,
    /// Whether the decided value matched the sender's input (failure-free
    /// scenarios only; vacuously true otherwise).
    pub value_ok: bool,
    /// Whether the synchronous-engine twin run matched exactly (event
    /// engine under synchronous latency only; vacuously true otherwise).
    pub cross_ok: bool,
    /// The row's adversarial scheduler search, when the matrix carried a
    /// [`SearchAxis`] and the row ran on the event engine.
    pub search: Option<SearchRowSummary>,
}

impl ScenarioRow {
    /// Whether the failure-free closed-form expectations applied to this
    /// row — an adversary, a non-synchronous latency, or a per-link
    /// override each waives them.
    fn strict(&self) -> bool {
        self.expected_messages.is_some()
    }

    /// Whether the row upholds every check that applies to it:
    /// failure-free synchronous rows must decide the sender's value at
    /// exactly the closed-form message count; adversarial or timing-faulted
    /// rows must never exhibit silent disagreement; event-engine rows under
    /// synchronous latency must match their synchronous-engine twin; a
    /// schedule search must never find silent disagreement and its best
    /// certificate must replay (loud findings are recorded, not failures).
    pub fn ok(&self) -> bool {
        let formula_ok = self
            .expected_messages
            .is_none_or(|expected| expected == self.messages);
        let outcome_ok = if self.strict() {
            self.outcome == SweepOutcome::AllDecided
        } else {
            self.outcome != SweepOutcome::SilentDisagreement
        };
        let search_ok = self
            .search
            .as_ref()
            .is_none_or(|s| !s.best.silent_disagreement && s.replay_ok);
        formula_ok && outcome_ok && self.keydist_ok && self.value_ok && self.cross_ok && search_ok
    }
}

/// Aggregated results of a sweep, in scenario order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// One row per scenario.
    pub rows: Vec<ScenarioRow>,
    /// The matrix-wide per-link latency overrides the rows ran under
    /// (empty for plain sweeps). Recorded so an archived report remains
    /// self-describing: link overrides waive the closed-form and
    /// cross-validation checks, which is otherwise invisible per row.
    pub link_latency: Vec<LinkLatencySpec>,
}

impl SweepReport {
    /// Whether every row passed its checks.
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(ScenarioRow::ok)
    }

    /// The rows that failed their checks.
    pub fn failures(&self) -> Vec<&ScenarioRow> {
        self.rows.iter().filter(|r| !r.ok()).collect()
    }

    /// Total messages across all runs (including key distributions).
    pub fn messages_total(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.messages + r.keydist_messages.unwrap_or(0))
            .sum()
    }

    /// Serialize as deterministic JSON (stable field order, no floats, no
    /// timestamps): rerunning the same matrix yields identical bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"link_latency\": [");
        for (i, link) in self.link_latency.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push('"');
            s.push_str(&link.name());
            s.push('"');
        }
        s.push_str("],\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sc = &row.scenario;
            s.push_str("    {");
            push_json_str(&mut s, "protocol", sc.protocol.name());
            s.push_str(&format!(", \"n\": {}, \"t\": {}, ", sc.n, sc.t));
            push_json_str(&mut s, "adversary", sc.adversary.name());
            s.push_str(", ");
            push_json_str(&mut s, "scheme", sc.scheme.name());
            s.push_str(&format!(", \"seed\": {}, ", sc.seed));
            push_json_str(&mut s, "engine", sc.engine.name());
            s.push_str(", ");
            push_json_str(&mut s, "latency", &sc.latency.name());
            match row.keydist_messages {
                Some(m) => s.push_str(&format!(", \"keydist_messages\": {m}")),
                None => s.push_str(", \"keydist_messages\": null"),
            }
            s.push_str(&format!(
                ", \"messages\": {}, \"bytes\": {}, \"comm_rounds\": {}",
                row.messages, row.bytes, row.comm_rounds
            ));
            match row.expected_messages {
                Some(m) => s.push_str(&format!(", \"expected_messages\": {m}")),
                None => s.push_str(", \"expected_messages\": null"),
            }
            s.push_str(", ");
            push_json_str(&mut s, "outcome", row.outcome.name());
            s.push_str(&format!(", \"cross_ok\": {}", row.cross_ok));
            match &row.search {
                Some(sr) => s.push_str(&format!(
                    ", \"search\": {{\"strategy\": \"{}\", \"episodes\": {}, \
                     \"best\": \"{}\", \"replay_ok\": {}}}",
                    sr.strategy, sr.episodes, sr.best, sr.replay_ok
                )),
                None => s.push_str(", \"search\": null"),
            }
            s.push_str(&format!(", \"ok\": {}}}", row.ok()));
            if i + 1 < self.rows.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"summary\": {{\"scenarios\": {}, \"ok\": {}, \"failed\": {}, \"messages_total\": {}}}\n",
            self.rows.len(),
            self.rows.iter().filter(|r| r.ok()).count(),
            self.failures().len(),
            self.messages_total()
        ));
        s.push_str("}\n");
        s
    }

    /// Render as a markdown table plus a summary line (deterministic).
    pub fn to_markdown(&self) -> String {
        let mut s = String::from("# lafd sweep report\n\n");
        if !self.link_latency.is_empty() {
            let links: Vec<String> = self
                .link_latency
                .iter()
                .map(LinkLatencySpec::name)
                .collect();
            s.push_str(&format!(
                "Per-link latency overrides: `{}` (closed-form and \
                 cross-validation checks waived on event rows).\n\n",
                links.join("`, `")
            ));
        }
        s.push_str(
            "| protocol | n | t | adversary | scheme | seed | engine | latency | keydist | msgs | formula | bytes | rounds | outcome | search | ok |\n",
        );
        s.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n");
        for row in &self.rows {
            let sc = &row.scenario;
            let keydist = row
                .keydist_messages
                .map_or_else(|| "—".to_string(), |m| m.to_string());
            let formula = row
                .expected_messages
                .map_or_else(|| "—".to_string(), |m| m.to_string());
            let search = row.search.as_ref().map_or_else(
                || "—".to_string(),
                |sr| format!("{}:{}", sr.strategy, sr.best),
            );
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                sc.protocol,
                sc.n,
                sc.t,
                sc.adversary,
                sc.scheme,
                sc.seed,
                sc.engine,
                sc.latency,
                keydist,
                row.messages,
                formula,
                row.bytes,
                row.comm_rounds,
                row.outcome,
                search,
                if row.ok() { "yes" } else { "NO" },
            ));
        }
        s.push_str(&format!(
            "\n{} scenarios, {} ok, {} failed, {} total messages.\n",
            self.rows.len(),
            self.rows.iter().filter(|r| r.ok()).count(),
            self.failures().len(),
            self.messages_total()
        ));
        s
    }
}

fn push_json_str(s: &mut String, key: &str, value: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\": \"");
    for c in value.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Where a sweep's scenario runs actually execute.
///
/// The sweep logic — matrix expansion, closed-form expectations,
/// cross-validation, outcome classification — is independent of *where* a
/// run happens. This seam carries exactly the part that moves: produce
/// the keydist message count and the [`FdRunReport`] for one scenario on
/// one engine. [`LocalExecutor`] runs in-process; `lafd sweep --remote`
/// implements the same trait over the `lafd serve` wire protocol, and the
/// report bytes are identical either way (the service integration tests
/// assert this).
///
/// The scheduler-search axis always runs locally — it is a tight
/// schedule-mutation loop around one scenario, not a batch of independent
/// runs, so shipping it over the wire would serialize the search.
pub trait ScenarioExecutor: Sync {
    /// Execute `scenario` on `engine` (the cross-validation twin passes
    /// [`Engine::Sync`] here regardless of `scenario.engine`) with the
    /// matrix-wide per-link overrides, returning the keydist message
    /// count (for protocols that ran one) and the run report.
    fn execute(
        &self,
        scenario: &Scenario,
        engine: Engine,
        link_latency: &[LinkLatencySpec],
    ) -> Result<(Option<usize>, FdRunReport), String>;
}

/// The in-process executor: a fresh [`Session`] per scenario. Per-link
/// latency overrides only apply on the event engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalExecutor;

impl ScenarioExecutor for LocalExecutor {
    fn execute(
        &self,
        scenario: &Scenario,
        engine: Engine,
        link_latency: &[LinkLatencySpec],
    ) -> Result<(Option<usize>, FdRunReport), String> {
        let cluster = Cluster::new(
            scenario.n,
            scenario.t,
            scenario.scheme.build(),
            scenario.seed,
        )
        .with_engine(engine)
        .with_latency(scenario.latency)
        .with_link_latency(if engine == Engine::Event {
            link_latency.to_vec()
        } else {
            Vec::new()
        });
        let mut session = Session::new(cluster);
        let run = session.run(&scenario.spec());
        Ok((session.keydist_messages(), run))
    }
}

/// Execute one scenario with the default extras (no per-link overrides,
/// no schedule search) — see [`run_scenario_with`].
pub fn run_scenario(scenario: &Scenario) -> ScenarioRow {
    run_scenario_with(scenario, &[], None)
}

/// Execute one scenario with the matrix-wide extras: per-link latency
/// overrides and the optional scheduler-search axis.
///
/// Rows with per-link overrides are treated like timing-faulted rows —
/// the closed-form expectations and the synchronous-engine
/// cross-validation are waived, and [`classify`] runs with
/// `network_faulted = true` — but silent disagreement still fails them.
pub fn run_scenario_with(
    scenario: &Scenario,
    link_latency: &[LinkLatencySpec],
    search: Option<SearchAxis>,
) -> ScenarioRow {
    run_scenario_with_executor(scenario, link_latency, search, &LocalExecutor)
        .expect("the local executor is infallible")
}

/// [`run_scenario_with`] through an explicit [`ScenarioExecutor`] — the
/// entry point remote sweeps use. Errors surface the executor's failure
/// (a lost connection, a service-side rejection); the local executor
/// never errors.
pub fn run_scenario_with_executor(
    scenario: &Scenario,
    link_latency: &[LinkLatencySpec],
    search: Option<SearchAxis>,
    executor: &dyn ScenarioExecutor,
) -> Result<ScenarioRow, String> {
    let has_links = !link_latency.is_empty() && scenario.engine == Engine::Event;
    let (keydist_messages, run) = executor.execute(scenario, scenario.engine, link_latency)?;
    let keydist_ok = keydist_messages.is_none_or(|m| m == metrics::keydist_messages(scenario.n));

    // Cross-validation: the event engine under synchronous latency must
    // reproduce the synchronous engine exactly — message counts, bytes,
    // and every node's outcome. Per-link overrides change delivery times,
    // so they waive the comparison.
    let cross_ok = if scenario.engine == Engine::Event
        && scenario.latency == LatencySpec::Synchronous
        && !has_links
    {
        let (twin_keydist, twin) = executor.execute(scenario, Engine::Sync, &[])?;
        twin_keydist == keydist_messages && twin.stats == run.stats && twin.outcomes == run.outcomes
    } else {
        true
    };

    let outcome = classify(
        &run,
        scenario.latency != LatencySpec::Synchronous || has_links,
    );
    let strict = scenario.strict() && !has_links;
    let expected_messages =
        strict.then(|| scenario.protocol.expected_messages(scenario.n, scenario.t));
    let value_ok = !strict || run.all_decided(&scenario.value());

    // The scheduler-search axis: hunt for the worst admissible schedule
    // of this row's scenario. The search only applies where it can learn
    // anything: event-engine rows whose latency envelope leaves schedule
    // freedom (`sync`/`fixed:D` rows would replay the baseline `budget`
    // times), and rows without per-link overrides (the search explores
    // the base spec's envelope, which a per-link override changes — a
    // summary of the linkless scenario would misdescribe the row).
    let search = search
        .filter(|_| {
            scenario.engine == Engine::Event
                && scenario.latency.has_schedule_freedom()
                && !has_links
        })
        .map(|axis| {
            let config = SearchConfig {
                scheme: scenario.scheme,
                latency: scenario.latency,
                adversary: scenario.adversary,
                strategy: axis.strategy,
                budget: axis.budget.max(1),
                ..SearchConfig::new(scenario.protocol, scenario.n, scenario.t, scenario.seed)
            };
            let report = schedsearch::run_search(&config)
                .expect("admissible scenario yields a valid search config");
            SearchRowSummary {
                strategy: axis.strategy,
                episodes: report.episodes.len(),
                best: report.best_score,
                replay_ok: report.replay_ok,
            }
        });

    Ok(ScenarioRow {
        scenario: *scenario,
        keydist_messages,
        keydist_ok,
        messages: run.stats.messages_total,
        bytes: run.stats.bytes_total,
        comm_rounds: run.stats.per_round.iter().filter(|&&x| x > 0).count(),
        expected_messages,
        outcome,
        value_ok,
        cross_ok,
        search,
    })
}

/// Classify the correct-node outcomes of a run.
///
/// `network_faulted` says whether the run violated the network model N1
/// itself (non-synchronous latency or injected link faults). In that case
/// — and only then — engaging the FD→BA fallback counts as discovery
/// evidence: the fallback fires after a node's provisional FD outcome was
/// a discovery (which the final BA decision then deliberately erases), and
/// the alarm phase's all-or-none guarantee is proved *under* N1, so a
/// broken network can legitimately split the fallback decision — loudly,
/// not silently. Under an intact network (`network_faulted = false`,
/// byzantine nodes only) the paper guarantees agreement, and a fallback
/// split remains classified as [`SweepOutcome::SilentDisagreement`].
pub fn classify(run: &FdRunReport, network_faulted: bool) -> SweepOutcome {
    let outs = run.correct_outcomes();
    let any_discovery = outs.iter().any(crate::Outcome::is_discovered)
        || (network_faulted && run.used_fallback.iter().any(|&f| f));
    let decided: BTreeSet<Vec<u8>> = outs
        .iter()
        .filter_map(|o| o.decided().map(<[u8]>::to_vec))
        .collect();
    if decided.len() > 1 && !any_discovery {
        return SweepOutcome::SilentDisagreement;
    }
    if any_discovery {
        return SweepOutcome::Discovered;
    }
    if !outs.is_empty() && outs.iter().all(|o| o.decided().is_some()) {
        return SweepOutcome::AllDecided;
    }
    SweepOutcome::Incomplete
}

/// Run every scenario of the matrix across `threads` worker threads and
/// collect the rows in scenario order.
///
/// Each scenario is deterministic and self-contained, so the report is
/// identical for any thread count (see the determinism tests).
pub fn run_sweep(matrix: &SweepMatrix, threads: usize) -> SweepReport {
    run_sweep_with(matrix, threads, &LocalExecutor).expect("the local executor is infallible")
}

/// [`run_sweep`] through an explicit [`ScenarioExecutor`] — `lafd sweep
/// --remote` passes a wire-backed executor here to drive a live `lafd
/// serve` instance. Fails on the first executor error (partial remote
/// sweeps would silently misreport coverage).
pub fn run_sweep_with(
    matrix: &SweepMatrix,
    threads: usize,
    executor: &dyn ScenarioExecutor,
) -> Result<SweepReport, String> {
    let scenarios = matrix.scenarios();
    let rows = pool::parallel_indexed(scenarios.len(), threads, |index| {
        run_scenario_with_executor(
            &scenarios[index],
            &matrix.link_latency,
            matrix.search,
            executor,
        )
    })
    .into_iter()
    .collect::<Result<Vec<ScenarioRow>, String>>()?;
    Ok(SweepReport {
        rows,
        link_latency: matrix.link_latency.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_expansion_filters_inadmissible_shapes() {
        let matrix = SweepMatrix {
            protocols: vec![Protocol::PhaseKing, Protocol::ChainFd],
            sizes: vec![5, 9],
            fault_rule: FaultRule::Explicit(vec![2]),
            adversaries: vec![AdversaryKind::None],
            schemes: vec![SchemeSpec::Tiny],
            seeds: vec![1],
            ..SweepMatrix::quick()
        };
        let scenarios = matrix.scenarios();
        // Phase King needs n > 4t: n=5,t=2 is dropped, n=9,t=2 stays.
        assert!(scenarios
            .iter()
            .all(|s| s.protocol != Protocol::PhaseKing || s.n == 9));
        assert_eq!(
            scenarios
                .iter()
                .filter(|s| s.protocol == Protocol::ChainFd)
                .count(),
            2
        );
    }

    #[test]
    fn chain_adversaries_only_pair_with_chain_fd() {
        let matrix = SweepMatrix {
            protocols: vec![Protocol::ChainFd, Protocol::DolevStrong],
            sizes: vec![5],
            fault_rule: FaultRule::Explicit(vec![1]),
            adversaries: vec![AdversaryKind::TamperBody, AdversaryKind::SilentRelay],
            schemes: vec![SchemeSpec::Tiny],
            seeds: vec![1],
            ..SweepMatrix::quick()
        };
        for s in matrix.scenarios() {
            assert!(s.adversary.applies_to(s.protocol), "{s:?}");
        }
    }

    #[test]
    fn failure_free_rows_match_formulas() {
        let report = run_sweep(&SweepMatrix::quick(), 2);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
        for row in &report.rows {
            assert_eq!(row.expected_messages, Some(row.messages));
            assert_eq!(row.outcome, SweepOutcome::AllDecided);
        }
    }

    #[test]
    fn adversarial_rows_never_silently_disagree() {
        let matrix = SweepMatrix {
            protocols: vec![Protocol::ChainFd],
            sizes: vec![5, 7],
            fault_rule: FaultRule::Classic,
            adversaries: vec![
                AdversaryKind::SilentRelay,
                AdversaryKind::CrashRelay,
                AdversaryKind::TamperBody,
                AdversaryKind::ForgeOrigin,
                AdversaryKind::WrongAssignee,
            ],
            schemes: vec![SchemeSpec::Tiny],
            seeds: vec![1, 2, 3],
            ..SweepMatrix::quick()
        };
        let report = run_sweep(&matrix, 4);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
        for row in &report.rows {
            assert_ne!(row.outcome, SweepOutcome::SilentDisagreement, "{row:?}");
        }
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let matrix = SweepMatrix::quick();
        let serial = run_sweep(&matrix, 1);
        let parallel = run_sweep(&matrix, 8);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.to_markdown(), parallel.to_markdown());
    }

    #[test]
    fn default_matrix_is_at_least_24_scenarios_and_green() {
        let matrix = SweepMatrix::default_matrix();
        let scenarios = matrix.scenarios();
        assert!(scenarios.len() >= 24, "only {} scenarios", scenarios.len());
        let report = run_sweep(&matrix, 4);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
    }

    #[test]
    fn sync_engine_never_pairs_with_latency_models() {
        let matrix = SweepMatrix {
            engines: vec![Engine::Sync, Engine::Event],
            latencies: vec![LatencySpec::Synchronous, LatencySpec::Jitter { extra: 1 }],
            ..SweepMatrix::quick()
        };
        let scenarios = matrix.scenarios();
        assert!(scenarios
            .iter()
            .all(|s| s.engine == Engine::Event || s.latency == LatencySpec::Synchronous));
        // sync+sync, event+sync, event+jitter — three engine/latency pairs.
        let pairs: BTreeSet<(Engine, String)> = scenarios
            .iter()
            .map(|s| (s.engine, s.latency.name()))
            .collect();
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn normalized_duplicate_latencies_emit_each_pair_once() {
        // `fixed:1` normalizes onto `sync`; the pair must not run twice.
        let base = SweepMatrix::quick();
        let doubled = SweepMatrix {
            engines: vec![Engine::Event],
            latencies: vec![
                LatencySpec::Synchronous,
                LatencySpec::Fixed { rounds: 1 },
                LatencySpec::Jitter { extra: 0 },
            ],
            ..base.clone()
        };
        let single = SweepMatrix {
            engines: vec![Engine::Event],
            latencies: vec![LatencySpec::Synchronous],
            ..base
        };
        assert_eq!(doubled.scenarios(), single.scenarios());
    }

    #[test]
    fn cross_validation_matrix_matches_sync_engine() {
        let matrix = SweepMatrix {
            protocols: vec![Protocol::ChainFd, Protocol::Degradable],
            sizes: vec![5],
            seeds: vec![1],
            ..SweepMatrix::cross_validation()
        };
        let report = run_sweep(&matrix, 2);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
        for row in &report.rows {
            assert_eq!(row.scenario.engine, Engine::Event);
            assert!(row.cross_ok, "{row:?}");
        }
    }

    #[test]
    fn latency_matrix_has_zero_silent_disagreements() {
        let matrix = SweepMatrix {
            sizes: vec![4],
            seeds: vec![1],
            ..SweepMatrix::latency_matrix()
        };
        let report = run_sweep(&matrix, 4);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
        for row in &report.rows {
            assert_ne!(row.outcome, SweepOutcome::SilentDisagreement, "{row:?}");
            // Timing-faulted rows carry no formula expectation.
            assert_eq!(row.expected_messages, None);
        }
    }

    #[test]
    fn search_axis_attaches_only_where_the_scheduler_has_freedom() {
        let matrix = SweepMatrix {
            protocols: vec![Protocol::ChainFd],
            sizes: vec![5],
            seeds: vec![1],
            engines: vec![Engine::Sync, Engine::Event],
            latencies: vec![LatencySpec::Synchronous, LatencySpec::Jitter { extra: 1 }],
            search: Some(SearchAxis {
                budget: 3,
                strategy: Strategy::Random,
            }),
            ..SweepMatrix::quick()
        };
        let report = run_sweep(&matrix, 2);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
        for row in &report.rows {
            // Degenerate envelopes (sync engine, or event under `sync`
            // latency) would replay the baseline `budget` times; only
            // jittery event rows carry a search.
            if row.scenario.engine == Engine::Event && row.scenario.latency.has_schedule_freedom() {
                let search = row.search.as_ref().expect("jittery event rows searched");
                assert_eq!(search.episodes, 3);
                assert!(search.replay_ok, "{row:?}");
                assert!(!search.best.silent_disagreement, "{row:?}");
            } else {
                assert!(row.search.is_none(), "{row:?}");
            }
        }
        assert!(report.rows.iter().any(|r| r.search.is_some()));
        // The search result is part of the deterministic report surface.
        assert_eq!(report.to_json(), run_sweep(&matrix, 1).to_json());
    }

    #[test]
    fn search_axis_skips_rows_with_link_overrides() {
        let matrix = SweepMatrix {
            protocols: vec![Protocol::ChainFd],
            sizes: vec![5],
            seeds: vec![1],
            engines: vec![Engine::Event],
            latencies: vec![LatencySpec::Jitter { extra: 1 }],
            link_latency: vec![LinkLatencySpec::parse("0:1:fixed:2").unwrap()],
            search: Some(SearchAxis {
                budget: 3,
                strategy: Strategy::Random,
            }),
            ..SweepMatrix::quick()
        };
        let report = run_sweep(&matrix, 1);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
        // The search explores the base envelope only; attaching it to a
        // row whose delivery times include a per-link override would
        // misdescribe the row, so it is skipped.
        assert!(report.rows.iter().all(|r| r.search.is_none()));
    }

    #[test]
    fn search_finding_silent_disagreement_fails_the_row() {
        let mut row = run_scenario(&SweepMatrix::quick().scenarios()[0]);
        assert!(row.ok());
        row.search = Some(SearchRowSummary {
            strategy: Strategy::Greedy,
            episodes: 5,
            best: Score {
                silent_disagreement: true,
                ..Score::default()
            },
            replay_ok: true,
        });
        assert!(!row.ok(), "silent-disagreement finding must fail the row");
        row.search.as_mut().unwrap().best.silent_disagreement = false;
        assert!(row.ok(), "loud findings are recorded, not failures");
        row.search.as_mut().unwrap().replay_ok = false;
        assert!(!row.ok(), "a non-replaying certificate must fail the row");
    }

    #[test]
    fn link_latency_rows_waive_formulas_but_not_safety() {
        let link = LinkLatencySpec::parse("0:1:fixed:3").unwrap();
        let matrix = SweepMatrix {
            protocols: vec![Protocol::ChainFd, Protocol::FdToBa],
            sizes: vec![5],
            seeds: vec![1, 2],
            engines: vec![Engine::Event],
            link_latency: vec![link],
            ..SweepMatrix::quick()
        };
        let report = run_sweep(&matrix, 2);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
        for row in &report.rows {
            // The slow link is a timing fault: no closed-form expectation,
            // no silent disagreement.
            assert_eq!(row.expected_messages, None, "{row:?}");
            assert_ne!(row.outcome, SweepOutcome::SilentDisagreement, "{row:?}");
        }
        // At least one run must actually notice the three-round link.
        assert!(
            report
                .rows
                .iter()
                .any(|r| r.outcome == SweepOutcome::Discovered),
            "a 3-round link on the chain path should be discovered: {report:?}"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run_sweep(&SweepMatrix::quick(), 2);
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(
            json.matches("\"protocol\"").count(),
            report.rows.len(),
            "one protocol key per row"
        );
        assert!(json.contains("\"summary\""));
    }
}
