//! Cluster orchestration: fix a configuration, drive node sets, collect
//! reports.
//!
//! A [`Cluster`] fixes `(n, t, scheme, seed)` plus the execution
//! environment (engine, latency, link overrides, faults); every run
//! derived from it is deterministic. *What* to run is described by a
//! [`crate::spec::RunSpec`] and executed through [`Cluster::run`] (one
//! shot) or a [`crate::spec::Session`] (many runs amortizing one key
//! distribution) — see [`crate::spec`] for the execution API.
//!
//! Runs execute on a pluggable [`NetworkDriver`]: the lockstep
//! [`SyncDriver`] (paper §2 model, the default) or the discrete-event
//! [`EventDriver`] with a configurable [`LatencySpec`]. Under
//! [`LatencySpec::Synchronous`] the two drivers are byte-identical (the
//! sweep engine cross-validates this); other latency specs expose timing
//! behaviour the synchronous model cannot express.

use crate::ba::Grade;
use crate::keys::{KeyStore, Keyring, PredicateTable};
use crate::localauth::{KdAnomaly, KeyDistNode, KEYDIST_ROUNDS};
use crate::outcome::Outcome;
use fd_crypto::SignatureScheme;
use fd_simnet::fault::FaultPlan;
use fd_simnet::{
    Engine, EventNetwork, LatencySpec, LinkLatencySpec, NetStats, Node, NodeId, SchedCounters,
    SyncNetwork,
};
use std::sync::Arc;

/// A per-message delivery schedule for the event engine, keyed by send
/// index and valued in virtual ticks (see
/// [`EventNetwork::set_delay_overrides`]). Shared by handle all the way
/// into the network, so a search loop re-running the same schedule never
/// copies the map.
pub type Schedule = fd_simnet::DelayOverrides;

/// A function that replaces selected honest nodes with adversaries.
///
/// Return `Some(node)` to substitute the node at `id`, `None` to keep the
/// honest automaton.
pub type Substitution<'a> = &'a mut dyn FnMut(NodeId) -> Option<Box<dyn Node>>;

/// Result of driving a node set to completion on some engine.
pub struct DriveReport {
    /// The automata, for outcome extraction.
    pub nodes: Vec<Box<dyn Node>>,
    /// Message statistics of the run.
    pub stats: NetStats,
    /// Rounds actually executed.
    pub rounds: u32,
    /// Per-message `(send_round, ticks)` delays in send order, when the
    /// driver recorded them (event engine with delay logging enabled).
    pub delay_log: Option<Vec<(u32, u64)>>,
    /// End-of-round marks when the driver recorded them: wall-clock µs on
    /// the sync engine, virtual ticks on the event engine (see
    /// [`crate::obs::SpanClock`]).
    pub round_marks: Option<Vec<u64>>,
    /// Peak delivery-queue depth observed at round boundaries, when the
    /// driver recorded round marks.
    pub max_queue_depth: Option<usize>,
    /// Scheduler counters (ring vs heap routing, arena high-water mark);
    /// `None` on the sync engine, which has no delivery scheduler.
    pub sched: Option<SchedCounters>,
}

/// An execution engine a [`Cluster`] can run node sets on.
///
/// Both implementations drive the same [`Node`] automata; the driver only
/// decides *when* messages arrive.
pub trait NetworkDriver {
    /// Run the automata for up to `max_rounds` rounds.
    fn drive(&self, nodes: Vec<Box<dyn Node>>, max_rounds: u32) -> DriveReport;
}

/// The lockstep round-synchronous engine (paper §2 model).
#[derive(Debug, Clone, Default)]
pub struct SyncDriver {
    /// Link faults injected into every run.
    pub faults: FaultPlan,
    /// Record end-of-round wall-clock marks into
    /// [`DriveReport::round_marks`].
    pub record_marks: bool,
}

impl NetworkDriver for SyncDriver {
    fn drive(&self, nodes: Vec<Box<dyn Node>>, max_rounds: u32) -> DriveReport {
        let mut net = SyncNetwork::new(nodes);
        if !self.faults.is_empty() {
            net.set_fault_plan(self.faults.clone());
        }
        if self.record_marks {
            net.enable_round_marks();
        }
        let rounds = net.run_until_done(max_rounds);
        let round_marks = net.round_marks().map(<[u64]>::to_vec);
        let max_queue_depth = net.max_queue_depth();
        let (nodes, stats) = net.finish();
        DriveReport {
            stats,
            rounds,
            nodes,
            delay_log: None,
            round_marks,
            max_queue_depth,
            sched: None,
        }
    }
}

/// The discrete-event engine with a configurable latency model.
#[derive(Debug, Clone, Default)]
pub struct EventDriver {
    /// Latency model for every link.
    pub latency: LatencySpec,
    /// Per-link overrides layered on top of `latency` (see
    /// [`fd_simnet::event::PerLink`]).
    pub link_latency: Vec<LinkLatencySpec>,
    /// Seed feeding the latency model's randomness.
    pub seed: u64,
    /// Link faults injected into every run.
    pub faults: FaultPlan,
    /// Per-message delay overrides (the adversarial scheduler's hook).
    pub schedule: Option<Schedule>,
    /// Record the applied per-message delays into
    /// [`DriveReport::delay_log`].
    pub record_delays: bool,
    /// Record end-of-round virtual-tick marks into
    /// [`DriveReport::round_marks`].
    pub record_marks: bool,
    /// Route every delivery through the reference binary heap instead of
    /// the flat-ring fast path (see
    /// [`EventNetwork::set_reference_scheduler`]) — the equivalence
    /// tests' unoptimized baseline.
    pub reference_scheduler: bool,
}

impl NetworkDriver for EventDriver {
    fn drive(&self, nodes: Vec<Box<dyn Node>>, max_rounds: u32) -> DriveReport {
        let mut net = EventNetwork::new(nodes);
        net.set_latency(LinkLatencySpec::build_model(
            self.latency,
            &self.link_latency,
            self.seed,
        ));
        if let Some(schedule) = &self.schedule {
            net.set_delay_overrides(Arc::clone(schedule));
        }
        if self.record_delays {
            net.enable_delay_log();
        }
        if self.record_marks {
            net.enable_round_marks();
        }
        if !self.faults.is_empty() {
            net.set_fault_plan(self.faults.clone());
        }
        if self.reference_scheduler {
            net.set_reference_scheduler(true);
        }
        let rounds = net.run_until_done(max_rounds);
        let round_marks = net.round_marks().map(<[u64]>::to_vec);
        let max_queue_depth = net.max_queue_depth();
        let sched = net.sched_counters();
        let (nodes, stats, delay_log) = net.finish();
        DriveReport {
            stats,
            rounds,
            delay_log,
            nodes,
            round_marks,
            max_queue_depth,
            sched: Some(sched),
        }
    }
}

/// Fixed configuration for a family of deterministic runs.
#[derive(Clone)]
pub struct Cluster {
    /// System size.
    pub n: usize,
    /// Tolerated faults.
    pub t: usize,
    /// The signature scheme (test predicate family).
    pub scheme: Arc<dyn SignatureScheme>,
    /// Seed from which all key material and nonces derive.
    pub seed: u64,
    /// Which engine executes the runs (default: [`Engine::Sync`]).
    pub engine: Engine,
    /// Latency model for event-engine runs (default: synchronous).
    pub latency: LatencySpec,
    /// Per-link latency overrides for event-engine runs (default: none).
    pub link_latency: Vec<LinkLatencySpec>,
    /// Link faults installed on every run (default: none).
    pub faults: FaultPlan,
    /// Per-message delivery schedule for event-engine runs (default:
    /// none — the latency model decides every delay).
    pub schedule: Option<Schedule>,
    /// Record applied per-message delays into [`FdRunReport::delay_log`]
    /// (event engine only; default: off).
    pub record_delays: bool,
    /// Force the event engine's reference heap scheduler instead of the
    /// flat-ring fast path (default: off — the fast path is on). Results
    /// are identical either way; the equivalence tests pin that down.
    pub reference_scheduler: bool,
    /// A shared signature/chain verification cache installed on every
    /// run's key stores. `None` (the default) gives each run a private
    /// cache; a service shard installs one long-lived cache so identical
    /// chains are verified once *across* runs, not just within one (see
    /// [`crate::keys::VerifyCache`] for why sharing is sound and cannot
    /// change report bytes).
    pub verify_cache: Option<crate::keys::VerifyCache>,
    /// Record phase observability data (end-of-round marks, queue depths,
    /// verification timing, cache counters) into
    /// [`FdRunReport::phases`]. Off by default; never serialized into
    /// [`FdRunReport::to_json`], so the equivalence surfaces are
    /// untouched either way.
    pub obs: bool,
}

/// Result of a key distribution run.
#[derive(Debug)]
pub struct KeyDistReport {
    /// Per-node key stores; `None` for substituted (faulty) nodes.
    pub stores: Vec<Option<KeyStore>>,
    /// Message statistics of the run.
    pub stats: NetStats,
    /// Anomalies each honest node recorded.
    pub anomalies: Vec<(NodeId, Vec<KdAnomaly>)>,
    /// The shared predicate table the stores intern against, when the run
    /// used one (honest-case allocation profile: `O(n)` distinct keys —
    /// see [`PredicateTable::distinct_allocations`]). `None` for
    /// hand-assembled reports.
    pub predicates: Option<Arc<PredicateTable>>,
}

impl KeyDistReport {
    /// The store of an honest node.
    ///
    /// # Panics
    ///
    /// Panics if the node was substituted by an adversary.
    pub fn store(&self, id: NodeId) -> &KeyStore {
        self.stores[id.index()]
            .as_ref()
            .expect("store of an honest node")
    }
}

/// Result of one failure-discovery (or agreement) run.
#[derive(Debug)]
pub struct FdRunReport {
    /// Per-node outcome; `None` for substituted (faulty) nodes.
    pub outcomes: Vec<Option<Outcome>>,
    /// Message statistics of the run.
    pub stats: NetStats,
    /// Which nodes took the BA fallback (only for FD→BA runs; empty
    /// otherwise).
    pub used_fallback: Vec<bool>,
    /// Per-node decision grades (only for degradable-agreement runs; empty
    /// otherwise; `None` within the vector for substituted nodes).
    pub grades: Vec<Option<Grade>>,
    /// Per-message `(send_round, ticks)` delays in send order, when the
    /// cluster recorded them ([`Cluster::with_delay_log`]). This is the
    /// raw material of a schedule certificate: feeding the delays back via
    /// [`Cluster::with_schedule`] replays the run exactly.
    pub delay_log: Option<Vec<(u32, u64)>>,
    /// Phase-attributed observability breakdown, populated only when the
    /// cluster ran with [`Cluster::with_obs`]. Deliberately **not**
    /// serialized by [`FdRunReport::to_json`]: the byte-identical
    /// equivalence surfaces must not depend on whether tracing was on.
    pub phases: Option<crate::obs::PhaseBreakdown>,
}

impl FdRunReport {
    /// Outcomes of the honest nodes.
    pub fn correct_outcomes(&self) -> Vec<Outcome> {
        self.outcomes.iter().flatten().cloned().collect()
    }

    /// `true` iff every honest node decided exactly `v`.
    pub fn all_decided(&self, v: &[u8]) -> bool {
        self.outcomes
            .iter()
            .flatten()
            .all(|o| o.decided() == Some(v))
    }

    /// `true` iff any honest node discovered a failure.
    pub fn any_discovery(&self) -> bool {
        self.outcomes.iter().flatten().any(|o| o.is_discovered())
    }

    /// Serialize as deterministic JSON (stable field order, no floats, no
    /// timestamps): two byte-identical runs produce byte-identical JSON.
    /// This is the comparison surface of the API-equivalence tests.
    pub fn to_json(&self) -> String {
        fn hex(bytes: &[u8]) -> String {
            bytes.iter().map(|b| format!("{b:02x}")).collect()
        }
        let mut s = String::from("{\"outcomes\": [");
        for (i, outcome) in self.outcomes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match outcome {
                None => s.push_str("\"faulty\""),
                Some(Outcome::Pending) => s.push_str("\"pending\""),
                Some(Outcome::Decided(v)) => s.push_str(&format!("\"decided:{}\"", hex(v))),
                Some(Outcome::Discovered(r)) => s.push_str(&format!("\"discovered:{r}\"")),
            }
        }
        s.push_str(&format!(
            "], \"messages\": {}, \"bytes\": {}, \"rounds\": {}, \"per_round\": {:?}, \
             \"used_fallback\": {:?}, \"grades\": [",
            self.stats.messages_total,
            self.stats.bytes_total,
            self.stats.rounds,
            self.stats.per_round,
            self.used_fallback
        ));
        for (i, grade) in self.grades.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match grade {
                None => s.push_str("null"),
                Some(Grade::Zero) => s.push('0'),
                Some(Grade::One) => s.push('1'),
                Some(Grade::Two) => s.push('2'),
            }
        }
        s.push(']');
        match &self.delay_log {
            None => s.push_str(", \"delay_log\": null"),
            Some(log) => {
                s.push_str(", \"delay_log\": [");
                for (i, (round, ticks)) in log.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&format!("[{round}, {ticks}]"));
                }
                s.push(']');
            }
        }
        s.push('}');
        s
    }
}

impl Cluster {
    /// Fix a cluster configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `t + 2 <= n` (the common requirement of the FD
    /// protocols here).
    pub fn new(n: usize, t: usize, scheme: Arc<dyn SignatureScheme>, seed: u64) -> Self {
        assert!(t + 2 <= n, "require t + 2 <= n");
        Cluster {
            n,
            t,
            scheme,
            seed,
            engine: Engine::Sync,
            latency: LatencySpec::Synchronous,
            link_latency: Vec::new(),
            faults: FaultPlan::new(),
            schedule: None,
            record_delays: false,
            reference_scheduler: false,
            verify_cache: None,
            obs: false,
        }
    }

    /// Select the execution engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Select the latency model (only meaningful with [`Engine::Event`]).
    /// Specs byte-equivalent to synchrony are normalized onto
    /// [`LatencySpec::Synchronous`].
    pub fn with_latency(mut self, latency: LatencySpec) -> Self {
        self.latency = latency.normalize();
        self
    }

    /// Install per-link latency overrides on top of the base latency model
    /// (only meaningful with [`Engine::Event`]).
    pub fn with_link_latency(mut self, link_latency: Vec<LinkLatencySpec>) -> Self {
        self.link_latency = link_latency;
        self
    }

    /// Install a link-fault plan on every run derived from this cluster.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Install (or clear) a per-message delivery schedule on event-engine
    /// runs — the adversarial scheduler search's hook into the cluster.
    pub fn with_schedule(mut self, schedule: Option<Schedule>) -> Self {
        self.schedule = schedule;
        self
    }

    /// Record applied per-message delays into [`FdRunReport::delay_log`]
    /// on event-engine runs.
    pub fn with_delay_log(mut self) -> Self {
        self.record_delays = true;
        self
    }

    /// Route event-engine deliveries through the reference heap scheduler
    /// (see [`Cluster::reference_scheduler`]). Combined with
    /// [`crate::keys::VerifyCache::without_cohorts`] via
    /// [`Cluster::with_verify_cache`], this is the fully unbatched,
    /// unshared baseline the perf-equivalence tests compare against.
    pub fn with_reference_scheduler(mut self, on: bool) -> Self {
        self.reference_scheduler = on;
        self
    }

    /// Install a long-lived verification cache shared by every run on
    /// this cluster (see [`Cluster::verify_cache`]).
    pub fn with_verify_cache(mut self, cache: crate::keys::VerifyCache) -> Self {
        self.verify_cache = Some(cache);
        self
    }

    /// Record phase observability data into [`FdRunReport::phases`] on
    /// every run (see [`Cluster::obs`]). [`Cluster::run_traced`] is the
    /// usual entry point; this builder is the low-level switch.
    pub fn with_obs(mut self) -> Self {
        self.obs = true;
        self
    }

    /// Drive a node set to completion on the configured engine. The round
    /// budget is stretched for non-synchronous latency and for the largest
    /// installed delay fault, so late messages still land within the run
    /// instead of silently degrading into drops.
    pub(crate) fn drive(&self, nodes: Vec<Box<dyn Node>>, base_rounds: u32) -> DriveReport {
        let delay_slack = self.faults.max_delay_rounds();
        match self.engine {
            Engine::Sync => SyncDriver {
                faults: self.faults.clone(),
                record_marks: self.obs,
            }
            .drive(nodes, base_rounds.saturating_add(delay_slack)),
            Engine::Event => {
                // The slowest of the base model and any per-link override
                // bounds how far a message can stretch.
                let budget = self
                    .link_latency
                    .iter()
                    .map(|link| link.spec.round_budget(base_rounds))
                    .fold(self.latency.round_budget(base_rounds), u32::max);
                EventDriver {
                    latency: self.latency,
                    link_latency: self.link_latency.clone(),
                    seed: self.seed,
                    faults: self.faults.clone(),
                    schedule: self.schedule.clone(),
                    record_delays: self.record_delays,
                    record_marks: self.obs,
                    reference_scheduler: self.reference_scheduler,
                }
                .drive(nodes, budget.saturating_add(delay_slack))
            }
        }
    }

    /// The deterministic keyring of node `id`.
    pub fn keyring(&self, id: NodeId) -> Keyring {
        Keyring::generate(self.scheme.as_ref(), id, self.seed)
    }

    /// The cluster's shared predicate table: the true test predicate of
    /// every node, allocated once (see [`PredicateTable`]).
    pub fn predicate_table(&self) -> Arc<PredicateTable> {
        Arc::new(PredicateTable::generate(
            self.scheme.as_ref(),
            self.n,
            self.seed,
        ))
    }

    /// Trusted-dealer stores (global authentication baseline): every node
    /// holds everyone's true predicate, zero messages spent. All `n`
    /// stores share one predicate table — `O(n)` distinct allocations.
    pub fn global_stores(&self) -> Vec<KeyStore> {
        let table = self.predicate_table();
        (0..self.n)
            .map(|i| KeyStore::global_shared(NodeId(i as u16), table.keys()))
            .collect()
    }

    /// A trusted-dealer key distribution report: shared global stores,
    /// zero messages spent, the predicate table attached. The baseline
    /// setup of the large-`n` benchmarks.
    pub fn dealer_keydist(&self) -> KeyDistReport {
        let table = self.predicate_table();
        let stores = (0..self.n)
            .map(|i| Some(KeyStore::global_shared(NodeId(i as u16), table.keys())))
            .collect();
        KeyDistReport {
            stores,
            stats: NetStats::new(self.n),
            anomalies: Vec::new(),
            predicates: Some(table),
        }
    }

    /// Run the key distribution protocol with all nodes honest.
    pub fn run_key_distribution(&self) -> KeyDistReport {
        self.run_key_distribution_with(&mut |_| None)
    }

    /// Run key distribution with selected nodes replaced by adversaries.
    ///
    /// Honest nodes intern announced predicates against one shared
    /// [`PredicateTable`], so the honest case builds all stores from
    /// `O(n)` distinct key allocations (the table is returned on the
    /// report for allocation-profile assertions).
    pub fn run_key_distribution_with(&self, substitute: Substitution<'_>) -> KeyDistReport {
        // One pass of key generation feeds both the honest keyrings and
        // the shared table the stores intern against.
        let rings: Vec<Keyring> = (0..self.n)
            .map(|i| self.keyring(NodeId(i as u16)))
            .collect();
        let table = Arc::new(PredicateTable::from_keys(
            rings.iter().map(|r| Arc::new(r.pk.clone())).collect(),
        ));
        let mut honest = vec![false; self.n];
        let nodes: Vec<Box<dyn Node>> = (0..self.n)
            .map(|i| {
                let me = NodeId(i as u16);
                match substitute(me) {
                    Some(adversary) => adversary,
                    None => {
                        honest[i] = true;
                        Box::new(
                            KeyDistNode::new(
                                me,
                                self.n,
                                Arc::clone(&self.scheme),
                                rings[i].clone(),
                                self.seed,
                            )
                            .with_intern_table(Arc::clone(&table)),
                        )
                    }
                }
            })
            .collect();
        let report = self.drive(nodes, KEYDIST_ROUNDS);
        let stats = report.stats;
        let mut stores = Vec::with_capacity(self.n);
        let mut anomalies = Vec::new();
        for (i, boxed) in report.nodes.into_iter().enumerate() {
            if honest[i] {
                let node = boxed
                    .into_any()
                    .downcast::<KeyDistNode>()
                    .expect("honest slot holds KeyDistNode");
                let (store, _ring, anoms) = node.into_parts();
                anomalies.push((NodeId(i as u16), anoms));
                stores.push(Some(store));
            } else {
                stores.push(None);
            }
        }
        KeyDistReport {
            stores,
            stats,
            anomalies,
            predicates: Some(table),
        }
    }

    /// Run interactive consistency (`n` parallel chain-FD instances; see
    /// [`crate::fd::VectorFdNode`]). `values[i]` is node `i`'s input.
    ///
    /// Vector FD takes one input *per node* rather than a single sender
    /// value, so it stays outside the [`RunSpec`](crate::spec::RunSpec)
    /// surface; this is its home.
    ///
    /// Returns per-node *vector* outcomes flattened into an
    /// [`FdRunReport`]-like structure: `outcomes[i]` is `Some(Decided(v))`
    /// only if node `i` decided the *full* vector; the detailed
    /// per-instance outcomes are in the second component.
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == n`.
    pub fn run_vector(
        &self,
        keydist: &KeyDistReport,
        values: &[Vec<u8>],
    ) -> (FdRunReport, Vec<Vec<Outcome>>) {
        assert_eq!(values.len(), self.n, "one input value per node");
        let params = crate::fd::VectorFdParams::new(self.n, self.t);
        let rounds = params.rounds();
        let nodes: Vec<Box<dyn Node>> = (0..self.n)
            .map(|i| {
                let me = NodeId(i as u16);
                Box::new(crate::fd::VectorFdNode::new(
                    me,
                    params.clone(),
                    Arc::clone(&self.scheme),
                    keydist.store(me).clone(),
                    self.keyring(me),
                    values[i].clone(),
                )) as Box<dyn Node>
            })
            .collect();
        let report = self.drive(nodes, rounds);
        let stats = report.stats;
        let delay_log = report.delay_log;
        let mut outcomes = Vec::with_capacity(self.n);
        let mut per_instance = Vec::with_capacity(self.n);
        for boxed in report.nodes {
            let node = boxed
                .into_any()
                .downcast::<crate::fd::VectorFdNode>()
                .expect("VectorFdNode");
            let summary = match node.vector() {
                Some(vector) => {
                    // Canonical encoding of the decided vector.
                    let mut flat = Vec::new();
                    for v in &vector {
                        flat.extend_from_slice(&(v.len() as u32).to_be_bytes());
                        flat.extend_from_slice(v);
                    }
                    Outcome::Decided(flat)
                }
                None => node
                    .outcomes()
                    .iter()
                    .find(|o| o.is_discovered())
                    .cloned()
                    .unwrap_or(Outcome::Pending),
            };
            outcomes.push(Some(summary));
            per_instance.push(node.outcomes().to_vec());
        }
        (
            FdRunReport {
                outcomes,
                stats,
                used_fallback: Vec::new(),
                grades: Vec::new(),
                delay_log,
                phases: None,
            },
            per_instance,
        )
    }
}

impl core::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Cluster")
            .field("n", &self.n)
            .field("t", &self.t)
            .field("scheme", &self.scheme.name())
            .field("seed", &self.seed)
            .field("engine", &self.engine)
            .field("latency", &self.latency)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::spec::{Protocol, RunSpec, Session};

    fn cluster(n: usize, t: usize) -> Cluster {
        Cluster::new(n, t, Arc::new(fd_crypto::SchnorrScheme::test_tiny()), 99)
    }

    fn spec(protocol: Protocol, value: &[u8]) -> RunSpec {
        RunSpec::new(protocol, value.to_vec()).with_default_value(b"d".to_vec())
    }

    #[test]
    fn keydist_then_many_cheap_runs() {
        let mut session = Session::new(cluster(6, 1));
        let kd = session.keydist();
        assert_eq!(kd.stats.messages_total, metrics::keydist_messages(6));
        for (_, anoms) in &kd.anomalies {
            assert!(anoms.is_empty());
        }
        for k in 0..5u8 {
            let run = session.run(&RunSpec::new(Protocol::ChainFd, vec![k]));
            assert_eq!(run.stats.messages_total, metrics::chain_fd_messages(6));
            assert!(run.all_decided(&[k]));
            assert!(!run.any_discovery());
        }
        assert_eq!(session.keydist_runs(), 1);
    }

    #[test]
    fn non_auth_baseline_costs_more() {
        let c = cluster(8, 2);
        let auth = c.run(&spec(Protocol::ChainFd, b"v")).stats.messages_total;
        let non_auth = c.run(&spec(Protocol::NonAuthFd, b"v"));
        assert!(non_auth.all_decided(b"v"));
        assert_eq!(
            non_auth.stats.messages_total,
            metrics::non_auth_messages(8, 2)
        );
        assert!(non_auth.stats.messages_total > auth);
    }

    #[test]
    fn global_stores_work_without_keydist() {
        // The paper's point inverted: FD protocols designed for global
        // authentication run on locally distributed keys; conversely our
        // implementation runs identically on dealer-provided stores.
        let c = cluster(5, 1);
        let kd = KeyDistReport {
            stores: c.global_stores().into_iter().map(Some).collect(),
            stats: NetStats::new(5),
            anomalies: Vec::new(),
            predicates: None,
        };
        let mut session = Session::with_keydist(c, kd);
        let run = session.run(&spec(Protocol::ChainFd, b"x"));
        assert!(run.all_decided(b"x"));
        assert_eq!(session.keydist_runs(), 0, "dealer stores, no keydist run");
    }

    #[test]
    fn small_range_default_free_and_nondefault_works() {
        let mut session = Session::new(cluster(6, 1));
        let free =
            session.run(&RunSpec::new(Protocol::SmallRange, vec![0]).with_default_value(vec![0]));
        assert_eq!(free.stats.messages_total, 0);
        assert!(free.all_decided(&[0]));
        let paid =
            session.run(&RunSpec::new(Protocol::SmallRange, vec![1]).with_default_value(vec![0]));
        assert!(paid.all_decided(&[1]));
        assert_eq!(
            paid.stats.messages_total,
            metrics::small_range_messages(6, 1, false)
        );
        assert_eq!(session.keydist_runs(), 1);
    }

    #[test]
    fn dolev_strong_quadratic_failure_free() {
        let run = cluster(5, 1).run(&spec(Protocol::DolevStrong, b"v"));
        assert!(run.all_decided(b"v"));
        assert_eq!(run.stats.messages_total, 5 * 4);
    }

    #[test]
    fn fd_to_ba_failure_free_fd_cost() {
        let run = cluster(7, 2).run(&spec(Protocol::FdToBa, b"v"));
        assert!(run.all_decided(b"v"));
        assert_eq!(run.stats.messages_total, 6); // n - 1
        assert!(run.used_fallback.iter().all(|f| !f));
    }

    #[test]
    fn phase_king_quadratic_baseline() {
        let run = cluster(5, 1).run(&spec(Protocol::PhaseKing, b"v"));
        assert!(run.all_decided(b"v"));
        assert_eq!(run.stats.messages_total, metrics::phase_king_messages(5, 1));
    }

    #[test]
    fn degradable_failure_free_grade_two() {
        let run = cluster(7, 2).run(&spec(Protocol::Degradable, b"v"));
        assert!(run.all_decided(b"v"));
        assert_eq!(run.stats.messages_total, metrics::degradable_messages(7));
        assert_eq!(run.grades.len(), 7);
        assert!(run.grades.iter().all(|g| *g == Some(crate::ba::Grade::Two)));
    }

    #[test]
    fn event_engine_reproduces_sync_engine_exactly() {
        let sync = cluster(7, 2);
        let event = sync.clone().with_engine(fd_simnet::Engine::Event);
        let kd_s = sync.setup_keydist();
        let kd_e = event.setup_keydist();
        assert_eq!(kd_s.stats, kd_e.stats);
        let run_s = sync.run(&spec(Protocol::ChainFd, b"v"));
        let run_e = event.run(&spec(Protocol::ChainFd, b"v"));
        assert_eq!(run_s.stats, run_e.stats);
        assert_eq!(run_s.outcomes, run_e.outcomes);
        assert_eq!(run_s.to_json(), run_e.to_json());
    }

    #[test]
    fn jittery_event_runs_never_silently_disagree() {
        let c = cluster(6, 1)
            .with_engine(fd_simnet::Engine::Event)
            .with_latency(fd_simnet::LatencySpec::Jitter { extra: 1 });
        // The session's keydist runs in the quiet synchronous setup phase
        // regardless of the cluster's latency model.
        let mut session = Session::new(c);
        let run = session.run(&spec(Protocol::ChainFd, b"v"));
        // Late messages may be discovered as timing failures, but any two
        // decided values must agree.
        let decided: std::collections::BTreeSet<Vec<u8>> = run
            .correct_outcomes()
            .iter()
            .filter_map(|o| o.decided().map(<[u8]>::to_vec))
            .collect();
        assert!(decided.len() <= 1, "silent disagreement under jitter");
    }

    #[test]
    fn cluster_fault_plan_reaches_the_run() {
        use fd_simnet::fault::{FaultPlan, LinkFault};
        for engine in [fd_simnet::Engine::Sync, fd_simnet::Engine::Event] {
            let faulted = cluster(5, 1)
                .with_engine(engine)
                .with_faults(FaultPlan::new().with(0, NodeId(0), NodeId(1), LinkFault::Drop));
            let run = faulted.run(&spec(Protocol::ChainFd, b"v"));
            assert!(run.any_discovery(), "dropped chain must be discovered");
        }
    }

    #[test]
    fn interactive_consistency_via_runner() {
        let c = cluster(5, 1);
        let kd = c.setup_keydist();
        let values: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i, i + 10]).collect();
        let (report, per_instance) = c.run_vector(&kd, &values);
        // n parallel FD runs cost n(n-1) messages.
        assert_eq!(report.stats.messages_total, 5 * 4);
        // Every node decided every instance with the right value.
        for node_outcomes in &per_instance {
            for (s, o) in node_outcomes.iter().enumerate() {
                assert_eq!(o.decided(), Some(&values[s][..]));
            }
        }
        // Summaries agree across nodes.
        let first = report.outcomes[0].clone();
        for o in &report.outcomes {
            assert_eq!(o, &first);
        }
    }

    #[test]
    fn shared_verify_cache_does_not_change_report_bytes() {
        let private = cluster(6, 1);
        let shared = private
            .clone()
            .with_verify_cache(crate::keys::VerifyCache::new());
        let spec = RunSpec::new(Protocol::ChainFd, b"v".to_vec());
        let kd_p = private.setup_keydist();
        let kd_s = shared.setup_keydist();
        // Two runs on the shared cache (the second hits it) stay
        // byte-identical to private-cache runs.
        let baseline = private.run_with_keys(&spec, Some(&kd_p)).to_json();
        assert_eq!(shared.run_with_keys(&spec, Some(&kd_s)).to_json(), baseline);
        assert_eq!(shared.run_with_keys(&spec, Some(&kd_s)).to_json(), baseline);
    }

    #[test]
    fn reference_scheduler_and_unbatched_verify_reproduce_fast_path() {
        // The two tentpole optimizations (flat-ring scheduler, cohort
        // verification) both have an explicit off switch; turning both off
        // must reproduce the optimized report byte for byte.
        let fast = cluster(7, 2).with_engine(fd_simnet::Engine::Event);
        let reference = fast
            .clone()
            .with_reference_scheduler(true)
            .with_verify_cache(crate::keys::VerifyCache::new().without_cohorts());
        for protocol in [Protocol::DolevStrong, Protocol::ChainFd] {
            let spec = spec(protocol, b"v");
            assert_eq!(
                fast.run(&spec).to_json(),
                reference.run(&spec).to_json(),
                "{protocol}"
            );
        }
    }

    #[test]
    fn obs_exposes_scheduler_counters_on_the_event_engine() {
        let c = cluster(6, 1)
            .with_engine(fd_simnet::Engine::Event)
            .with_obs();
        let run = c.run(&spec(Protocol::DolevStrong, b"v"));
        let phases = run.phases.expect("obs on");
        // Synchronous latency: every delivery is round-aligned, so the
        // fast path takes all of it.
        assert_eq!(phases.ring_enqueued, 6 * 5);
        assert_eq!(phases.heap_enqueued, 0);
        assert_eq!(phases.ring_ratio_pct(), Some(100));
        assert!(phases.arena_hwm >= 5, "arena saw a full fan-in");

        let reference = c.clone().with_reference_scheduler(true);
        let run = reference.run(&spec(Protocol::DolevStrong, b"v"));
        let phases = run.phases.expect("obs on");
        assert_eq!(phases.ring_enqueued, 0);
        assert_eq!(phases.heap_enqueued, 6 * 5);
        assert_eq!(phases.ring_ratio_pct(), Some(0));

        // The sync engine has no scheduler: counters stay zero.
        let sync = cluster(6, 1).with_obs();
        let run = sync.run(&spec(Protocol::DolevStrong, b"v"));
        let phases = run.phases.expect("obs on");
        assert_eq!((phases.ring_enqueued, phases.heap_enqueued), (0, 0));
        assert_eq!(phases.ring_ratio_pct(), None);
    }

    #[test]
    fn substitution_marks_faulty_slots() {
        let c = cluster(5, 1);
        let kd = c.run_key_distribution_with(&mut |id| {
            (id == NodeId(4))
                .then(|| Box::new(crate::adversary::SilentNode { me: NodeId(4) }) as Box<dyn Node>)
        });
        assert!(kd.stores[4].is_none());
        // Honest nodes accepted everyone but the silent node.
        for i in 0..4 {
            assert_eq!(kd.stores[i].as_ref().unwrap().accepted_count(), 4);
        }
    }
}
