//! Wire schema v1: the versioned JSON encoding of the execution API.
//!
//! `lafd serve` (see [`crate::service`]) accepts newline-delimited JSON
//! requests and answers with JSON responses; `lafd run --spec file.json`
//! reads the same request format. This module is the single
//! encoder/decoder for that surface: a request is a serialized
//! [`SpecBuilder`], a response embeds a wire-format
//! [`FdRunReport`], and both carry an explicit
//! `"schema_version": 1`.
//!
//! Design constraints, in order:
//!
//! * **No external dependencies.** The JSON value type, parser, and
//!   writer are hand-rolled below (integers only — floats are rejected,
//!   which is also what keeps every report byte-deterministic).
//! * **Versioned and strict.** Every request and response carries
//!   `schema_version`; decoding rejects unknown object fields (the
//!   `deny_unknown_fields` discipline), so schema drift is loud.
//! * **Byte-stable reports.** The report encoding *is*
//!   [`FdRunReport::to_json`] — the deterministic JSON the equivalence
//!   tests already compare — so a service response can be checked
//!   byte-for-byte against a local [`Cluster::run`] of the same spec.
//!   Decoding inverts it up to the fields the encoding carries
//!   (`sent_by`/`dropped_invalid` are not on the wire and decode to
//!   their empty defaults); `encode ∘ decode` is the identity on wire
//!   bytes, which the round-trip proptests assert.
//!
//! ## Request example
//!
//! ```json
//! {"schema_version": 1, "id": "r0", "protocol": "chain_fd", "n": 7,
//!  "t": 2, "seed": 1, "scheme": "tiny", "engine": "sync",
//!  "latency": "sync", "input": "76", "default_value": "64",
//!  "adversary": {"kind": "silent", "corrupt": [1]}}
//! ```
//!
//! `protocol`, `n`, and `input` are required; everything else defaults
//! (`t` to `⌊(n−1)/3⌋` clamped, `seed` to 1, `scheme` to `tiny`, engine
//! and latency to synchronous, the adversary to honest). Byte values
//! (`input`, `default_value`) are hex-encoded. Unknown fields are
//! errors.
//!
//! [`Cluster::run`]: crate::runner::Cluster::run
//! [`FdRunReport::to_json`]: crate::runner::FdRunReport::to_json

use crate::adversary::{AdversaryKind, AdversarySpec};
use crate::ba::Grade;
use crate::outcome::{DiscoveryReason, Outcome};
use crate::runner::{FdRunReport, Schedule};
use crate::schedsearch::{Perturbation, ScheduleCert, SearchConfig, Strategy};
use crate::spec::{Protocol, SpecBuilder};
use crate::sweep::SchemeSpec;
use fd_simnet::{Engine, LatencySpec, LinkLatencySpec, NetStats, NodeId};
use std::collections::HashMap;
use std::sync::Arc;

/// The wire schema this module speaks. Bump on incompatible change; a
/// decoder rejects every other version.
pub const SCHEMA_VERSION: i128 = 1;

// ---------------------------------------------------------------------
// JSON value type, parser, writer
// ---------------------------------------------------------------------

/// A JSON value restricted to what the wire format needs: no floats (the
/// whole report surface is integer-valued, and floats would break byte
/// determinism).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (floats and exponents are rejected at parse time).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order (writing preserves it).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse a JSON document. Rejects floats, duplicate object keys, and
    /// trailing garbage.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Serialize back to JSON (stable field order, no whitespace
    /// variation beyond `", "` / `": "` separators).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, s: &mut String) {
        match self {
            Value::Null => s.push_str("null"),
            Value::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => s.push_str(&i.to_string()),
            Value::Str(v) => write_json_string(s, v),
            Value::Arr(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    item.write(s);
                }
                s.push(']');
            }
            Value::Obj(fields) => {
                s.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    write_json_string(s, key);
                    s.push_str(": ");
                    value.write(s);
                }
                s.push('}');
            }
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is the JSON `null` literal.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

fn write_json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte {:?} at {}",
                char::from(other),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!(
                "floating-point numbers are not part of wire schema v1 (byte {})",
                self.pos
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|e| format!("number {text}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are rejected rather than
                            // combined: nothing on this wire emits them.
                            let c = char::from_u32(u32::from(code)).ok_or_else(|| {
                                format!("invalid \\u escape {code:04x} (surrogates unsupported)")
                            })?;
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(format!("invalid escape {other:?} at byte {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte {b:#04x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let code = u16::from_str_radix(text, 16).map_err(|e| format!("\\u escape: {e}"))?;
        self.pos = end - 1; // caller advances past the last digit
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate object key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding helpers (deny_unknown_fields discipline)
// ---------------------------------------------------------------------

/// Check an object only carries `allowed` keys — the wire-v1 analogue of
/// serde's `deny_unknown_fields`.
fn deny_unknown(obj: &Value, allowed: &[&str], what: &str) -> Result<(), String> {
    let Value::Obj(fields) = obj else {
        return Err(format!("{what}: expected an object"));
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("{what}: unknown field {key:?}"));
        }
    }
    Ok(())
}

fn require<'v>(obj: &'v Value, key: &str, what: &str) -> Result<&'v Value, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing field {key:?}"))
}

fn int_field(obj: &Value, key: &str, what: &str) -> Result<i128, String> {
    require(obj, key, what)?
        .as_int()
        .ok_or_else(|| format!("{what}: field {key:?} must be an integer"))
}

fn usize_field(obj: &Value, key: &str, what: &str) -> Result<usize, String> {
    usize::try_from(int_field(obj, key, what)?)
        .map_err(|_| format!("{what}: field {key:?} out of range"))
}

fn str_field<'v>(obj: &'v Value, key: &str, what: &str) -> Result<&'v str, String> {
    require(obj, key, what)?
        .as_str()
        .ok_or_else(|| format!("{what}: field {key:?} must be a string"))
}

fn check_schema_version(obj: &Value, what: &str) -> Result<(), String> {
    let version = int_field(obj, "schema_version", what)?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "{what}: schema_version {version} unsupported (this build speaks {SCHEMA_VERSION})"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Hex byte values
// ---------------------------------------------------------------------

/// Lowercase hex encoding of a byte value (the request encoding of
/// `input` / `default_value`, and the report encoding of decided values).
pub fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Inverse of [`hex_encode`].
pub fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err(format!("hex value has odd length {}", text.len()));
    }
    (0..text.len() / 2)
        .map(|i| {
            u8::from_str_radix(&text[2 * i..2 * i + 2], 16).map_err(|e| format!("hex value: {e}"))
        })
        .collect()
}

// ---------------------------------------------------------------------
// AdversarySpec
// ---------------------------------------------------------------------

/// Encode an adversary spec as `{"kind": ..., "corrupt": [...]}`.
///
/// [`AdversarySpec::Custom`] carries an arbitrary closure and has no wire
/// form — encoding it is an error, mirroring how custom specs already
/// compare by identity only.
pub fn adversary_to_value(spec: &AdversarySpec) -> Result<Value, String> {
    let (kind, corrupt) = match spec {
        AdversarySpec::Honest => (AdversaryKind::None, Vec::new()),
        AdversarySpec::Scripted { kind, corrupt } => (*kind, corrupt.clone()),
        AdversarySpec::Custom(_) => {
            return Err("custom adversary closures have no wire encoding".to_string())
        }
    };
    Ok(Value::Obj(vec![
        ("kind".to_string(), Value::Str(kind.name().to_string())),
        (
            "corrupt".to_string(),
            Value::Arr(
                corrupt
                    .iter()
                    .map(|id| Value::Int(i128::from(id.0)))
                    .collect(),
            ),
        ),
    ]))
}

/// Decode an adversary spec object (see [`adversary_to_value`]).
pub fn adversary_from_value(value: &Value) -> Result<AdversarySpec, String> {
    deny_unknown(value, &["kind", "corrupt"], "adversary")?;
    let kind = AdversaryKind::parse(str_field(value, "kind", "adversary")?)?;
    let corrupt = match value.get("corrupt") {
        None => Vec::new(),
        Some(list) => list
            .as_arr()
            .ok_or_else(|| "adversary: corrupt must be an array".to_string())?
            .iter()
            .map(|v| {
                v.as_int()
                    .and_then(|i| u16::try_from(i).ok())
                    .map(NodeId)
                    .ok_or_else(|| "adversary: corrupt entries must be node ids".to_string())
            })
            .collect::<Result<Vec<NodeId>, String>>()?,
    };
    if kind == AdversaryKind::None {
        if !corrupt.is_empty() {
            return Err("adversary: kind none takes no corrupt set".to_string());
        }
        return Ok(AdversarySpec::Honest);
    }
    if corrupt.is_empty() {
        return Ok(AdversarySpec::scripted(kind));
    }
    Ok(AdversarySpec::scripted_at(kind, corrupt))
}

// ---------------------------------------------------------------------
// Requests (serialized SpecBuilder)
// ---------------------------------------------------------------------

const REQUEST_FIELDS: [&str; 13] = [
    "schema_version",
    "id",
    "protocol",
    "n",
    "t",
    "seed",
    "scheme",
    "engine",
    "latency",
    "link_latency",
    "input",
    "default_value",
    "adversary",
    // "schedule" is appended below; arrays in Rust want a fixed length.
];

/// Encode a [`SpecBuilder`] (plus an optional request id) as a wire-v1
/// request line.
///
/// Fault plans have no wire encoding (the `FaultPlan` type is
/// write-only), so builders carrying link faults are rejected; custom
/// adversaries likewise (see [`adversary_to_value`]).
pub fn request_to_json(builder: &SpecBuilder, id: Option<&str>) -> Result<String, String> {
    if !builder.faults.is_empty() {
        return Err("link-fault plans have no wire encoding in schema v1".to_string());
    }
    let mut fields: Vec<(String, Value)> =
        vec![("schema_version".to_string(), Value::Int(SCHEMA_VERSION))];
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::Str(id.to_string())));
    }
    fields.push((
        "protocol".to_string(),
        Value::Str(builder.protocol.name().to_string()),
    ));
    fields.push(("n".to_string(), Value::Int(builder.n as i128)));
    if let Some(t) = builder.t {
        fields.push(("t".to_string(), Value::Int(t as i128)));
    }
    fields.push(("seed".to_string(), Value::Int(i128::from(builder.seed))));
    fields.push(("scheme".to_string(), Value::Str(builder.scheme.clone())));
    fields.push((
        "engine".to_string(),
        Value::Str(builder.engine.name().to_string()),
    ));
    fields.push(("latency".to_string(), Value::Str(builder.latency.name())));
    if !builder.link_latency.is_empty() {
        fields.push((
            "link_latency".to_string(),
            Value::Arr(
                builder
                    .link_latency
                    .iter()
                    .map(|l| Value::Str(l.name()))
                    .collect(),
            ),
        ));
    }
    fields.push(("input".to_string(), Value::Str(hex_encode(&builder.input))));
    fields.push((
        "default_value".to_string(),
        Value::Str(hex_encode(&builder.default_value)),
    ));
    if !builder.adversary.is_honest() {
        fields.push((
            "adversary".to_string(),
            adversary_to_value(&builder.adversary)?,
        ));
    }
    if let Some(schedule) = &builder.schedule {
        let mut entries: Vec<(u64, u64)> = schedule.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        fields.push((
            "schedule".to_string(),
            Value::Arr(
                entries
                    .into_iter()
                    .map(|(index, ticks)| {
                        Value::Arr(vec![
                            Value::Int(i128::from(index)),
                            Value::Int(i128::from(ticks)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Ok(Value::Obj(fields).to_json())
}

/// Decode a wire-v1 request line into a [`SpecBuilder`] plus its
/// optional request id. Unknown fields and unsupported schema versions
/// are errors; the builder is *not* yet validated (call
/// [`SpecBuilder::build`] for that).
pub fn request_from_json(json: &str) -> Result<(SpecBuilder, Option<String>), String> {
    let value = Value::parse(json)?;
    let mut allowed: Vec<&str> = REQUEST_FIELDS.to_vec();
    allowed.push("schedule");
    deny_unknown(&value, &allowed, "request")?;
    check_schema_version(&value, "request")?;
    let id = match value.get("id") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| "request: id must be a string".to_string())?
                .to_string(),
        ),
    };
    let protocol = Protocol::parse(str_field(&value, "protocol", "request")?)?;
    let n = usize_field(&value, "n", "request")?;
    let mut builder = SpecBuilder::new(protocol, n);
    if value.get("t").is_some() {
        builder = builder.with_t(usize_field(&value, "t", "request")?);
    }
    if value.get("seed").is_some() {
        let seed = int_field(&value, "seed", "request")?;
        builder = builder
            .with_seed(u64::try_from(seed).map_err(|_| "request: seed out of range".to_string())?);
    }
    if value.get("scheme").is_some() {
        builder = builder.with_scheme(str_field(&value, "scheme", "request")?);
    }
    if value.get("engine").is_some() {
        builder = builder.with_engine(Engine::parse(str_field(&value, "engine", "request")?)?);
    }
    if value.get("latency").is_some() {
        builder = builder.with_latency(LatencySpec::parse(str_field(
            &value, "latency", "request",
        )?)?);
    }
    if let Some(links) = value.get("link_latency") {
        let links = links
            .as_arr()
            .ok_or_else(|| "request: link_latency must be an array".to_string())?
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| "request: link_latency entries must be strings".to_string())
                    .and_then(LinkLatencySpec::parse)
            })
            .collect::<Result<Vec<LinkLatencySpec>, String>>()?;
        builder = builder.with_link_latency(links);
    }
    builder = builder.with_input(hex_decode(str_field(&value, "input", "request")?)?);
    if value.get("default_value").is_some() {
        builder =
            builder.with_default_value(hex_decode(str_field(&value, "default_value", "request")?)?);
    }
    if let Some(adv) = value.get("adversary") {
        builder = builder.with_adversary(adversary_from_value(adv)?);
    }
    if let Some(schedule) = value.get("schedule") {
        if *schedule != Value::Null {
            let entries = schedule
                .as_arr()
                .ok_or_else(|| "request: schedule must be an array".to_string())?;
            let mut map: HashMap<u64, u64> = HashMap::with_capacity(entries.len());
            for entry in entries {
                let pair = entry
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| "request: schedule entries are [index, ticks]".to_string())?;
                let index = pair[0]
                    .as_int()
                    .and_then(|i| u64::try_from(i).ok())
                    .ok_or_else(|| "request: schedule index out of range".to_string())?;
                let ticks = pair[1]
                    .as_int()
                    .and_then(|i| u64::try_from(i).ok())
                    .ok_or_else(|| "request: schedule ticks out of range".to_string())?;
                if map.insert(index, ticks).is_some() {
                    return Err(format!("request: duplicate schedule index {index}"));
                }
            }
            builder = builder.with_schedule(Some(Arc::new(map) as Schedule));
        }
    }
    Ok((builder, id))
}

// ---------------------------------------------------------------------
// Run reports
// ---------------------------------------------------------------------

/// Encode a report exactly as [`FdRunReport::to_json`] does — one
/// encoding for the in-process comparison surface and the wire.
pub fn report_to_json(report: &FdRunReport) -> String {
    report.to_json()
}

fn outcome_from_wire(text: &str) -> Result<Option<Outcome>, String> {
    if text == "faulty" {
        return Ok(None);
    }
    if text == "pending" {
        return Ok(Some(Outcome::Pending));
    }
    if let Some(hex) = text.strip_prefix("decided:") {
        return Ok(Some(Outcome::Decided(hex_decode(hex)?)));
    }
    if let Some(reason) = text.strip_prefix("discovered:") {
        return Ok(Some(Outcome::Discovered(discovery_from_wire(reason)?)));
    }
    Err(format!("unknown outcome encoding {text:?}"))
}

/// Parse the report encoding of a [`DiscoveryReason`] — the stable
/// `Display` strings [`FdRunReport::to_json`] has always emitted.
pub fn discovery_from_wire(text: &str) -> Result<DiscoveryReason, String> {
    let round = |prefix: &str| -> Option<Result<u32, String>> {
        text.strip_prefix(prefix).map(|rest| {
            rest.parse::<u32>()
                .map_err(|e| format!("discovery reason {text:?}: {e}"))
        })
    };
    if let Some(round) = round("expected message missing in round ") {
        return Ok(DiscoveryReason::MissingMessage { round: round? });
    }
    if let Some(round) = round("unexpected message in round ") {
        return Ok(DiscoveryReason::UnexpectedMessage { round: round? });
    }
    Ok(match text {
        "malformed payload" => DiscoveryReason::Malformed,
        "signature failed test predicate" => DiscoveryReason::BadSignature,
        "chain layer name mismatch" => DiscoveryReason::NameMismatch,
        "no accepted key for claimed signer" => DiscoveryReason::UnknownSigner,
        "chain structure violates protocol" => DiscoveryReason::BadStructure,
        "conflicting values presented" => DiscoveryReason::Equivocation,
        other => return Err(format!("unknown discovery reason {other:?}")),
    })
}

/// Decode a wire report back into an [`FdRunReport`].
///
/// The wire format does not carry `sent_by` / `dropped_invalid` (they
/// decode to their empty defaults), so this is a right inverse of
/// [`report_to_json`]: encoding the decoded report reproduces the input
/// bytes.
pub fn report_from_json(json: &str) -> Result<FdRunReport, String> {
    let value = Value::parse(json)?;
    deny_unknown(
        &value,
        &[
            "outcomes",
            "messages",
            "bytes",
            "rounds",
            "per_round",
            "used_fallback",
            "grades",
            "delay_log",
        ],
        "report",
    )?;
    let outcomes = require(&value, "outcomes", "report")?
        .as_arr()
        .ok_or_else(|| "report: outcomes must be an array".to_string())?
        .iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| "report: outcomes entries must be strings".to_string())
                .and_then(outcome_from_wire)
        })
        .collect::<Result<Vec<Option<Outcome>>, String>>()?;
    let per_round = require(&value, "per_round", "report")?
        .as_arr()
        .ok_or_else(|| "report: per_round must be an array".to_string())?
        .iter()
        .map(|v| {
            v.as_int()
                .and_then(|i| usize::try_from(i).ok())
                .ok_or_else(|| "report: per_round entries must be counts".to_string())
        })
        .collect::<Result<Vec<usize>, String>>()?;
    let used_fallback = require(&value, "used_fallback", "report")?
        .as_arr()
        .ok_or_else(|| "report: used_fallback must be an array".to_string())?
        .iter()
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| "report: used_fallback entries must be booleans".to_string())
        })
        .collect::<Result<Vec<bool>, String>>()?;
    let grades = require(&value, "grades", "report")?
        .as_arr()
        .ok_or_else(|| "report: grades must be an array".to_string())?
        .iter()
        .map(|v| match v {
            Value::Null => Ok(None),
            Value::Int(0) => Ok(Some(Grade::Zero)),
            Value::Int(1) => Ok(Some(Grade::One)),
            Value::Int(2) => Ok(Some(Grade::Two)),
            other => Err(format!("report: invalid grade {other:?}")),
        })
        .collect::<Result<Vec<Option<Grade>>, String>>()?;
    let delay_log = match require(&value, "delay_log", "report")? {
        Value::Null => None,
        Value::Arr(entries) => Some(
            entries
                .iter()
                .map(|entry| {
                    let pair = entry.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        "report: delay_log entries are [round, ticks]".to_string()
                    })?;
                    let round = pair[0]
                        .as_int()
                        .and_then(|i| u32::try_from(i).ok())
                        .ok_or_else(|| "report: delay_log round out of range".to_string())?;
                    let ticks = pair[1]
                        .as_int()
                        .and_then(|i| u64::try_from(i).ok())
                        .ok_or_else(|| "report: delay_log ticks out of range".to_string())?;
                    Ok((round, ticks))
                })
                .collect::<Result<Vec<(u32, u64)>, String>>()?,
        ),
        _ => return Err("report: delay_log must be null or an array".to_string()),
    };
    // `sent_by` / `dropped_invalid` are not on the wire; they decode to
    // their empty defaults (see the module docs on lossy projection).
    let stats = NetStats {
        messages_total: usize_field(&value, "messages", "report")?,
        bytes_total: usize_field(&value, "bytes", "report")?,
        rounds: u32::try_from(int_field(&value, "rounds", "report")?)
            .map_err(|_| "report: rounds out of range".to_string())?,
        per_round,
        ..NetStats::default()
    };
    Ok(FdRunReport {
        outcomes,
        stats,
        used_fallback,
        grades,
        delay_log,
        // Phases are a local observation, never on the wire (see
        // [`crate::obs`]): decoded reports carry none.
        phases: None,
    })
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// A decoded service response: either an executed run or an error.
#[derive(Debug)]
pub struct WireResponse {
    /// Echo of the request id, if one was given.
    pub id: Option<String>,
    /// The shard that executed the run (errors report the routed shard
    /// when known, else 0).
    pub shard: usize,
    /// Whether the run reused a pooled key distribution (always `false`
    /// for key-free protocols and fresh sessions).
    pub keydist_reused: bool,
    /// Messages of the key distribution backing the run (`None` for
    /// key-free protocols).
    pub keydist_messages: Option<usize>,
    /// Wall-clock execution time in microseconds.
    pub wall_us: u64,
    /// The run report, or the error message.
    pub report: Result<FdRunReport, String>,
    /// The raw report JSON exactly as it appeared on the wire (the
    /// byte-identity comparison surface), empty for errors.
    pub report_json: String,
}

/// Encode a success response. `report_json` must be the output of
/// [`report_to_json`] for the executed run.
pub fn response_to_json(
    id: Option<&str>,
    shard: usize,
    keydist_reused: bool,
    keydist_messages: Option<usize>,
    wall_us: u64,
    report_json: &str,
) -> String {
    let mut s = format!("{{\"schema_version\": {SCHEMA_VERSION}, ");
    match id {
        Some(id) => {
            s.push_str("\"id\": ");
            write_json_string(&mut s, id);
            s.push_str(", ");
        }
        None => s.push_str("\"id\": null, "),
    }
    s.push_str("\"ok\": true, ");
    s.push_str(&format!(
        "\"shard\": {shard}, \"keydist_reused\": {keydist_reused}, "
    ));
    match keydist_messages {
        Some(m) => s.push_str(&format!("\"keydist_messages\": {m}, ")),
        None => s.push_str("\"keydist_messages\": null, "),
    }
    s.push_str(&format!(
        "\"wall_us\": {wall_us}, \"report\": {report_json}}}"
    ));
    s
}

/// Encode an error response.
pub fn error_to_json(id: Option<&str>, error: &str) -> String {
    let mut s = format!("{{\"schema_version\": {SCHEMA_VERSION}, ");
    match id {
        Some(id) => {
            s.push_str("\"id\": ");
            write_json_string(&mut s, id);
            s.push_str(", ");
        }
        None => s.push_str("\"id\": null, "),
    }
    s.push_str("\"ok\": false, \"error\": ");
    write_json_string(&mut s, error);
    s.push('}');
    s
}

/// Decode a response line (success or error).
pub fn response_from_json(json: &str) -> Result<WireResponse, String> {
    let value = Value::parse(json)?;
    deny_unknown(
        &value,
        &[
            "schema_version",
            "id",
            "ok",
            "shard",
            "keydist_reused",
            "keydist_messages",
            "wall_us",
            "report",
            "error",
        ],
        "response",
    )?;
    check_schema_version(&value, "response")?;
    let id = match value.get("id") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| "response: id must be a string".to_string())?
                .to_string(),
        ),
    };
    let ok = require(&value, "ok", "response")?
        .as_bool()
        .ok_or_else(|| "response: ok must be a boolean".to_string())?;
    if !ok {
        let error = str_field(&value, "error", "response")?.to_string();
        return Ok(WireResponse {
            id,
            shard: 0,
            keydist_reused: false,
            keydist_messages: None,
            wall_us: 0,
            report: Err(error),
            report_json: String::new(),
        });
    }
    let shard = usize_field(&value, "shard", "response")?;
    let keydist_reused = require(&value, "keydist_reused", "response")?
        .as_bool()
        .ok_or_else(|| "response: keydist_reused must be a boolean".to_string())?;
    let keydist_messages = match require(&value, "keydist_messages", "response")? {
        Value::Null => None,
        Value::Int(i) => Some(
            usize::try_from(*i)
                .map_err(|_| "response: keydist_messages out of range".to_string())?,
        ),
        _ => return Err("response: keydist_messages must be null or an integer".to_string()),
    };
    let wall_us = u64::try_from(int_field(&value, "wall_us", "response")?)
        .map_err(|_| "response: wall_us out of range".to_string())?;
    let report_json = require(&value, "report", "response")?.to_json();
    let report = report_from_json(&report_json)?;
    Ok(WireResponse {
        id,
        shard,
        keydist_reused,
        keydist_messages,
        wall_us,
        report: Ok(report),
        report_json,
    })
}

// ---------------------------------------------------------------------
// Schedule certificates
// ---------------------------------------------------------------------

/// Encode a schedule certificate (a replayable worst-case schedule — see
/// [`crate::schedsearch`]).
pub fn cert_to_json(cert: &ScheduleCert) -> String {
    let c = &cert.config;
    let mut s = format!(
        "{{\"schema_version\": {SCHEMA_VERSION}, \"config\": {{\"protocol\": \"{}\", \
         \"n\": {}, \"t\": {}, \"scheme\": \"{}\", \"seed\": {}, \"latency\": \"{}\", \
         \"adversary\": \"{}\", \"strategy\": \"{}\", \"budget\": {}}}, \"episode\": {}, \
         \"perturbations\": [",
        c.protocol.name(),
        c.n,
        c.t,
        c.scheme.name(),
        c.seed,
        c.latency.name(),
        c.adversary.name(),
        c.strategy.name(),
        c.budget,
        cert.episode,
    );
    for (i, p) in cert.perturbations.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("[{}, {}, {}]", p.index, p.round, p.ticks));
    }
    s.push_str("]}");
    s
}

/// Decode a schedule certificate. The decoded certificate is validated
/// against its latency envelope ([`ScheduleCert::validate`]).
pub fn cert_from_json(json: &str) -> Result<ScheduleCert, String> {
    let value = Value::parse(json)?;
    deny_unknown(
        &value,
        &["schema_version", "config", "episode", "perturbations"],
        "certificate",
    )?;
    check_schema_version(&value, "certificate")?;
    let config_value = require(&value, "config", "certificate")?;
    deny_unknown(
        config_value,
        &[
            "protocol",
            "n",
            "t",
            "scheme",
            "seed",
            "latency",
            "adversary",
            "strategy",
            "budget",
        ],
        "certificate config",
    )?;
    let what = "certificate config";
    let config = SearchConfig {
        protocol: Protocol::parse(str_field(config_value, "protocol", what)?)?,
        n: usize_field(config_value, "n", what)?,
        t: usize_field(config_value, "t", what)?,
        scheme: SchemeSpec::parse(str_field(config_value, "scheme", what)?)?,
        seed: u64::try_from(int_field(config_value, "seed", what)?)
            .map_err(|_| format!("{what}: seed out of range"))?,
        latency: LatencySpec::parse(str_field(config_value, "latency", what)?)?,
        adversary: AdversaryKind::parse(str_field(config_value, "adversary", what)?)?,
        strategy: Strategy::parse(str_field(config_value, "strategy", what)?)?,
        budget: usize_field(config_value, "budget", what)?,
    };
    let episode = usize_field(&value, "episode", "certificate")?;
    let perturbations = require(&value, "perturbations", "certificate")?
        .as_arr()
        .ok_or_else(|| "certificate: perturbations must be an array".to_string())?
        .iter()
        .map(|entry| {
            let triple = entry.as_arr().filter(|p| p.len() == 3).ok_or_else(|| {
                "certificate: perturbations are [index, round, ticks]".to_string()
            })?;
            let int = |i: usize, what: &str| {
                triple[i]
                    .as_int()
                    .ok_or_else(|| format!("certificate: perturbation {what} must be an integer"))
            };
            Ok(Perturbation {
                index: u64::try_from(int(0, "index")?)
                    .map_err(|_| "certificate: perturbation index out of range".to_string())?,
                round: u32::try_from(int(1, "round")?)
                    .map_err(|_| "certificate: perturbation round out of range".to_string())?,
                ticks: u64::try_from(int(2, "ticks")?)
                    .map_err(|_| "certificate: perturbation ticks out of range".to_string())?,
            })
        })
        .collect::<Result<Vec<Perturbation>, String>>()?;
    let cert = ScheduleCert {
        config,
        episode,
        perturbations,
    };
    cert.validate()?;
    Ok(cert)
}

// ---------------------------------------------------------------------
// Registry dialect (deployment layer)
// ---------------------------------------------------------------------

/// Per-worker result record carried through the registry at teardown:
/// everything the orchestrator needs to reassemble the standard
/// [`FdRunReport`] (protocol-phase counters and outcome) plus the
/// key-distribution phase counters for the setup summary line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The worker's slot.
    pub node: usize,
    /// The slot's outcome (`None` — wire `"faulty"` — for a slot the
    /// adversary substituted).
    pub outcome: Option<Outcome>,
    /// Whether the node took the BA fallback (FD→BA runs only).
    pub used_fallback: bool,
    /// The node's decision grade (degradable-agreement runs only).
    pub grade: Option<Grade>,
    /// Protocol-phase rounds executed (every worker of a run must agree).
    pub rounds: u32,
    /// Protocol-phase messages this node sent.
    pub messages: usize,
    /// Protocol-phase bytes this node sent.
    pub bytes: usize,
    /// Protocol-phase sends per round, indexed by round.
    pub per_round: Vec<usize>,
    /// Protocol-phase sends to invalid destinations (dropped).
    pub dropped: usize,
    /// Key-distribution rounds executed (0 for key-free protocols).
    pub kd_rounds: u32,
    /// Key-distribution messages this node sent.
    pub kd_messages: usize,
    /// Key-distribution bytes this node sent.
    pub kd_bytes: usize,
    /// Key-distribution sends per round.
    pub kd_per_round: Vec<usize>,
    /// Anomalies the node recorded during key distribution.
    pub kd_anomalies: usize,
    /// The incarnation (restart generation) that produced this summary —
    /// the registry fences deposits from stale incarnations.
    pub incarnation: u64,
    /// Transport/registry retries this worker spent (backoff-healed
    /// transient faults; surfaced in the resilience report).
    pub retries: u64,
}

/// A request to the discovery registry (`lafd registry`), one framed
/// JSON document per connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryRequest {
    /// Announce `(node, addr)` for a run and block until all `n` peers
    /// have announced theirs; the reply is the full roster. This is the
    /// barrier that opens a run.
    Register {
        /// Run identifier (one registry serves many runs).
        run: String,
        /// The registering worker's slot.
        node: usize,
        /// Expected system size.
        n: usize,
        /// The worker's listener address (`host:port`).
        addr: String,
        /// Restart generation: the registry admits the highest
        /// incarnation seen for the run and fences lower ones.
        incarnation: u64,
    },
    /// Look up one peer's registered address.
    Lookup {
        /// Run identifier.
        run: String,
        /// The slot to look up.
        node: usize,
    },
    /// Block until all `n` workers of the run have reached `phase`.
    Barrier {
        /// Run identifier.
        run: String,
        /// The arriving worker's slot.
        node: usize,
        /// Expected system size.
        n: usize,
        /// Phase label (e.g. `"keydist-done"`).
        phase: String,
        /// Restart generation (stale incarnations are fenced).
        incarnation: u64,
    },
    /// Deposit the worker's final [`WorkerSummary`] and leave the run.
    Teardown {
        /// Run identifier.
        run: String,
        /// The departing worker's slot.
        node: usize,
        /// The worker's result record.
        summary: WorkerSummary,
        /// Restart generation (stale incarnations are fenced).
        incarnation: u64,
    },
    /// Fetch every summary deposited for the run (the orchestrator's
    /// aggregation step; does not block).
    Collect {
        /// Run identifier.
        run: String,
    },
}

/// A registry reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryReply {
    /// The full roster, `(slot, addr)` in slot order — the answer to
    /// [`RegistryRequest::Register`] once all peers arrived.
    Roster {
        /// `(slot, addr)` pairs, ascending by slot.
        peers: Vec<(usize, String)>,
    },
    /// One peer's address — the answer to [`RegistryRequest::Lookup`].
    Addr {
        /// The looked-up slot.
        node: usize,
        /// Its registered address.
        addr: String,
    },
    /// The barrier opened — the answer to [`RegistryRequest::Barrier`].
    Released {
        /// Echo of the phase label.
        phase: String,
    },
    /// Acknowledgement of a [`RegistryRequest::Teardown`].
    Ack,
    /// Deposited summaries — the answer to [`RegistryRequest::Collect`].
    Summaries {
        /// Whatever summaries have been deposited so far, in deposit
        /// order.
        workers: Vec<WorkerSummary>,
    },
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        error: String,
    },
}

/// Encode an outcome exactly as [`FdRunReport::to_json`] does.
fn outcome_to_wire(outcome: &Option<Outcome>) -> String {
    match outcome {
        None => "faulty".to_string(),
        Some(Outcome::Pending) => "pending".to_string(),
        Some(Outcome::Decided(v)) => format!("decided:{}", hex_encode(v)),
        Some(Outcome::Discovered(r)) => format!("discovered:{r}"),
    }
}

fn grade_to_value(grade: Option<Grade>) -> Value {
    match grade {
        None => Value::Null,
        Some(Grade::Zero) => Value::Int(0),
        Some(Grade::One) => Value::Int(1),
        Some(Grade::Two) => Value::Int(2),
    }
}

fn grade_from_value(value: &Value, what: &str) -> Result<Option<Grade>, String> {
    match value {
        Value::Null => Ok(None),
        Value::Int(0) => Ok(Some(Grade::Zero)),
        Value::Int(1) => Ok(Some(Grade::One)),
        Value::Int(2) => Ok(Some(Grade::Two)),
        other => Err(format!("{what}: invalid grade {other:?}")),
    }
}

fn counts_to_value(counts: &[usize]) -> Value {
    Value::Arr(counts.iter().map(|&c| Value::Int(c as i128)).collect())
}

fn counts_field(obj: &Value, key: &str, what: &str) -> Result<Vec<usize>, String> {
    require(obj, key, what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: field {key:?} must be an array"))?
        .iter()
        .map(|v| {
            v.as_int()
                .and_then(|i| usize::try_from(i).ok())
                .ok_or_else(|| format!("{what}: {key} entries must be counts"))
        })
        .collect()
}

fn u32_field(obj: &Value, key: &str, what: &str) -> Result<u32, String> {
    u32::try_from(int_field(obj, key, what)?)
        .map_err(|_| format!("{what}: field {key:?} out of range"))
}

/// A `u64` field that old (pre-resilience) wire-v1 peers omit: absent
/// decodes as 0, so summaries and requests from older builds stay valid.
fn opt_u64_field(obj: &Value, key: &str, what: &str) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(0),
        Some(v) => v
            .as_int()
            .and_then(|i| u64::try_from(i).ok())
            .ok_or_else(|| format!("{what}: field {key:?} must be a nonnegative integer")),
    }
}

fn summary_to_value(summary: &WorkerSummary) -> Value {
    Value::Obj(vec![
        ("node".to_string(), Value::Int(summary.node as i128)),
        (
            "outcome".to_string(),
            Value::Str(outcome_to_wire(&summary.outcome)),
        ),
        (
            "used_fallback".to_string(),
            Value::Bool(summary.used_fallback),
        ),
        ("grade".to_string(), grade_to_value(summary.grade)),
        ("rounds".to_string(), Value::Int(i128::from(summary.rounds))),
        ("messages".to_string(), Value::Int(summary.messages as i128)),
        ("bytes".to_string(), Value::Int(summary.bytes as i128)),
        ("per_round".to_string(), counts_to_value(&summary.per_round)),
        ("dropped".to_string(), Value::Int(summary.dropped as i128)),
        (
            "kd_rounds".to_string(),
            Value::Int(i128::from(summary.kd_rounds)),
        ),
        (
            "kd_messages".to_string(),
            Value::Int(summary.kd_messages as i128),
        ),
        ("kd_bytes".to_string(), Value::Int(summary.kd_bytes as i128)),
        (
            "kd_per_round".to_string(),
            counts_to_value(&summary.kd_per_round),
        ),
        (
            "kd_anomalies".to_string(),
            Value::Int(summary.kd_anomalies as i128),
        ),
        (
            "incarnation".to_string(),
            Value::Int(i128::from(summary.incarnation)),
        ),
        (
            "retries".to_string(),
            Value::Int(i128::from(summary.retries)),
        ),
    ])
}

fn summary_from_value(value: &Value) -> Result<WorkerSummary, String> {
    let what = "worker summary";
    deny_unknown(
        value,
        &[
            "node",
            "outcome",
            "used_fallback",
            "grade",
            "rounds",
            "messages",
            "bytes",
            "per_round",
            "dropped",
            "kd_rounds",
            "kd_messages",
            "kd_bytes",
            "kd_per_round",
            "kd_anomalies",
            "incarnation",
            "retries",
        ],
        what,
    )?;
    Ok(WorkerSummary {
        node: usize_field(value, "node", what)?,
        outcome: outcome_from_wire(str_field(value, "outcome", what)?)?,
        used_fallback: require(value, "used_fallback", what)?
            .as_bool()
            .ok_or_else(|| format!("{what}: used_fallback must be a boolean"))?,
        grade: grade_from_value(require(value, "grade", what)?, what)?,
        rounds: u32_field(value, "rounds", what)?,
        messages: usize_field(value, "messages", what)?,
        bytes: usize_field(value, "bytes", what)?,
        per_round: counts_field(value, "per_round", what)?,
        dropped: usize_field(value, "dropped", what)?,
        kd_rounds: u32_field(value, "kd_rounds", what)?,
        kd_messages: usize_field(value, "kd_messages", what)?,
        kd_bytes: usize_field(value, "kd_bytes", what)?,
        kd_per_round: counts_field(value, "kd_per_round", what)?,
        kd_anomalies: usize_field(value, "kd_anomalies", what)?,
        incarnation: opt_u64_field(value, "incarnation", what)?,
        retries: opt_u64_field(value, "retries", what)?,
    })
}

/// Encode a registry request as one wire-v1 JSON document.
pub fn registry_request_to_json(request: &RegistryRequest) -> String {
    let mut fields: Vec<(String, Value)> =
        vec![("schema_version".to_string(), Value::Int(SCHEMA_VERSION))];
    match request {
        RegistryRequest::Register {
            run,
            node,
            n,
            addr,
            incarnation,
        } => {
            fields.push(("op".to_string(), Value::Str("register".to_string())));
            fields.push(("run".to_string(), Value::Str(run.clone())));
            fields.push(("node".to_string(), Value::Int(*node as i128)));
            fields.push(("n".to_string(), Value::Int(*n as i128)));
            fields.push(("addr".to_string(), Value::Str(addr.clone())));
            fields.push((
                "incarnation".to_string(),
                Value::Int(i128::from(*incarnation)),
            ));
        }
        RegistryRequest::Lookup { run, node } => {
            fields.push(("op".to_string(), Value::Str("lookup".to_string())));
            fields.push(("run".to_string(), Value::Str(run.clone())));
            fields.push(("node".to_string(), Value::Int(*node as i128)));
        }
        RegistryRequest::Barrier {
            run,
            node,
            n,
            phase,
            incarnation,
        } => {
            fields.push(("op".to_string(), Value::Str("barrier".to_string())));
            fields.push(("run".to_string(), Value::Str(run.clone())));
            fields.push(("node".to_string(), Value::Int(*node as i128)));
            fields.push(("n".to_string(), Value::Int(*n as i128)));
            fields.push(("phase".to_string(), Value::Str(phase.clone())));
            fields.push((
                "incarnation".to_string(),
                Value::Int(i128::from(*incarnation)),
            ));
        }
        RegistryRequest::Teardown {
            run,
            node,
            summary,
            incarnation,
        } => {
            fields.push(("op".to_string(), Value::Str("teardown".to_string())));
            fields.push(("run".to_string(), Value::Str(run.clone())));
            fields.push(("node".to_string(), Value::Int(*node as i128)));
            fields.push(("summary".to_string(), summary_to_value(summary)));
            fields.push((
                "incarnation".to_string(),
                Value::Int(i128::from(*incarnation)),
            ));
        }
        RegistryRequest::Collect { run } => {
            fields.push(("op".to_string(), Value::Str("collect".to_string())));
            fields.push(("run".to_string(), Value::Str(run.clone())));
        }
    }
    Value::Obj(fields).to_json()
}

/// Decode a registry request; unknown fields and foreign schema versions
/// are errors.
pub fn registry_request_from_json(json: &str) -> Result<RegistryRequest, String> {
    let value = Value::parse(json)?;
    let what = "registry request";
    deny_unknown(
        &value,
        &[
            "schema_version",
            "op",
            "run",
            "node",
            "n",
            "addr",
            "phase",
            "summary",
            "incarnation",
        ],
        what,
    )?;
    check_schema_version(&value, what)?;
    let run = str_field(&value, "run", what)?.to_string();
    match str_field(&value, "op", what)? {
        "register" => Ok(RegistryRequest::Register {
            run,
            node: usize_field(&value, "node", what)?,
            n: usize_field(&value, "n", what)?,
            addr: str_field(&value, "addr", what)?.to_string(),
            incarnation: opt_u64_field(&value, "incarnation", what)?,
        }),
        "lookup" => Ok(RegistryRequest::Lookup {
            run,
            node: usize_field(&value, "node", what)?,
        }),
        "barrier" => Ok(RegistryRequest::Barrier {
            run,
            node: usize_field(&value, "node", what)?,
            n: usize_field(&value, "n", what)?,
            phase: str_field(&value, "phase", what)?.to_string(),
            incarnation: opt_u64_field(&value, "incarnation", what)?,
        }),
        "teardown" => Ok(RegistryRequest::Teardown {
            run,
            node: usize_field(&value, "node", what)?,
            summary: summary_from_value(require(&value, "summary", what)?)?,
            incarnation: opt_u64_field(&value, "incarnation", what)?,
        }),
        "collect" => Ok(RegistryRequest::Collect { run }),
        other => Err(format!("{what}: unknown op {other:?}")),
    }
}

/// Encode a registry reply as one wire-v1 JSON document.
pub fn registry_reply_to_json(reply: &RegistryReply) -> String {
    let mut fields: Vec<(String, Value)> =
        vec![("schema_version".to_string(), Value::Int(SCHEMA_VERSION))];
    match reply {
        RegistryReply::Roster { peers } => {
            fields.push(("reply".to_string(), Value::Str("roster".to_string())));
            fields.push((
                "peers".to_string(),
                Value::Arr(
                    peers
                        .iter()
                        .map(|(node, addr)| {
                            Value::Arr(vec![Value::Int(*node as i128), Value::Str(addr.clone())])
                        })
                        .collect(),
                ),
            ));
        }
        RegistryReply::Addr { node, addr } => {
            fields.push(("reply".to_string(), Value::Str("addr".to_string())));
            fields.push(("node".to_string(), Value::Int(*node as i128)));
            fields.push(("addr".to_string(), Value::Str(addr.clone())));
        }
        RegistryReply::Released { phase } => {
            fields.push(("reply".to_string(), Value::Str("released".to_string())));
            fields.push(("phase".to_string(), Value::Str(phase.clone())));
        }
        RegistryReply::Ack => {
            fields.push(("reply".to_string(), Value::Str("ack".to_string())));
        }
        RegistryReply::Summaries { workers } => {
            fields.push(("reply".to_string(), Value::Str("summaries".to_string())));
            fields.push((
                "workers".to_string(),
                Value::Arr(workers.iter().map(summary_to_value).collect()),
            ));
        }
        RegistryReply::Error { error } => {
            fields.push(("reply".to_string(), Value::Str("error".to_string())));
            fields.push(("error".to_string(), Value::Str(error.clone())));
        }
    }
    Value::Obj(fields).to_json()
}

/// Decode a registry reply; unknown fields and foreign schema versions
/// are errors.
pub fn registry_reply_from_json(json: &str) -> Result<RegistryReply, String> {
    let value = Value::parse(json)?;
    let what = "registry reply";
    deny_unknown(
        &value,
        &[
            "schema_version",
            "reply",
            "peers",
            "node",
            "addr",
            "phase",
            "workers",
            "error",
        ],
        what,
    )?;
    check_schema_version(&value, what)?;
    match str_field(&value, "reply", what)? {
        "roster" => {
            let peers = require(&value, "peers", what)?
                .as_arr()
                .ok_or_else(|| format!("{what}: peers must be an array"))?
                .iter()
                .map(|entry| {
                    let pair = entry
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("{what}: peers entries are [node, addr]"))?;
                    let node = pair[0]
                        .as_int()
                        .and_then(|i| usize::try_from(i).ok())
                        .ok_or_else(|| format!("{what}: peer node out of range"))?;
                    let addr = pair[1]
                        .as_str()
                        .ok_or_else(|| format!("{what}: peer addr must be a string"))?
                        .to_string();
                    Ok((node, addr))
                })
                .collect::<Result<Vec<(usize, String)>, String>>()?;
            Ok(RegistryReply::Roster { peers })
        }
        "addr" => Ok(RegistryReply::Addr {
            node: usize_field(&value, "node", what)?,
            addr: str_field(&value, "addr", what)?.to_string(),
        }),
        "released" => Ok(RegistryReply::Released {
            phase: str_field(&value, "phase", what)?.to_string(),
        }),
        "ack" => Ok(RegistryReply::Ack),
        "summaries" => {
            let workers = require(&value, "workers", what)?
                .as_arr()
                .ok_or_else(|| format!("{what}: workers must be an array"))?
                .iter()
                .map(summary_from_value)
                .collect::<Result<Vec<WorkerSummary>, String>>()?;
            Ok(RegistryReply::Summaries { workers })
        }
        "error" => Ok(RegistryReply::Error {
            error: str_field(&value, "error", what)?.to_string(),
        }),
        other => Err(format!("{what}: unknown reply {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Cluster;
    use crate::spec::RunSpec;
    use std::sync::Arc as StdArc;

    #[test]
    fn json_parser_round_trips_basic_documents() {
        for doc in [
            "null",
            "true",
            "[1, -2, 3]",
            "{\"a\": 1, \"b\": [\"x\", null]}",
            "{\"s\": \"quote \\\" backslash \\\\ tab \\t\"}",
        ] {
            let value = Value::parse(doc).unwrap();
            let emitted = value.to_json();
            assert_eq!(Value::parse(&emitted).unwrap(), value);
        }
    }

    #[test]
    fn json_parser_rejects_floats_duplicates_and_garbage() {
        assert!(Value::parse("1.5").is_err());
        assert!(Value::parse("1e3").is_err());
        assert!(Value::parse("{\"a\": 1, \"a\": 2}").is_err());
        assert!(Value::parse("[1] trailing").is_err());
        assert!(Value::parse("{\"a\"}").is_err());
    }

    #[test]
    fn hex_round_trips() {
        for bytes in [vec![], vec![0u8], vec![0xde, 0xad, 0xbe, 0xef]] {
            assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        }
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn request_round_trips_through_the_wire() {
        let builder = SpecBuilder::new(Protocol::ChainFd, 7)
            .with_t(2)
            .with_seed(9)
            .with_input(b"v".to_vec())
            .with_adversary(AdversarySpec::scripted(AdversaryKind::SilentRelay));
        let json = request_to_json(&builder, Some("r7")).unwrap();
        let (decoded, id) = request_from_json(&json).unwrap();
        assert_eq!(id.as_deref(), Some("r7"));
        assert_eq!(request_to_json(&decoded, id.as_deref()).unwrap(), json);
    }

    #[test]
    fn request_rejects_unknown_fields_and_wrong_versions() {
        let base = request_to_json(
            &SpecBuilder::new(Protocol::ChainFd, 5).with_input(b"v".to_vec()),
            None,
        )
        .unwrap();
        let unknown = base.replacen("{", "{\"bogus\": 1, ", 1);
        assert!(request_from_json(&unknown).unwrap_err().contains("bogus"));
        let wrong = base.replacen("\"schema_version\": 1", "\"schema_version\": 2", 1);
        assert!(request_from_json(&wrong)
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn custom_adversaries_have_no_wire_form() {
        let builder = SpecBuilder::new(Protocol::ChainFd, 5)
            .with_input(b"v".to_vec())
            .with_adversary(AdversarySpec::custom(|_| None));
        assert!(request_to_json(&builder, None).is_err());
    }

    #[test]
    fn report_wire_encoding_inverts_to_json() {
        let cluster = Cluster::new(6, 1, StdArc::new(fd_crypto::SchnorrScheme::test_tiny()), 3);
        for protocol in [Protocol::ChainFd, Protocol::FdToBa, Protocol::Degradable] {
            let spec = RunSpec::new(protocol, b"wire".to_vec());
            let report = cluster.run(&spec);
            let json = report_to_json(&report);
            let decoded = report_from_json(&json).unwrap();
            assert_eq!(report_to_json(&decoded), json, "{protocol}");
        }
    }

    #[test]
    fn discovered_outcomes_survive_the_wire() {
        let cluster = Cluster::new(6, 1, StdArc::new(fd_crypto::SchnorrScheme::test_tiny()), 3);
        let spec = RunSpec::new(Protocol::ChainFd, b"v".to_vec())
            .with_adversary(AdversarySpec::scripted(AdversaryKind::SilentRelay));
        let report = cluster.run(&spec);
        assert!(report.any_discovery());
        let decoded = report_from_json(&report.to_json()).unwrap();
        assert_eq!(decoded.outcomes, report.outcomes);
        assert_eq!(decoded.to_json(), report.to_json());
    }

    #[test]
    fn every_discovery_reason_parses_back() {
        for reason in [
            DiscoveryReason::MissingMessage { round: 3 },
            DiscoveryReason::UnexpectedMessage { round: 0 },
            DiscoveryReason::Malformed,
            DiscoveryReason::BadSignature,
            DiscoveryReason::NameMismatch,
            DiscoveryReason::UnknownSigner,
            DiscoveryReason::BadStructure,
            DiscoveryReason::Equivocation,
        ] {
            assert_eq!(discovery_from_wire(&reason.to_string()).unwrap(), reason);
        }
        assert!(discovery_from_wire("made-up reason").is_err());
    }

    #[test]
    fn responses_round_trip() {
        let cluster = Cluster::new(5, 1, StdArc::new(fd_crypto::SchnorrScheme::test_tiny()), 1);
        let report = cluster.run(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()));
        let line = response_to_json(Some("a"), 1, true, Some(60), 42, &report.to_json());
        let decoded = response_from_json(&line).unwrap();
        assert_eq!(decoded.id.as_deref(), Some("a"));
        assert_eq!(decoded.shard, 1);
        assert!(decoded.keydist_reused);
        assert_eq!(decoded.keydist_messages, Some(60));
        assert_eq!(decoded.report_json, report.to_json());

        let err = response_from_json(&error_to_json(None, "boom")).unwrap();
        assert_eq!(err.report.unwrap_err(), "boom");
    }

    #[test]
    fn certificates_round_trip_and_validate() {
        let config = SearchConfig {
            latency: LatencySpec::Jitter { extra: 2 },
            ..SearchConfig::new(Protocol::ChainFd, 5, 1, 7)
        };
        let cert = ScheduleCert {
            config,
            episode: 3,
            perturbations: vec![Perturbation {
                index: 0,
                round: 0,
                ticks: 2048,
            }],
        };
        let json = cert_to_json(&cert);
        let decoded = cert_from_json(&json).unwrap();
        assert_eq!(cert_to_json(&decoded), json);
        // Out-of-envelope perturbations fail validation on decode.
        let bad = json.replace("[0, 0, 2048]", "[0, 0, 9999]");
        assert!(cert_from_json(&bad).is_err());
    }

    fn sample_summary() -> WorkerSummary {
        WorkerSummary {
            node: 3,
            outcome: Some(Outcome::Decided(vec![0x76])),
            used_fallback: false,
            grade: Some(Grade::Two),
            rounds: 4,
            messages: 12,
            bytes: 340,
            per_round: vec![6, 6, 0, 0],
            dropped: 0,
            kd_rounds: 4,
            kd_messages: 18,
            kd_bytes: 912,
            kd_per_round: vec![6, 6, 6, 0],
            kd_anomalies: 1,
            incarnation: 1,
            retries: 2,
        }
    }

    #[test]
    fn registry_requests_round_trip() {
        let requests = [
            RegistryRequest::Register {
                run: "r0".to_string(),
                node: 2,
                n: 7,
                addr: "127.0.0.1:4242".to_string(),
                incarnation: 1,
            },
            RegistryRequest::Lookup {
                run: "r0".to_string(),
                node: 5,
            },
            RegistryRequest::Barrier {
                run: "r0".to_string(),
                node: 2,
                n: 7,
                phase: "keydist-done".to_string(),
                incarnation: 0,
            },
            RegistryRequest::Teardown {
                run: "r0".to_string(),
                node: 3,
                summary: sample_summary(),
                incarnation: 2,
            },
            RegistryRequest::Collect {
                run: "r0".to_string(),
            },
        ];
        for request in requests {
            let json = registry_request_to_json(&request);
            let decoded = registry_request_from_json(&json).unwrap();
            assert_eq!(decoded, request);
            assert_eq!(registry_request_to_json(&decoded), json);
        }
    }

    #[test]
    fn registry_replies_round_trip() {
        let replies = [
            RegistryReply::Roster {
                peers: vec![(0, "a:1".to_string()), (1, "b:2".to_string())],
            },
            RegistryReply::Addr {
                node: 1,
                addr: "b:2".to_string(),
            },
            RegistryReply::Released {
                phase: "keydist-done".to_string(),
            },
            RegistryReply::Ack,
            RegistryReply::Summaries {
                workers: vec![sample_summary()],
            },
            RegistryReply::Error {
                error: "no such run".to_string(),
            },
        ];
        for reply in replies {
            let json = registry_reply_to_json(&reply);
            let decoded = registry_reply_from_json(&json).unwrap();
            assert_eq!(decoded, reply);
            assert_eq!(registry_reply_to_json(&decoded), json);
        }
    }

    #[test]
    fn registry_messages_reject_unknown_fields_and_wrong_versions() {
        let request = registry_request_to_json(&RegistryRequest::Collect {
            run: "r0".to_string(),
        });
        let reply = registry_reply_to_json(&RegistryReply::Ack);
        for base in [request, reply] {
            assert!(registry_request_from_json(&base)
                .map(|_| ())
                .or(registry_reply_from_json(&base).map(|_| ()))
                .is_ok());
            let bogus = base.replacen("{", "{\"bogus\": 1, ", 1);
            assert!(registry_request_from_json(&bogus).is_err());
            assert!(registry_reply_from_json(&bogus).is_err());
            let foreign = base.replacen("\"schema_version\": 1", "\"schema_version\": 2", 1);
            assert!(registry_request_from_json(&foreign).is_err());
            assert!(registry_reply_from_json(&foreign).is_err());
        }
    }
}
