//! The sharded session service behind `lafd serve`.
//!
//! The paper's Fig. 1 economics — one `3n(n−1)`-message key distribution
//! amortized over many `n−1`-message runs — only pay off when *many
//! callers* share key material. A [`Session`](crate::spec::Session)
//! amortizes for one in-process caller; [`FdService`] extends the same
//! shape to a long-lived process serving wire requests:
//!
//! * Requests (wire-v1 lines, see [`crate::wire`]) are routed to a fixed
//!   **shard** by `(n, scheme)` — every request for one key-material
//!   universe lands on the same worker thread, so shard state needs no
//!   locks.
//! * Each shard holds a bounded pool of **pre-warmed sessions** keyed by
//!   `(n, scheme, seed)`: the key distribution report, its interned
//!   [`PredicateTable`](crate::keys::PredicateTable), and a long-lived
//!   [`VerifyCache`] are established on first use and reused by every
//!   later request with the same key, with least-recently-used eviction
//!   past [`ServiceConfig::max_sessions`] entries per shard.
//! * Execution still goes through [`Cluster::run_with_keys`] on the
//!   request's own cluster configuration (engine, latency, schedule), so
//!   a service response's report is **byte-identical** to the same
//!   request executed via a direct [`Cluster::run`] — keydist and
//!   verification-cache reuse are invisible in the bytes, which the
//!   service integration tests assert.
//! * [`FdService::shutdown`] is a graceful drain: queued requests finish,
//!   workers join, and the final metrics snapshot is returned in the same
//!   JSON shape `lafd bench` records (`wall_us`/`messages`/`bytes` cells)
//!   plus service-level throughput: runs/sec, keydist reuse ratio, and
//!   p50/p99 request latency.
//!
//! [`Cluster::run`]: crate::runner::Cluster::run
//! [`Cluster::run_with_keys`]: crate::runner::Cluster::run_with_keys

use crate::keys::VerifyCache;
use crate::pool::{self, ShardWorkers};
use crate::runner::KeyDistReport;
use crate::spec::SpecBuilder;
use crate::wire;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Configuration of an [`FdService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker shards. Requests are routed by `(n, scheme)`, so two shards
    /// serve two disjoint key-material universes concurrently.
    pub shards: usize,
    /// Pre-warmed sessions kept per shard; the least-recently-used entry
    /// is evicted past this bound.
    pub max_sessions: usize,
}

impl Default for ServiceConfig {
    /// Two shards, eight sessions each — the shape of the acceptance
    /// benchmark.
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            max_sessions: 8,
        }
    }
}

/// One queued request: a validated builder plus the reply channel.
struct Job {
    builder: SpecBuilder,
    id: Option<String>,
    reply: mpsc::Sender<String>,
}

/// A pre-warmed session slot: everything reusable across runs that share
/// `(n, scheme, seed)`.
struct PooledSession {
    /// The established key distribution (`None` until a key-needing
    /// protocol first arrives — key-free traffic never pays for one).
    keydist: Option<KeyDistReport>,
    keydist_messages: Option<usize>,
    key_allocs: usize,
    /// Long-lived verification cache shared by every run in this slot.
    cache: VerifyCache,
    /// LRU clock value of the most recent use.
    last_used: u64,
    /// Wall-clock instant of the most recent use (feeds the eviction-age
    /// histogram: how stale a slot was when the LRU bound pushed it out).
    last_touch: Instant,
}

/// One aggregated `protocol × n × t × engine × scheme` metrics cell —
/// the service analogue of a `lafd bench` results row.
#[derive(Debug, Default, Clone)]
struct Cell {
    runs: usize,
    wall_us: u128,
    messages: usize,
    bytes: usize,
    comm_rounds: usize,
    key_allocs: usize,
}

/// Per-shard counters, written only by the shard's worker thread.
#[derive(Debug, Default)]
struct ShardStats {
    runs: usize,
    errors: usize,
    keydist_runs: usize,
    keydist_reused: usize,
    evictions: usize,
    latencies_us: Vec<u64>,
    /// Session-pool occupancy after the most recent job on this shard.
    pool_sessions: usize,
    /// Peak session-pool occupancy.
    pool_peak: usize,
    /// Age (µs since last use) of each evicted session, in eviction order.
    eviction_ages_us: Vec<u64>,
    cells: BTreeMap<(String, usize, usize, String, String), Cell>,
}

/// The sharded session service: see the module docs for the shape.
///
/// ```
/// use fd_core::service::{FdService, ServiceConfig};
/// use fd_core::spec::{Protocol, SpecBuilder};
/// use fd_core::wire;
///
/// let service = FdService::start(ServiceConfig::default());
/// let request = wire::request_to_json(
///     &SpecBuilder::new(Protocol::ChainFd, 6).with_input(b"v".to_vec()),
///     Some("r0"),
/// )
/// .unwrap();
/// let response = wire::response_from_json(&service.submit_line(&request)).unwrap();
/// assert!(response.report.unwrap().all_decided(b"v"));
/// let metrics = service.shutdown();
/// assert!(metrics.contains("\"runs_per_sec\""));
/// ```
pub struct FdService {
    workers: ShardWorkers<Job>,
    stats: Arc<Vec<Mutex<ShardStats>>>,
    /// Per-shard queue-depth gauges: incremented on submit, decremented
    /// when the shard worker picks the job up.
    queue_depths: Arc<Vec<AtomicUsize>>,
    /// Per-shard peak queue depth.
    queue_peaks: Arc<Vec<AtomicUsize>>,
    /// Errors rejected before reaching a shard (parse/validation).
    front_errors: AtomicUsize,
    started: Instant,
}

/// Rendering of a service metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The `lafd-serve-v1` JSON document (default).
    Json,
    /// Prometheus text exposition (one metric per line, `# EOF`
    /// terminated so line-framed wire clients can find the end).
    Prometheus,
}

impl MetricsFormat {
    /// Parse a CLI/wire format name (`json` or `prometheus`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "json" => Ok(MetricsFormat::Json),
            "prometheus" | "prom" => Ok(MetricsFormat::Prometheus),
            other => Err(format!(
                "unknown metrics format \"{other}\" (expected json or prometheus)"
            )),
        }
    }
}

impl FdService {
    /// Start the worker shards (empty session pools — sessions pre-warm
    /// on first use and stay warm).
    pub fn start(config: ServiceConfig) -> FdService {
        let shards = config.shards.max(1);
        let max_sessions = config.max_sessions.max(1);
        let stats: Arc<Vec<Mutex<ShardStats>>> = Arc::new(
            (0..shards)
                .map(|_| Mutex::new(ShardStats::default()))
                .collect(),
        );
        let queue_depths: Arc<Vec<AtomicUsize>> =
            Arc::new((0..shards).map(|_| AtomicUsize::new(0)).collect());
        let queue_peaks: Arc<Vec<AtomicUsize>> =
            Arc::new((0..shards).map(|_| AtomicUsize::new(0)).collect());
        let workers = ShardWorkers::spawn(shards, |shard| {
            let stats = Arc::clone(&stats);
            let queue_depths = Arc::clone(&queue_depths);
            let mut sessions: HashMap<(usize, String, u64), PooledSession> = HashMap::new();
            let mut clock: u64 = 0;
            move |job: Job| {
                queue_depths[shard].fetch_sub(1, Ordering::Relaxed);
                let response = catch_unwind(AssertUnwindSafe(|| {
                    execute(
                        &mut sessions,
                        &mut clock,
                        max_sessions,
                        shard,
                        &stats[shard],
                        &job.builder,
                        job.id.as_deref(),
                    )
                }))
                .unwrap_or_else(|_| {
                    stats[shard].lock().expect("shard stats poisoned").errors += 1;
                    wire::error_to_json(job.id.as_deref(), "internal: run panicked")
                });
                // A gone client is not the worker's problem.
                let _ = job.reply.send(response);
            }
        });
        FdService {
            workers,
            stats,
            queue_depths,
            queue_peaks,
            front_errors: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// The shard a `(n, scheme)` pair routes to (FNV-1a over both).
    pub fn shard_of(&self, n: usize, scheme: &str) -> usize {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for &b in scheme.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        for b in (n as u64).to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        (h % self.workers.shards() as u64) as usize
    }

    /// Handle one wire-v1 request line end to end: parse, validate, route
    /// to the owning shard, execute, and return the response line.
    /// Malformed or invalid requests are answered (never dropped) with a
    /// wire error response.
    pub fn submit_line(&self, line: &str) -> String {
        let (builder, id) = match wire::request_from_json(line.trim()) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.front_errors.fetch_add(1, Ordering::Relaxed);
                return wire::error_to_json(None, &e);
            }
        };
        // Validate up front so a shard worker can never hit a `Cluster`
        // panic on a bad request shape.
        if let Err(e) = builder.validate() {
            self.front_errors.fetch_add(1, Ordering::Relaxed);
            return wire::error_to_json(id.as_deref(), &e);
        }
        let shard = self.shard_of(builder.n, &builder.scheme);
        let (reply, receiver) = mpsc::channel();
        let depth = self.queue_depths[shard].fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peaks[shard].fetch_max(depth, Ordering::Relaxed);
        if let Err(e) = self.workers.submit(
            shard,
            Job {
                builder,
                id: id.clone(),
                reply,
            },
        ) {
            self.queue_depths[shard].fetch_sub(1, Ordering::Relaxed);
            self.front_errors.fetch_add(1, Ordering::Relaxed);
            return wire::error_to_json(id.as_deref(), &e);
        }
        receiver
            .recv()
            .unwrap_or_else(|_| wire::error_to_json(id.as_deref(), "worker dropped the request"))
    }

    /// Handle a batch of request lines from `clients` concurrent client
    /// threads, returning responses in input order (the stdin batch mode
    /// of `lafd serve`, and the concurrency test harness).
    pub fn submit_batch(&self, lines: &[String], clients: usize) -> Vec<String> {
        pool::parallel_indexed(lines.len(), clients.max(1), |i| self.submit_line(&lines[i]))
    }

    /// Gather a consistent snapshot of every counter and gauge.
    fn snapshot(&self, elapsed_us: u128) -> MetricsSnapshot {
        gather(
            &self.stats,
            self.front_errors.load(Ordering::Relaxed),
            elapsed_us,
            self.queue_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            self.queue_peaks
                .iter()
                .map(|p| p.load(Ordering::Relaxed))
                .collect(),
        )
    }

    /// A live metrics snapshot: service-level throughput plus the
    /// bench-shaped per-cell rows, rendered as `lafd-serve-v1` JSON.
    pub fn metrics_json(&self) -> String {
        self.snapshot(self.started.elapsed().as_micros()).to_json()
    }

    /// A live metrics snapshot in Prometheus text exposition: run/error
    /// counters, per-shard queue-depth and session-pool-occupancy gauges,
    /// request-latency quantiles, and the eviction-age histogram. The
    /// rendering ends with a `# EOF` line so line-framed wire clients can
    /// find the document boundary.
    pub fn metrics_prometheus(&self) -> String {
        self.snapshot(self.started.elapsed().as_micros())
            .to_prometheus()
    }

    /// A live metrics snapshot in the requested format.
    pub fn metrics_in(&self, format: MetricsFormat) -> String {
        match format {
            MetricsFormat::Json => self.metrics_json(),
            MetricsFormat::Prometheus => self.metrics_prometheus(),
        }
    }

    /// Graceful drain: stop accepting requests, finish everything queued,
    /// join the workers, and return the final metrics snapshot.
    pub fn shutdown(self) -> String {
        self.shutdown_with(MetricsFormat::Json)
    }

    /// [`FdService::shutdown`] with the final snapshot rendered in the
    /// requested format (`lafd serve --metrics-format`).
    pub fn shutdown_with(self, format: MetricsFormat) -> String {
        let elapsed = self.started.elapsed().as_micros();
        self.workers.join();
        let snapshot = gather(
            &self.stats,
            self.front_errors.load(Ordering::Relaxed),
            elapsed,
            self.queue_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            self.queue_peaks
                .iter()
                .map(|p| p.load(Ordering::Relaxed))
                .collect(),
        );
        match format {
            MetricsFormat::Json => snapshot.to_json(),
            MetricsFormat::Prometheus => snapshot.to_prometheus(),
        }
    }
}

/// Execute one validated request on its shard (runs on the shard's worker
/// thread; `sessions` and `clock` are that thread's own state).
fn execute(
    sessions: &mut HashMap<(usize, String, u64), PooledSession>,
    clock: &mut u64,
    max_sessions: usize,
    shard: usize,
    stats: &Mutex<ShardStats>,
    builder: &SpecBuilder,
    id: Option<&str>,
) -> String {
    let started = Instant::now();
    let (cluster, spec) = match builder.build() {
        Ok(pair) => pair,
        Err(e) => {
            stats.lock().expect("shard stats poisoned").errors += 1;
            return wire::error_to_json(id, &e);
        }
    };
    *clock += 1;
    let key = (builder.n, builder.scheme.clone(), builder.seed);
    // Bounded pool: evict the least-recently-used slot before warming a
    // new one past the cap.
    let mut evicted_age_us = None;
    if !sessions.contains_key(&key) && sessions.len() >= max_sessions {
        if let Some(oldest) = sessions
            .iter()
            .min_by_key(|(_, slot)| slot.last_used)
            .map(|(k, _)| k.clone())
        {
            if let Some(slot) = sessions.remove(&oldest) {
                evicted_age_us = Some(slot.last_touch.elapsed().as_micros() as u64);
            }
        }
    }
    let slot = sessions.entry(key).or_insert_with(|| PooledSession {
        keydist: None,
        keydist_messages: None,
        key_allocs: 0,
        cache: VerifyCache::new(),
        last_used: 0,
        last_touch: Instant::now(),
    });
    slot.last_used = *clock;
    slot.last_touch = Instant::now();
    // The request executes on its *own* cluster configuration — only the
    // verification cache is swapped in from the pool, which cannot change
    // report bytes (content-addressed; see `VerifyCache`).
    let cluster = cluster.with_verify_cache(slot.cache.clone());
    let needs_keys = spec.protocol.needs_keys();
    let keydist_reused = needs_keys && slot.keydist.is_some();
    if needs_keys && slot.keydist.is_none() {
        let kd = cluster.setup_keydist();
        slot.keydist_messages = Some(kd.stats.messages_total);
        slot.key_allocs = kd
            .predicates
            .as_ref()
            .map_or(0, |table| table.distinct_allocations());
        slot.keydist = Some(kd);
    }
    let report = cluster.run_with_keys(
        &spec,
        if needs_keys {
            slot.keydist.as_ref()
        } else {
            None
        },
    );
    let wall_us = started.elapsed().as_micros() as u64;
    let keydist_messages = if needs_keys {
        slot.keydist_messages
    } else {
        None
    };
    let key_allocs = if needs_keys { slot.key_allocs } else { 0 };

    let pool_size = sessions.len();
    let mut s = stats.lock().expect("shard stats poisoned");
    s.runs += 1;
    s.pool_sessions = pool_size;
    s.pool_peak = s.pool_peak.max(pool_size);
    if let Some(age) = evicted_age_us {
        s.evictions += 1;
        s.eviction_ages_us.push(age);
    }
    if keydist_reused {
        s.keydist_reused += 1;
    } else if needs_keys {
        s.keydist_runs += 1;
    }
    s.latencies_us.push(wall_us);
    let cell = s
        .cells
        .entry((
            builder.protocol.name().to_string(),
            builder.n,
            builder.resolved_t(),
            builder.engine.name().to_string(),
            builder.scheme.clone(),
        ))
        .or_default();
    cell.runs += 1;
    cell.wall_us += u128::from(wall_us);
    cell.messages += report.stats.messages_total;
    cell.bytes += report.stats.bytes_total;
    cell.comm_rounds = cell
        .comm_rounds
        .max(report.stats.per_round.iter().filter(|&&x| x > 0).count());
    cell.key_allocs = cell.key_allocs.max(key_allocs);
    drop(s);

    wire::response_to_json(
        id,
        shard,
        keydist_reused,
        keydist_messages,
        wall_us,
        &report.to_json(),
    )
}

/// The percentile entry of a sorted latency list (nearest-rank on the
/// sorted samples), or `None` with fewer than two samples — a percentile
/// of zero or one observation is statistically meaningless, and the old
/// `0` answer was indistinguishable from "instant". Rendered as `null`
/// in JSON and omitted from Prometheus output.
fn percentile_us(sorted: &[u64], pct: usize) -> Option<u64> {
    if sorted.len() < 2 {
        return None;
    }
    Some(sorted[(sorted.len() - 1) * pct / 100])
}

/// `Option` percentile rendered for JSON.
fn json_opt(value: Option<u64>) -> String {
    value.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// A consistent point-in-time aggregation of every counter and gauge,
/// independent of the rendering format.
struct MetricsSnapshot {
    shards: usize,
    runs: usize,
    errors: usize,
    keydist_runs: usize,
    keydist_reused: usize,
    evictions: usize,
    /// Sorted request latencies.
    latencies: Vec<u64>,
    /// Sorted eviction ages (µs since the slot's last use).
    eviction_ages: Vec<u64>,
    /// Per-shard session-pool occupancy after the most recent job.
    pool_sessions: Vec<usize>,
    /// Per-shard peak session-pool occupancy.
    pool_peaks: Vec<usize>,
    /// Per-shard live queue depth.
    queue_depths: Vec<usize>,
    /// Per-shard peak queue depth.
    queue_peaks: Vec<usize>,
    elapsed_us: u128,
    cells: BTreeMap<(String, usize, usize, String, String), Cell>,
}

/// Aggregate the per-shard stats plus the service-level gauges.
fn gather(
    stats: &[Mutex<ShardStats>],
    front_errors: usize,
    elapsed_us: u128,
    queue_depths: Vec<usize>,
    queue_peaks: Vec<usize>,
) -> MetricsSnapshot {
    let mut snapshot = MetricsSnapshot {
        shards: stats.len(),
        runs: 0,
        errors: front_errors,
        keydist_runs: 0,
        keydist_reused: 0,
        evictions: 0,
        latencies: Vec::new(),
        eviction_ages: Vec::new(),
        pool_sessions: Vec::with_capacity(stats.len()),
        pool_peaks: Vec::with_capacity(stats.len()),
        queue_depths,
        queue_peaks,
        elapsed_us,
        cells: BTreeMap::new(),
    };
    for shard in stats {
        let s = shard.lock().expect("shard stats poisoned");
        snapshot.runs += s.runs;
        snapshot.errors += s.errors;
        snapshot.keydist_runs += s.keydist_runs;
        snapshot.keydist_reused += s.keydist_reused;
        snapshot.evictions += s.evictions;
        snapshot.latencies.extend_from_slice(&s.latencies_us);
        snapshot
            .eviction_ages
            .extend_from_slice(&s.eviction_ages_us);
        snapshot.pool_sessions.push(s.pool_sessions);
        snapshot.pool_peaks.push(s.pool_peak);
        for (key, cell) in &s.cells {
            let merged = snapshot.cells.entry(key.clone()).or_default();
            merged.runs += cell.runs;
            merged.wall_us += cell.wall_us;
            merged.messages += cell.messages;
            merged.bytes += cell.bytes;
            merged.comm_rounds = merged.comm_rounds.max(cell.comm_rounds);
            merged.key_allocs = merged.key_allocs.max(cell.key_allocs);
        }
    }
    snapshot.latencies.sort_unstable();
    snapshot.eviction_ages.sort_unstable();
    snapshot
}

fn usize_array(values: &[usize]) -> String {
    let parts: Vec<String> = values.iter().map(usize::to_string).collect();
    format!("[{}]", parts.join(", "))
}

impl MetricsSnapshot {
    /// Render the `lafd-serve-v1` metrics document:
    ///
    /// ```json
    /// {"schema": "lafd-serve-v1",
    ///  "service": {"shards": 2, "runs": 200, "errors": 0,
    ///              "keydist_runs": 2, "keydist_reused": 120,
    ///              "keydist_reuse_pct": 98, "evictions": 0,
    ///              "wall_us": 123456, "runs_per_sec": 1620,
    ///              "p50_us": 180, "p99_us": 950,
    ///              "queue_depth": [0, 0], "queue_peak": [3, 1],
    ///              "pool_sessions": [2, 1], "pool_peak": [2, 2],
    ///              "eviction_age_p50_us": null},
    ///  "results": [ ...bench-shaped cells, plus "runs"... ]}
    /// ```
    ///
    /// `p50_us`/`p99_us`/`eviction_age_p50_us` are `null` with fewer than
    /// two samples (see [`percentile_us`]); the gauge arrays carry one
    /// entry per shard. The `results` rows carry the exact field set of a
    /// `lafd bench` cell (`protocol`/`n`/`t`/`engine`/`scheme`/`wall_us`/
    /// `messages`/`bytes`/`comm_rounds`/`key_allocs`) with `wall_us`,
    /// `messages`, and `bytes` accumulated across the cell's runs and a
    /// trailing `runs` count, so the bench regression tooling can parse
    /// them unchanged.
    fn to_json(&self) -> String {
        let keyed = self.keydist_runs + self.keydist_reused;
        let reuse_pct = (self.keydist_reused * 100).checked_div(keyed).unwrap_or(0);
        let runs_per_sec = (self.runs as u128) * 1_000_000 / self.elapsed_us.max(1);
        let mut out = format!(
            "{{\n  \"schema\": \"lafd-serve-v1\",\n  \"service\": {{\"shards\": {}, \
             \"runs\": {}, \"errors\": {}, \"keydist_runs\": {}, \
             \"keydist_reused\": {}, \"keydist_reuse_pct\": {reuse_pct}, \
             \"evictions\": {}, \"wall_us\": {}, \
             \"runs_per_sec\": {runs_per_sec}, \"p50_us\": {}, \"p99_us\": {}, \
             \"queue_depth\": {}, \"queue_peak\": {}, \"pool_sessions\": {}, \
             \"pool_peak\": {}, \"eviction_age_p50_us\": {}}},\n  \"results\": [\n",
            self.shards,
            self.runs,
            self.errors,
            self.keydist_runs,
            self.keydist_reused,
            self.evictions,
            self.elapsed_us,
            json_opt(percentile_us(&self.latencies, 50)),
            json_opt(percentile_us(&self.latencies, 99)),
            usize_array(&self.queue_depths),
            usize_array(&self.queue_peaks),
            usize_array(&self.pool_sessions),
            usize_array(&self.pool_peaks),
            json_opt(percentile_us(&self.eviction_ages, 50)),
        );
        let rows: Vec<String> = self
            .cells
            .iter()
            .map(|((protocol, n, t, engine, scheme), cell)| {
                format!(
                    "    {{\"protocol\": \"{protocol}\", \"n\": {n}, \"t\": {t}, \
                     \"engine\": \"{engine}\", \"scheme\": \"{scheme}\", \"wall_us\": {}, \
                     \"messages\": {}, \"bytes\": {}, \"comm_rounds\": {}, \"key_allocs\": {}, \
                     \"runs\": {}}}",
                    cell.wall_us,
                    cell.messages,
                    cell.bytes,
                    cell.comm_rounds,
                    cell.key_allocs,
                    cell.runs
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render Prometheus text exposition: HELP/TYPE-annotated counters,
    /// per-shard `{shard="i"}` gauges for queue depth and session-pool
    /// occupancy, latency quantiles (omitted with fewer than two
    /// samples), and a log-bucketed eviction-age histogram. Terminated by
    /// a `# EOF` line.
    fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: usize| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter("lafd_runs_total", "Completed protocol runs.", self.runs);
        counter(
            "lafd_errors_total",
            "Requests answered with an error (parse, validation, or panic).",
            self.errors,
        );
        counter(
            "lafd_keydist_runs_total",
            "Key distributions executed to warm a session.",
            self.keydist_runs,
        );
        counter(
            "lafd_keydist_reused_total",
            "Runs that reused an already-warm key distribution.",
            self.keydist_reused,
        );
        counter(
            "lafd_session_evictions_total",
            "Sessions evicted by the per-shard LRU bound.",
            self.evictions,
        );
        let mut gauge = |name: &str, help: &str, values: &[usize]| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for (shard, value) in values.iter().enumerate() {
                out.push_str(&format!("{name}{{shard=\"{shard}\"}} {value}\n"));
            }
        };
        gauge(
            "lafd_shard_queue_depth",
            "Requests queued on the shard right now.",
            &self.queue_depths,
        );
        gauge(
            "lafd_shard_queue_peak",
            "Peak requests queued on the shard.",
            &self.queue_peaks,
        );
        gauge(
            "lafd_session_pool_occupancy",
            "Warm sessions pooled on the shard after its most recent job.",
            &self.pool_sessions,
        );
        gauge(
            "lafd_session_pool_peak",
            "Peak warm sessions pooled on the shard.",
            &self.pool_peaks,
        );
        out.push_str(
            "# HELP lafd_request_latency_us Request wall latency, microseconds.\n\
             # TYPE lafd_request_latency_us summary\n",
        );
        if let (Some(p50), Some(p99)) = (
            percentile_us(&self.latencies, 50),
            percentile_us(&self.latencies, 99),
        ) {
            out.push_str(&format!(
                "lafd_request_latency_us{{quantile=\"0.5\"}} {p50}\n\
                 lafd_request_latency_us{{quantile=\"0.99\"}} {p99}\n"
            ));
        }
        let latency_sum: u128 = self.latencies.iter().map(|&v| u128::from(v)).sum();
        out.push_str(&format!(
            "lafd_request_latency_us_sum {latency_sum}\n\
             lafd_request_latency_us_count {}\n",
            self.latencies.len()
        ));
        out.push_str(
            "# HELP lafd_eviction_age_us Age of evicted sessions since last use, microseconds.\n\
             # TYPE lafd_eviction_age_us histogram\n",
        );
        const BUCKETS: [u64; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];
        for le in BUCKETS {
            let below = self.eviction_ages.iter().filter(|&&age| age <= le).count();
            out.push_str(&format!(
                "lafd_eviction_age_us_bucket{{le=\"{le}\"}} {below}\n"
            ));
        }
        let age_sum: u128 = self.eviction_ages.iter().map(|&v| u128::from(v)).sum();
        out.push_str(&format!(
            "lafd_eviction_age_us_bucket{{le=\"+Inf\"}} {}\n\
             lafd_eviction_age_us_sum {age_sum}\n\
             lafd_eviction_age_us_count {}\n",
            self.eviction_ages.len(),
            self.eviction_ages.len()
        ));
        out.push_str(&format!("lafd_uptime_us {}\n", self.elapsed_us));
        out.push_str("# EOF\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Protocol;
    use crate::wire::Value;

    fn request(protocol: Protocol, n: usize, seed: u64, input: &[u8], id: &str) -> String {
        wire::request_to_json(
            &SpecBuilder::new(protocol, n)
                .with_seed(seed)
                .with_input(input.to_vec()),
            Some(id),
        )
        .unwrap()
    }

    #[test]
    fn one_keydist_per_session_key_across_many_runs() {
        let service = FdService::start(ServiceConfig::default());
        for k in 0..6u8 {
            let line = request(Protocol::ChainFd, 6, 7, &[k], &format!("r{k}"));
            let response = wire::response_from_json(&service.submit_line(&line)).unwrap();
            let report = response.report.unwrap();
            assert!(report.all_decided(&[k]));
            assert_eq!(
                response.keydist_reused,
                k > 0,
                "first run warms, rest reuse"
            );
            assert_eq!(
                response.keydist_messages,
                Some(crate::metrics::keydist_messages(6))
            );
        }
        let metrics = Value::parse(&service.shutdown()).unwrap();
        let svc = metrics.get("service").unwrap();
        assert_eq!(svc.get("runs").unwrap().as_int(), Some(6));
        assert_eq!(svc.get("keydist_runs").unwrap().as_int(), Some(1));
        assert_eq!(svc.get("keydist_reused").unwrap().as_int(), Some(5));
        assert_eq!(svc.get("errors").unwrap().as_int(), Some(0));
    }

    #[test]
    fn responses_are_byte_identical_to_direct_cluster_run() {
        let service = FdService::start(ServiceConfig::default());
        for (protocol, k) in [
            (Protocol::ChainFd, 0u8),
            (Protocol::FdToBa, 1),
            (Protocol::NonAuthFd, 2),
            (Protocol::Degradable, 3),
        ] {
            let builder = SpecBuilder::new(protocol, 7)
                .with_seed(11)
                .with_input(vec![k]);
            let line = wire::request_to_json(&builder, None).unwrap();
            let response = wire::response_from_json(&service.submit_line(&line)).unwrap();
            let (cluster, spec) = builder.build().unwrap();
            assert_eq!(
                response.report_json,
                cluster.run(&spec).to_json(),
                "{protocol} diverged from the direct path"
            );
        }
        service.shutdown();
    }

    #[test]
    fn bad_requests_get_error_responses_not_drops() {
        let service = FdService::start(ServiceConfig {
            shards: 1,
            max_sessions: 2,
        });
        // Parse error.
        let r = wire::response_from_json(&service.submit_line("{nope")).unwrap();
        assert!(r.report.is_err());
        // Validation error (inadmissible shape), id echoed.
        let bad = "{\"schema_version\": 1, \"id\": \"x\", \"protocol\": \"phase_king\", \
                   \"n\": 5, \"t\": 2, \"input\": \"00\"}";
        let r = wire::response_from_json(&service.submit_line(bad)).unwrap();
        assert_eq!(r.id.as_deref(), Some("x"));
        assert!(r.report.unwrap_err().contains("inadmissible"));
        let metrics = Value::parse(&service.shutdown()).unwrap();
        assert_eq!(
            metrics
                .get("service")
                .unwrap()
                .get("errors")
                .unwrap()
                .as_int(),
            Some(2)
        );
    }

    #[test]
    fn lru_eviction_bounds_the_pool() {
        let service = FdService::start(ServiceConfig {
            shards: 1,
            max_sessions: 2,
        });
        // Three distinct session keys (different seeds) through a
        // 2-session shard: the third warm-up evicts the first.
        for seed in [1u64, 2, 3] {
            let line = wire::request_to_json(
                &SpecBuilder::new(Protocol::ChainFd, 5)
                    .with_seed(seed)
                    .with_input(b"v".to_vec()),
                None,
            )
            .unwrap();
            let response = wire::response_from_json(&service.submit_line(&line)).unwrap();
            assert!(!response.keydist_reused);
        }
        // Seed 1 was evicted: running it again re-warms (keydist run #4).
        let line = wire::request_to_json(
            &SpecBuilder::new(Protocol::ChainFd, 5)
                .with_seed(1)
                .with_input(b"v".to_vec()),
            None,
        )
        .unwrap();
        let response = wire::response_from_json(&service.submit_line(&line)).unwrap();
        assert!(!response.keydist_reused, "evicted session re-warms");
        let metrics = Value::parse(&service.shutdown()).unwrap();
        let svc = metrics.get("service").unwrap();
        assert_eq!(svc.get("keydist_runs").unwrap().as_int(), Some(4));
        assert!(svc.get("evictions").unwrap().as_int().unwrap() >= 2);
    }

    #[test]
    fn percentile_is_null_with_zero_samples() {
        assert_eq!(percentile_us(&[], 50), None);
        assert_eq!(percentile_us(&[], 99), None);
    }

    #[test]
    fn percentile_is_null_with_one_sample() {
        assert_eq!(percentile_us(&[123], 50), None);
        assert_eq!(percentile_us(&[123], 99), None);
    }

    #[test]
    fn percentile_answers_with_two_or_more_samples() {
        assert_eq!(percentile_us(&[10, 90], 50), Some(10));
        assert_eq!(percentile_us(&[10, 90], 100), Some(90));
        let many: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&many, 50), Some(50));
        assert_eq!(percentile_us(&many, 99), Some(99));
    }

    #[test]
    fn single_run_metrics_render_null_percentiles() {
        let service = FdService::start(ServiceConfig {
            shards: 1,
            max_sessions: 2,
        });
        let line = request(Protocol::ChainFd, 5, 3, b"v", "only");
        wire::response_from_json(&service.submit_line(&line)).unwrap();
        let raw = service.shutdown();
        let metrics = Value::parse(&raw).unwrap();
        let svc = metrics.get("service").unwrap();
        assert!(svc.get("p50_us").unwrap().is_null(), "one sample -> null");
        assert!(svc.get("p99_us").unwrap().is_null(), "one sample -> null");
        assert!(
            svc.get("eviction_age_p50_us").unwrap().is_null(),
            "no evictions -> null"
        );
    }

    #[test]
    fn prometheus_exposition_carries_gauges_and_eof() {
        let service = FdService::start(ServiceConfig {
            shards: 2,
            max_sessions: 1,
        });
        // Two session keys through 1-slot shards to force an eviction.
        for seed in [1u64, 2, 3] {
            let line = wire::request_to_json(
                &SpecBuilder::new(Protocol::ChainFd, 5)
                    .with_seed(seed)
                    .with_input(b"v".to_vec()),
                None,
            )
            .unwrap();
            wire::response_from_json(&service.submit_line(&line)).unwrap();
        }
        let text = service.metrics_prometheus();
        assert!(text.contains("# TYPE lafd_runs_total counter"));
        assert!(text.contains("lafd_runs_total 3"));
        assert!(text.contains("lafd_shard_queue_depth{shard=\"0\"} 0"));
        assert!(text.contains("lafd_shard_queue_depth{shard=\"1\"} 0"));
        assert!(text.contains("# TYPE lafd_session_pool_occupancy gauge"));
        assert!(text.contains("lafd_session_pool_peak{shard="));
        assert!(text.contains("lafd_eviction_age_us_bucket{le=\"+Inf\"}"));
        assert!(text.contains("lafd_uptime_us "));
        assert!(
            text.ends_with("# EOF\n"),
            "line-framed clients need a terminator"
        );
        // metrics_in dispatches on format.
        assert!(service.metrics_in(MetricsFormat::Json).starts_with('{'));
        assert_eq!(MetricsFormat::parse("prom"), Ok(MetricsFormat::Prometheus));
        assert_eq!(MetricsFormat::parse("json"), Ok(MetricsFormat::Json));
        assert!(MetricsFormat::parse("xml").is_err());
        service.shutdown_with(MetricsFormat::Prometheus);
    }

    #[test]
    fn batch_mode_preserves_input_order() {
        let service = FdService::start(ServiceConfig::default());
        let lines: Vec<String> = (0..12u8)
            .map(|k| request(Protocol::ChainFd, 5, 3, &[k], &format!("b{k}")))
            .collect();
        let responses = service.submit_batch(&lines, 4);
        assert_eq!(responses.len(), 12);
        for (k, line) in responses.iter().enumerate() {
            let response = wire::response_from_json(line).unwrap();
            assert_eq!(response.id.as_deref(), Some(format!("b{k}").as_str()));
            assert!(response.report.unwrap().all_decided(&[k as u8]));
        }
        service.shutdown();
    }
}
