//! The sharded session service behind `lafd serve`.
//!
//! The paper's Fig. 1 economics — one `3n(n−1)`-message key distribution
//! amortized over many `n−1`-message runs — only pay off when *many
//! callers* share key material. A [`Session`](crate::spec::Session)
//! amortizes for one in-process caller; [`FdService`] extends the same
//! shape to a long-lived process serving wire requests:
//!
//! * Requests (wire-v1 lines, see [`crate::wire`]) are routed to a fixed
//!   **shard** by `(n, scheme)` — every request for one key-material
//!   universe lands on the same worker thread, so shard state needs no
//!   locks.
//! * Each shard holds a bounded pool of **pre-warmed sessions** keyed by
//!   `(n, scheme, seed)`: the key distribution report, its interned
//!   [`PredicateTable`](crate::keys::PredicateTable), and a long-lived
//!   [`VerifyCache`] are established on first use and reused by every
//!   later request with the same key, with least-recently-used eviction
//!   past [`ServiceConfig::max_sessions`] entries per shard.
//! * Execution still goes through [`Cluster::run_with_keys`] on the
//!   request's own cluster configuration (engine, latency, schedule), so
//!   a service response's report is **byte-identical** to the same
//!   request executed via a direct [`Cluster::run`] — keydist and
//!   verification-cache reuse are invisible in the bytes, which the
//!   service integration tests assert.
//! * [`FdService::shutdown`] is a graceful drain: queued requests finish,
//!   workers join, and the final metrics snapshot is returned in the same
//!   JSON shape `lafd bench` records (`wall_us`/`messages`/`bytes` cells)
//!   plus service-level throughput: runs/sec, keydist reuse ratio, and
//!   p50/p99 request latency.
//!
//! [`Cluster::run`]: crate::runner::Cluster::run
//! [`Cluster::run_with_keys`]: crate::runner::Cluster::run_with_keys

use crate::keys::VerifyCache;
use crate::pool::{self, ShardWorkers};
use crate::runner::KeyDistReport;
use crate::spec::SpecBuilder;
use crate::wire;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Configuration of an [`FdService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker shards. Requests are routed by `(n, scheme)`, so two shards
    /// serve two disjoint key-material universes concurrently.
    pub shards: usize,
    /// Pre-warmed sessions kept per shard; the least-recently-used entry
    /// is evicted past this bound.
    pub max_sessions: usize,
}

impl Default for ServiceConfig {
    /// Two shards, eight sessions each — the shape of the acceptance
    /// benchmark.
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            max_sessions: 8,
        }
    }
}

/// One queued request: a validated builder plus the reply channel.
struct Job {
    builder: SpecBuilder,
    id: Option<String>,
    reply: mpsc::Sender<String>,
}

/// A pre-warmed session slot: everything reusable across runs that share
/// `(n, scheme, seed)`.
struct PooledSession {
    /// The established key distribution (`None` until a key-needing
    /// protocol first arrives — key-free traffic never pays for one).
    keydist: Option<KeyDistReport>,
    keydist_messages: Option<usize>,
    key_allocs: usize,
    /// Long-lived verification cache shared by every run in this slot.
    cache: VerifyCache,
    /// LRU clock value of the most recent use.
    last_used: u64,
}

/// One aggregated `protocol × n × t × engine × scheme` metrics cell —
/// the service analogue of a `lafd bench` results row.
#[derive(Debug, Default, Clone)]
struct Cell {
    runs: usize,
    wall_us: u128,
    messages: usize,
    bytes: usize,
    comm_rounds: usize,
    key_allocs: usize,
}

/// Per-shard counters, written only by the shard's worker thread.
#[derive(Debug, Default)]
struct ShardStats {
    runs: usize,
    errors: usize,
    keydist_runs: usize,
    keydist_reused: usize,
    evictions: usize,
    latencies_us: Vec<u64>,
    cells: BTreeMap<(String, usize, usize, String, String), Cell>,
}

/// The sharded session service: see the module docs for the shape.
///
/// ```
/// use fd_core::service::{FdService, ServiceConfig};
/// use fd_core::spec::{Protocol, SpecBuilder};
/// use fd_core::wire;
///
/// let service = FdService::start(ServiceConfig::default());
/// let request = wire::request_to_json(
///     &SpecBuilder::new(Protocol::ChainFd, 6).with_input(b"v".to_vec()),
///     Some("r0"),
/// )
/// .unwrap();
/// let response = wire::response_from_json(&service.submit_line(&request)).unwrap();
/// assert!(response.report.unwrap().all_decided(b"v"));
/// let metrics = service.shutdown();
/// assert!(metrics.contains("\"runs_per_sec\""));
/// ```
pub struct FdService {
    workers: ShardWorkers<Job>,
    stats: Arc<Vec<Mutex<ShardStats>>>,
    /// Errors rejected before reaching a shard (parse/validation).
    front_errors: AtomicUsize,
    started: Instant,
}

impl FdService {
    /// Start the worker shards (empty session pools — sessions pre-warm
    /// on first use and stay warm).
    pub fn start(config: ServiceConfig) -> FdService {
        let shards = config.shards.max(1);
        let max_sessions = config.max_sessions.max(1);
        let stats: Arc<Vec<Mutex<ShardStats>>> = Arc::new(
            (0..shards)
                .map(|_| Mutex::new(ShardStats::default()))
                .collect(),
        );
        let workers = ShardWorkers::spawn(shards, |shard| {
            let stats = Arc::clone(&stats);
            let mut sessions: HashMap<(usize, String, u64), PooledSession> = HashMap::new();
            let mut clock: u64 = 0;
            move |job: Job| {
                let response = catch_unwind(AssertUnwindSafe(|| {
                    execute(
                        &mut sessions,
                        &mut clock,
                        max_sessions,
                        shard,
                        &stats[shard],
                        &job.builder,
                        job.id.as_deref(),
                    )
                }))
                .unwrap_or_else(|_| {
                    stats[shard].lock().expect("shard stats poisoned").errors += 1;
                    wire::error_to_json(job.id.as_deref(), "internal: run panicked")
                });
                // A gone client is not the worker's problem.
                let _ = job.reply.send(response);
            }
        });
        FdService {
            workers,
            stats,
            front_errors: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// The shard a `(n, scheme)` pair routes to (FNV-1a over both).
    pub fn shard_of(&self, n: usize, scheme: &str) -> usize {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for &b in scheme.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        for b in (n as u64).to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        (h % self.workers.shards() as u64) as usize
    }

    /// Handle one wire-v1 request line end to end: parse, validate, route
    /// to the owning shard, execute, and return the response line.
    /// Malformed or invalid requests are answered (never dropped) with a
    /// wire error response.
    pub fn submit_line(&self, line: &str) -> String {
        let (builder, id) = match wire::request_from_json(line.trim()) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.front_errors.fetch_add(1, Ordering::Relaxed);
                return wire::error_to_json(None, &e);
            }
        };
        // Validate up front so a shard worker can never hit a `Cluster`
        // panic on a bad request shape.
        if let Err(e) = builder.validate() {
            self.front_errors.fetch_add(1, Ordering::Relaxed);
            return wire::error_to_json(id.as_deref(), &e);
        }
        let shard = self.shard_of(builder.n, &builder.scheme);
        let (reply, receiver) = mpsc::channel();
        if let Err(e) = self.workers.submit(
            shard,
            Job {
                builder,
                id: id.clone(),
                reply,
            },
        ) {
            self.front_errors.fetch_add(1, Ordering::Relaxed);
            return wire::error_to_json(id.as_deref(), &e);
        }
        receiver
            .recv()
            .unwrap_or_else(|_| wire::error_to_json(id.as_deref(), "worker dropped the request"))
    }

    /// Handle a batch of request lines from `clients` concurrent client
    /// threads, returning responses in input order (the stdin batch mode
    /// of `lafd serve`, and the concurrency test harness).
    pub fn submit_batch(&self, lines: &[String], clients: usize) -> Vec<String> {
        pool::parallel_indexed(lines.len(), clients.max(1), |i| self.submit_line(&lines[i]))
    }

    /// A live metrics snapshot: service-level throughput plus the
    /// bench-shaped per-cell rows (see `metrics_json` below for the format).
    pub fn metrics_json(&self) -> String {
        metrics_json(
            &self.stats,
            self.front_errors.load(Ordering::Relaxed),
            self.started.elapsed().as_micros(),
        )
    }

    /// Graceful drain: stop accepting requests, finish everything queued,
    /// join the workers, and return the final metrics snapshot.
    pub fn shutdown(self) -> String {
        let elapsed = self.started.elapsed().as_micros();
        self.workers.join();
        metrics_json(
            &self.stats,
            self.front_errors.load(Ordering::Relaxed),
            elapsed,
        )
    }
}

/// Execute one validated request on its shard (runs on the shard's worker
/// thread; `sessions` and `clock` are that thread's own state).
fn execute(
    sessions: &mut HashMap<(usize, String, u64), PooledSession>,
    clock: &mut u64,
    max_sessions: usize,
    shard: usize,
    stats: &Mutex<ShardStats>,
    builder: &SpecBuilder,
    id: Option<&str>,
) -> String {
    let started = Instant::now();
    let (cluster, spec) = match builder.build() {
        Ok(pair) => pair,
        Err(e) => {
            stats.lock().expect("shard stats poisoned").errors += 1;
            return wire::error_to_json(id, &e);
        }
    };
    *clock += 1;
    let key = (builder.n, builder.scheme.clone(), builder.seed);
    // Bounded pool: evict the least-recently-used slot before warming a
    // new one past the cap.
    let mut evicted = false;
    if !sessions.contains_key(&key) && sessions.len() >= max_sessions {
        if let Some(oldest) = sessions
            .iter()
            .min_by_key(|(_, slot)| slot.last_used)
            .map(|(k, _)| k.clone())
        {
            sessions.remove(&oldest);
            evicted = true;
        }
    }
    let slot = sessions.entry(key).or_insert_with(|| PooledSession {
        keydist: None,
        keydist_messages: None,
        key_allocs: 0,
        cache: VerifyCache::new(),
        last_used: 0,
    });
    slot.last_used = *clock;
    // The request executes on its *own* cluster configuration — only the
    // verification cache is swapped in from the pool, which cannot change
    // report bytes (content-addressed; see `VerifyCache`).
    let cluster = cluster.with_verify_cache(slot.cache.clone());
    let needs_keys = spec.protocol.needs_keys();
    let keydist_reused = needs_keys && slot.keydist.is_some();
    if needs_keys && slot.keydist.is_none() {
        let kd = cluster.setup_keydist();
        slot.keydist_messages = Some(kd.stats.messages_total);
        slot.key_allocs = kd
            .predicates
            .as_ref()
            .map_or(0, |table| table.distinct_allocations());
        slot.keydist = Some(kd);
    }
    let report = cluster.run_with_keys(
        &spec,
        if needs_keys {
            slot.keydist.as_ref()
        } else {
            None
        },
    );
    let wall_us = started.elapsed().as_micros() as u64;
    let keydist_messages = if needs_keys {
        slot.keydist_messages
    } else {
        None
    };
    let key_allocs = if needs_keys { slot.key_allocs } else { 0 };

    let mut s = stats.lock().expect("shard stats poisoned");
    s.runs += 1;
    if evicted {
        s.evictions += 1;
    }
    if keydist_reused {
        s.keydist_reused += 1;
    } else if needs_keys {
        s.keydist_runs += 1;
    }
    s.latencies_us.push(wall_us);
    let cell = s
        .cells
        .entry((
            builder.protocol.name().to_string(),
            builder.n,
            builder.resolved_t(),
            builder.engine.name().to_string(),
            builder.scheme.clone(),
        ))
        .or_default();
    cell.runs += 1;
    cell.wall_us += u128::from(wall_us);
    cell.messages += report.stats.messages_total;
    cell.bytes += report.stats.bytes_total;
    cell.comm_rounds = cell
        .comm_rounds
        .max(report.stats.per_round.iter().filter(|&&x| x > 0).count());
    cell.key_allocs = cell.key_allocs.max(key_allocs);
    drop(s);

    wire::response_to_json(
        id,
        shard,
        keydist_reused,
        keydist_messages,
        wall_us,
        &report.to_json(),
    )
}

/// The percentile entry of a sorted latency list (nearest-rank on the
/// sorted samples; 0 when empty).
fn percentile_us(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Render the service metrics document:
///
/// ```json
/// {"schema": "lafd-serve-v1",
///  "service": {"shards": 2, "runs": 200, "errors": 0,
///              "keydist_runs": 2, "keydist_reused": 120,
///              "keydist_reuse_pct": 98, "evictions": 0,
///              "wall_us": 123456, "runs_per_sec": 1620,
///              "p50_us": 180, "p99_us": 950},
///  "results": [ ...bench-shaped cells, plus "runs"... ]}
/// ```
///
/// The `results` rows carry the exact field set of a `lafd bench` cell
/// (`protocol`/`n`/`t`/`engine`/`scheme`/`wall_us`/`messages`/`bytes`/
/// `comm_rounds`/`key_allocs`) with `wall_us`, `messages`, and `bytes`
/// accumulated across the cell's runs and a trailing `runs` count, so the
/// bench regression tooling can parse them unchanged.
fn metrics_json(stats: &[Mutex<ShardStats>], front_errors: usize, elapsed_us: u128) -> String {
    let mut runs = 0usize;
    let mut errors = front_errors;
    let mut keydist_runs = 0usize;
    let mut keydist_reused = 0usize;
    let mut evictions = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    let mut cells: BTreeMap<(String, usize, usize, String, String), Cell> = BTreeMap::new();
    for shard in stats {
        let s = shard.lock().expect("shard stats poisoned");
        runs += s.runs;
        errors += s.errors;
        keydist_runs += s.keydist_runs;
        keydist_reused += s.keydist_reused;
        evictions += s.evictions;
        latencies.extend_from_slice(&s.latencies_us);
        for (key, cell) in &s.cells {
            let merged = cells.entry(key.clone()).or_default();
            merged.runs += cell.runs;
            merged.wall_us += cell.wall_us;
            merged.messages += cell.messages;
            merged.bytes += cell.bytes;
            merged.comm_rounds = merged.comm_rounds.max(cell.comm_rounds);
            merged.key_allocs = merged.key_allocs.max(cell.key_allocs);
        }
    }
    latencies.sort_unstable();
    let keyed = keydist_runs + keydist_reused;
    let reuse_pct = (keydist_reused * 100).checked_div(keyed).unwrap_or(0);
    let runs_per_sec = (runs as u128) * 1_000_000 / elapsed_us.max(1);
    let mut out = format!(
        "{{\n  \"schema\": \"lafd-serve-v1\",\n  \"service\": {{\"shards\": {}, \"runs\": {runs}, \
         \"errors\": {errors}, \"keydist_runs\": {keydist_runs}, \
         \"keydist_reused\": {keydist_reused}, \"keydist_reuse_pct\": {reuse_pct}, \
         \"evictions\": {evictions}, \"wall_us\": {elapsed_us}, \
         \"runs_per_sec\": {runs_per_sec}, \"p50_us\": {}, \"p99_us\": {}}},\n  \"results\": [\n",
        stats.len(),
        percentile_us(&latencies, 50),
        percentile_us(&latencies, 99),
    );
    let rows: Vec<String> = cells
        .iter()
        .map(|((protocol, n, t, engine, scheme), cell)| {
            format!(
                "    {{\"protocol\": \"{protocol}\", \"n\": {n}, \"t\": {t}, \
                 \"engine\": \"{engine}\", \"scheme\": \"{scheme}\", \"wall_us\": {}, \
                 \"messages\": {}, \"bytes\": {}, \"comm_rounds\": {}, \"key_allocs\": {}, \
                 \"runs\": {}}}",
                cell.wall_us,
                cell.messages,
                cell.bytes,
                cell.comm_rounds,
                cell.key_allocs,
                cell.runs
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Protocol;
    use crate::wire::Value;

    fn request(protocol: Protocol, n: usize, seed: u64, input: &[u8], id: &str) -> String {
        wire::request_to_json(
            &SpecBuilder::new(protocol, n)
                .with_seed(seed)
                .with_input(input.to_vec()),
            Some(id),
        )
        .unwrap()
    }

    #[test]
    fn one_keydist_per_session_key_across_many_runs() {
        let service = FdService::start(ServiceConfig::default());
        for k in 0..6u8 {
            let line = request(Protocol::ChainFd, 6, 7, &[k], &format!("r{k}"));
            let response = wire::response_from_json(&service.submit_line(&line)).unwrap();
            let report = response.report.unwrap();
            assert!(report.all_decided(&[k]));
            assert_eq!(
                response.keydist_reused,
                k > 0,
                "first run warms, rest reuse"
            );
            assert_eq!(
                response.keydist_messages,
                Some(crate::metrics::keydist_messages(6))
            );
        }
        let metrics = Value::parse(&service.shutdown()).unwrap();
        let svc = metrics.get("service").unwrap();
        assert_eq!(svc.get("runs").unwrap().as_int(), Some(6));
        assert_eq!(svc.get("keydist_runs").unwrap().as_int(), Some(1));
        assert_eq!(svc.get("keydist_reused").unwrap().as_int(), Some(5));
        assert_eq!(svc.get("errors").unwrap().as_int(), Some(0));
    }

    #[test]
    fn responses_are_byte_identical_to_direct_cluster_run() {
        let service = FdService::start(ServiceConfig::default());
        for (protocol, k) in [
            (Protocol::ChainFd, 0u8),
            (Protocol::FdToBa, 1),
            (Protocol::NonAuthFd, 2),
            (Protocol::Degradable, 3),
        ] {
            let builder = SpecBuilder::new(protocol, 7)
                .with_seed(11)
                .with_input(vec![k]);
            let line = wire::request_to_json(&builder, None).unwrap();
            let response = wire::response_from_json(&service.submit_line(&line)).unwrap();
            let (cluster, spec) = builder.build().unwrap();
            assert_eq!(
                response.report_json,
                cluster.run(&spec).to_json(),
                "{protocol} diverged from the direct path"
            );
        }
        service.shutdown();
    }

    #[test]
    fn bad_requests_get_error_responses_not_drops() {
        let service = FdService::start(ServiceConfig {
            shards: 1,
            max_sessions: 2,
        });
        // Parse error.
        let r = wire::response_from_json(&service.submit_line("{nope")).unwrap();
        assert!(r.report.is_err());
        // Validation error (inadmissible shape), id echoed.
        let bad = "{\"schema_version\": 1, \"id\": \"x\", \"protocol\": \"phase_king\", \
                   \"n\": 5, \"t\": 2, \"input\": \"00\"}";
        let r = wire::response_from_json(&service.submit_line(bad)).unwrap();
        assert_eq!(r.id.as_deref(), Some("x"));
        assert!(r.report.unwrap_err().contains("inadmissible"));
        let metrics = Value::parse(&service.shutdown()).unwrap();
        assert_eq!(
            metrics
                .get("service")
                .unwrap()
                .get("errors")
                .unwrap()
                .as_int(),
            Some(2)
        );
    }

    #[test]
    fn lru_eviction_bounds_the_pool() {
        let service = FdService::start(ServiceConfig {
            shards: 1,
            max_sessions: 2,
        });
        // Three distinct session keys (different seeds) through a
        // 2-session shard: the third warm-up evicts the first.
        for seed in [1u64, 2, 3] {
            let line = wire::request_to_json(
                &SpecBuilder::new(Protocol::ChainFd, 5)
                    .with_seed(seed)
                    .with_input(b"v".to_vec()),
                None,
            )
            .unwrap();
            let response = wire::response_from_json(&service.submit_line(&line)).unwrap();
            assert!(!response.keydist_reused);
        }
        // Seed 1 was evicted: running it again re-warms (keydist run #4).
        let line = wire::request_to_json(
            &SpecBuilder::new(Protocol::ChainFd, 5)
                .with_seed(1)
                .with_input(b"v".to_vec()),
            None,
        )
        .unwrap();
        let response = wire::response_from_json(&service.submit_line(&line)).unwrap();
        assert!(!response.keydist_reused, "evicted session re-warms");
        let metrics = Value::parse(&service.shutdown()).unwrap();
        let svc = metrics.get("service").unwrap();
        assert_eq!(svc.get("keydist_runs").unwrap().as_int(), Some(4));
        assert!(svc.get("evictions").unwrap().as_int().unwrap() >= 2);
    }

    #[test]
    fn batch_mode_preserves_input_order() {
        let service = FdService::start(ServiceConfig::default());
        let lines: Vec<String> = (0..12u8)
            .map(|k| request(Protocol::ChainFd, 5, 3, &[k], &format!("b{k}")))
            .collect();
        let responses = service.submit_batch(&lines, 4);
        assert_eq!(responses.len(), 12);
        for (k, line) in responses.iter().enumerate() {
            let response = wire::response_from_json(line).unwrap();
            assert_eq!(response.id.as_deref(), Some(format!("b{k}").as_str()));
            assert!(response.report.unwrap().all_decided(&[k as u8]));
        }
        service.shutdown();
    }
}
