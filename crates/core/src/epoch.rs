//! Key rotation: re-running local authentication in epochs.
//!
//! The paper's amortization argument (§6) assumes the one-time key
//! distribution serves "arbitrarily many" failure-discovery runs. A
//! long-lived deployment cannot quite do that: secret keys age (S3 is
//! computational, not information-theoretic), nodes get replaced, and
//! operational policy forces periodic re-keying. This module makes the
//! natural extension executable:
//!
//! * time is divided into **epochs**; each epoch `e` begins with a fresh
//!   run of the Fig. 1 key distribution protocol under fresh keys
//!   (deterministically derived from the cluster seed and `e`);
//! * all FD/BA runs within the epoch use that epoch's stores;
//! * signatures from one epoch are **worthless in another** — an old-key
//!   chain fails the new test predicates, so replays across a rotation are
//!   *discovered* (the Theorem 4 machinery needs no changes);
//! * the amortization account restarts every epoch:
//!   [`crate::metrics::cumulative_with_rotations`] gives the closed form,
//!   and rotation is worthwhile iff the epoch length `k` exceeds the
//!   crossover `k* ≈ 3n/(t+1)` of experiment F1.
//!
//! ```
//! use fd_core::epoch::EpochManager;
//! use fd_core::runner::Cluster;
//! use std::sync::Arc;
//!
//! let cluster = Cluster::new(5, 1, Arc::new(fd_crypto::SchnorrScheme::test_tiny()), 7);
//! let mut epochs = EpochManager::new(cluster);
//!
//! let e0 = epochs.rotate(); // epoch 0: 3n(n-1) messages
//! assert_eq!(e0.keydist.stats.messages_total, 60);
//! let run = epochs.run_round(b"within epoch 0".to_vec());
//! assert!(run.all_decided(b"within epoch 0"));
//!
//! epochs.rotate();          // epoch 1: fresh keys, old signatures dead
//! ```

use crate::runner::{Cluster, FdRunReport, KeyDistReport};
use crate::spec::{Protocol, RunSpec};
use fd_simnet::NodeId;

/// An epoch number. Epoch 0 is the first key distribution.
pub type Epoch = u32;

/// State of one completed epoch rotation.
#[derive(Debug)]
pub struct EpochState {
    /// The epoch this state belongs to.
    pub epoch: Epoch,
    /// The key distribution run that opened the epoch.
    pub keydist: KeyDistReport,
    /// FD runs executed so far in this epoch (for amortization accounting).
    pub runs: usize,
}

/// Drives a cluster through key-rotation epochs.
///
/// Each rotation derives a fresh per-epoch cluster (same `n`, `t`, scheme;
/// epoch-mixed seed, so every node's keypair changes) and runs the Fig. 1
/// key distribution. The manager keeps every epoch's state so tests can
/// check cross-epoch isolation.
#[derive(Debug)]
pub struct EpochManager {
    base: Cluster,
    epochs: Vec<EpochState>,
}

impl EpochManager {
    /// Wrap a base cluster configuration. No epoch is active until the
    /// first [`EpochManager::rotate`].
    pub fn new(base: Cluster) -> Self {
        EpochManager {
            base,
            epochs: Vec::new(),
        }
    }

    /// The cluster configuration of a given epoch (epoch-mixed seed).
    pub fn cluster_for(&self, epoch: Epoch) -> Cluster {
        let mut c = self.base.clone();
        // SplitMix-style mixing keeps epoch seeds far apart even for
        // adjacent epochs.
        c.seed = self
            .base
            .seed
            .wrapping_add((epoch as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
        c
    }

    /// The currently active epoch, if any rotation happened yet.
    pub fn current(&self) -> Option<&EpochState> {
        self.epochs.last()
    }

    /// All completed rotations, oldest first.
    pub fn history(&self) -> &[EpochState] {
        &self.epochs
    }

    /// Open the next epoch: generate fresh keys and run key distribution.
    /// Returns the new epoch's state.
    pub fn rotate(&mut self) -> &EpochState {
        let epoch = self.epochs.len() as Epoch;
        let cluster = self.cluster_for(epoch);
        let keydist = cluster.run_key_distribution();
        self.epochs.push(EpochState {
            epoch,
            keydist,
            runs: 0,
        });
        self.epochs.last().expect("just pushed")
    }

    /// Run one chain-FD round in the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if no epoch is active (call [`EpochManager::rotate`] first).
    pub fn run_round(&mut self, value: Vec<u8>) -> FdRunReport {
        assert!(!self.epochs.is_empty(), "no active epoch");
        let cluster = self.cluster_for(self.epochs.len() as Epoch - 1);
        let state = self.epochs.last_mut().expect("no active epoch");
        state.runs += 1;
        cluster.run_with_keys(
            &RunSpec::new(Protocol::ChainFd, value),
            Some(&state.keydist),
        )
    }

    /// Total messages spent so far across all rotations and runs, for
    /// comparison against [`crate::metrics::cumulative_with_rotations`].
    pub fn messages_spent(&self) -> usize {
        self.epochs
            .iter()
            .map(|e| {
                e.keydist.stats.messages_total
                    + e.runs * crate::metrics::chain_fd_messages(self.base.n)
            })
            .sum()
    }

    /// The keyring node `id` used in `epoch` (test support: lets the suite
    /// build cross-epoch replay attacks).
    pub fn keyring_for(&self, epoch: Epoch, id: NodeId) -> crate::keys::Keyring {
        self.cluster_for(epoch).keyring(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainMessage;
    use crate::metrics;
    use crate::outcome::DiscoveryReason;
    use std::sync::Arc;

    fn manager(n: usize, t: usize) -> EpochManager {
        EpochManager::new(Cluster::new(
            n,
            t,
            Arc::new(fd_crypto::SchnorrScheme::test_tiny()),
            99,
        ))
    }

    #[test]
    fn rotation_generates_fresh_keys() {
        let mut m = manager(5, 1);
        m.rotate();
        m.rotate();
        for i in 0..5u16 {
            let k0 = m.keyring_for(0, NodeId(i));
            let k1 = m.keyring_for(1, NodeId(i));
            assert_ne!(k0.pk, k1.pk, "node {i} key must change across epochs");
        }
    }

    #[test]
    fn each_epoch_costs_keydist_and_runs_work() {
        let mut m = manager(6, 1);
        for e in 0..3 {
            let state = m.rotate();
            assert_eq!(state.epoch, e);
            assert_eq!(
                state.keydist.stats.messages_total,
                metrics::keydist_messages(6)
            );
            for k in 0..4u8 {
                let run = m.run_round(vec![e as u8, k]);
                assert!(run.all_decided(&[e as u8, k]));
            }
        }
        assert_eq!(m.history().len(), 3);
        assert_eq!(
            m.messages_spent(),
            metrics::cumulative_with_rotations(6, 3, 4)
        );
    }

    #[test]
    fn cross_epoch_signature_is_discovered() {
        // A chain signed with epoch-0 keys presented to epoch-1 stores must
        // fail its test predicate — replays across rotations are discovered.
        let mut m = manager(4, 1);
        m.rotate();
        let old_ring = m.keyring_for(0, NodeId(0));
        m.rotate();
        let new_stores = &m.current().unwrap().keydist;
        let scheme = fd_crypto::SchnorrScheme::test_tiny();
        let stale =
            ChainMessage::originate(&scheme, &old_ring.sk, NodeId(0), b"replay".to_vec()).unwrap();
        let verdict = stale.verify(&scheme, new_stores.store(NodeId(1)), NodeId(0));
        assert_eq!(verdict, Err(DiscoveryReason::BadSignature));
    }

    #[test]
    fn old_epoch_stores_reject_new_epoch_keys_too() {
        // The isolation is symmetric.
        let mut m = manager(4, 1);
        m.rotate();
        m.rotate();
        let new_ring = m.keyring_for(1, NodeId(2));
        let old_stores = &m.history()[0].keydist;
        let scheme = fd_crypto::SchnorrScheme::test_tiny();
        let msg =
            ChainMessage::originate(&scheme, &new_ring.sk, NodeId(2), b"early".to_vec()).unwrap();
        assert!(msg
            .verify(&scheme, old_stores.store(NodeId(1)), NodeId(2))
            .is_err());
    }

    #[test]
    fn rotation_accounting_matches_closed_form() {
        // Rotating every k runs is worthwhile relative to the non-auth
        // baseline iff k exceeds the F1 crossover.
        let (n, t) = (8usize, 2usize);
        let k_star = metrics::amortization_crossover(n, t).unwrap();
        let epochs = 3usize;

        let long_epochs = metrics::cumulative_with_rotations(n, epochs, k_star + 5);
        let non_auth_same_runs = metrics::cumulative_non_auth(n, t, epochs * (k_star + 5));
        assert!(long_epochs < non_auth_same_runs, "long epochs amortize");

        let short_epochs = metrics::cumulative_with_rotations(n, epochs, 1);
        let non_auth_short = metrics::cumulative_non_auth(n, t, epochs);
        assert!(
            short_epochs > non_auth_short,
            "rotating every run wastes the setup"
        );
    }

    #[test]
    fn current_is_none_before_first_rotation() {
        let m = manager(4, 1);
        assert!(m.current().is_none());
        assert!(m.history().is_empty());
    }

    #[test]
    #[should_panic(expected = "no active epoch")]
    fn running_without_epoch_panics() {
        let mut m = manager(4, 1);
        let _ = m.run_round(b"v".to_vec());
    }
}
