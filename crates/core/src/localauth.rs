//! The key distribution protocol (paper Fig. 1) establishing **local
//! authentication**.
//!
//! Every node generates its own key pair and distributes the public test
//! predicate itself; a challenge–response exchange ensures a node can only
//! claim predicates whose secret key it actually holds:
//!
//! ```text
//! round 0:  P_i → all:   T_i                       (announce)
//! round 1:  P_i → P_j:   (P_i, P_j, r_j)           (challenge, fresh r_j)
//! round 2:  P_j → P_i:   { (P_i, P_j, r_j) }_{S_j} (signed response; P_j
//!                         signs iff the challenge named itself and the
//!                         actual challenger)
//! round 3:  P_i accepts T_j iff the response verifies under the announced
//!           T_j and echoes the exact nonce it issued.
//! ```
//!
//! Cost: `3·n·(n−1)` messages in 3 communication rounds (experiment T1).
//! The protocol makes **no assumption about the number of faulty nodes**;
//! a peer that misbehaves is simply never accepted into the local
//! [`KeyStore`]. After the protocol, properties G1 and G2 hold (Theorem 2).

use crate::keys::{KeyStore, Keyring, PredicateTable};
use fd_crypto::{PublicKey, Signature, SignatureScheme};
use fd_simnet::codec::{CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;
use std::sync::Arc;

/// Wire messages of the key distribution protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KdMsg {
    /// Round 0: the sender's claimed test predicate.
    Announce {
        /// Encoded public key (test predicate) bytes.
        pk: Vec<u8>,
    },
    /// Round 1: `(challenger, challenged, nonce)`.
    Challenge {
        /// Who issues the challenge.
        challenger: NodeId,
        /// Who must sign it.
        challenged: NodeId,
        /// Fresh random nonce.
        nonce: u64,
    },
    /// Round 2: the challenge triple, signed by the challenged node.
    Response {
        /// Echoed challenger name.
        challenger: NodeId,
        /// Echoed challenged name.
        challenged: NodeId,
        /// Echoed nonce.
        nonce: u64,
        /// Signature over the canonical challenge bytes.
        sig: Vec<u8>,
    },
}

const TAG_ANNOUNCE: u8 = 0x01;
const TAG_CHALLENGE: u8 = 0x02;
const TAG_RESPONSE: u8 = 0x03;

impl Encode for KdMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            KdMsg::Announce { pk } => {
                w.put_u8(TAG_ANNOUNCE);
                w.put_bytes(pk);
            }
            KdMsg::Challenge {
                challenger,
                challenged,
                nonce,
            } => {
                w.put_u8(TAG_CHALLENGE);
                challenger.encode(w);
                challenged.encode(w);
                w.put_u64(*nonce);
            }
            KdMsg::Response {
                challenger,
                challenged,
                nonce,
                sig,
            } => {
                w.put_u8(TAG_RESPONSE);
                challenger.encode(w);
                challenged.encode(w);
                w.put_u64(*nonce);
                w.put_bytes(sig);
            }
        }
    }
}

impl Decode for KdMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_ANNOUNCE => Ok(KdMsg::Announce {
                pk: r.get_bytes()?.to_vec(),
            }),
            TAG_CHALLENGE => Ok(KdMsg::Challenge {
                challenger: NodeId::decode(r)?,
                challenged: NodeId::decode(r)?,
                nonce: r.get_u64()?,
            }),
            TAG_RESPONSE => Ok(KdMsg::Response {
                challenger: NodeId::decode(r)?,
                challenged: NodeId::decode(r)?,
                nonce: r.get_u64()?,
                sig: r.get_bytes()?.to_vec(),
            }),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// Canonical bytes a challenged node signs: domain-separated
/// `(challenger, challenged, nonce)`.
pub fn challenge_bytes(challenger: NodeId, challenged: NodeId, nonce: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_raw(b"fd-la-challenge-v1");
    challenger.encode(&mut w);
    challenged.encode(&mut w);
    w.put_u64(nonce);
    w.into_bytes()
}

/// Anomalies observed during key distribution.
///
/// The protocol does not *discover failures* (it runs before any agreement
/// and tolerates arbitrarily many faults by simply not accepting keys), but
/// honest nodes record what they saw for diagnostics and experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KdAnomaly {
    /// Peer never announced a predicate.
    NoAnnounce(NodeId),
    /// Peer announced more than one predicate.
    DuplicateAnnounce(NodeId),
    /// Peer never answered the challenge.
    NoResponse(NodeId),
    /// Peer's response failed verification or echoed wrong data.
    BadResponse(NodeId),
    /// Peer sent a malformed or unexpected message.
    Protocol(NodeId),
}

/// Honest participant in the key distribution protocol (paper Fig. 1).
pub struct KeyDistNode {
    me: NodeId,
    n: usize,
    scheme: Arc<dyn SignatureScheme>,
    keyring: Keyring,
    /// Nonce source; deterministic per node per run.
    rng: fd_crypto::ChaChaDrbg,
    /// Shared predicate table for interning announcements (allocation
    /// optimization only; `None` keeps every candidate private).
    table: Option<Arc<PredicateTable>>,
    /// Candidate predicate per peer (from announcements); shared handles
    /// when the bytes matched the intern table.
    candidates: Vec<Option<Arc<PublicKey>>>,
    /// Nonce issued to each peer.
    issued: Vec<Option<u64>>,
    store: KeyStore,
    anomalies: Vec<KdAnomaly>,
    done: bool,
}

impl KeyDistNode {
    /// Create the honest automaton for node `me` of `n`.
    ///
    /// `run_seed` must be shared by the whole cluster run; nonces derive
    /// from `(run_seed, me)`.
    pub fn new(
        me: NodeId,
        n: usize,
        scheme: Arc<dyn SignatureScheme>,
        keyring: Keyring,
        run_seed: u64,
    ) -> Self {
        let mut material = Vec::new();
        material.extend_from_slice(b"keydist-nonce");
        material.extend_from_slice(&run_seed.to_be_bytes());
        material.extend_from_slice(&me.0.to_be_bytes());
        let mut store = KeyStore::new(n, me);
        // A node trivially accepts its own predicate.
        store.accept(me, keyring.pk.clone());
        KeyDistNode {
            me,
            n,
            scheme,
            keyring,
            rng: fd_crypto::ChaChaDrbg::from_seed_material(&material),
            table: None,
            candidates: vec![None; n],
            issued: vec![None; n],
            store,
            anomalies: Vec::new(),
            done: false,
        }
    }

    /// Attach the cluster's shared [`PredicateTable`]: announced predicate
    /// bytes that match the canonical key reuse its allocation (and the
    /// node's own predicate entry joins the sharing), so an honest run
    /// builds all `n` stores from `O(n)` distinct allocations. Announced
    /// bytes are stored verbatim either way — behaviour is unchanged.
    #[must_use]
    pub fn with_intern_table(mut self, table: Arc<PredicateTable>) -> Self {
        let own = table.intern(self.me, self.keyring.pk.0.clone());
        self.store.accept(self.me, own);
        self.table = Some(table);
        self
    }

    /// Intern announced predicate bytes through the table, if attached.
    fn intern(&self, node: NodeId, bytes: Vec<u8>) -> Arc<PublicKey> {
        match &self.table {
            Some(table) => table.intern(node, bytes),
            None => Arc::new(PublicKey(bytes)),
        }
    }

    /// The key store accumulated so far (complete after round 3).
    pub fn store(&self) -> &KeyStore {
        &self.store
    }

    /// Take ownership of the final key store and keyring.
    pub fn into_parts(self) -> (KeyStore, Keyring, Vec<KdAnomaly>) {
        (self.store, self.keyring, self.anomalies)
    }

    /// Anomalies recorded against misbehaving peers.
    pub fn anomalies(&self) -> &[KdAnomaly] {
        &self.anomalies
    }

    fn decode(&mut self, env: &Envelope) -> Option<KdMsg> {
        match KdMsg::decode_exact(&env.payload) {
            Ok(m) => Some(m),
            Err(_) => {
                self.anomalies.push(KdAnomaly::Protocol(env.from));
                None
            }
        }
    }
}

impl Node for KeyDistNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        match round {
            // Round 0: announce own test predicate to everyone.
            0 => {
                let msg = KdMsg::Announce {
                    pk: self.keyring.pk.0.clone(),
                }
                .encode_to_vec();
                out.broadcast(self.n, self.me, msg);
            }
            // Round 1: record announcements, challenge each announcer.
            1 => {
                for env in inbox {
                    let Some(msg) = self.decode(env) else {
                        continue;
                    };
                    let KdMsg::Announce { pk } = msg else {
                        self.anomalies.push(KdAnomaly::Protocol(env.from));
                        continue;
                    };
                    if self.candidates[env.from.index()].is_some() {
                        self.anomalies.push(KdAnomaly::DuplicateAnnounce(env.from));
                        // First announcement wins; later ones are ignored.
                        continue;
                    }
                    let interned = self.intern(env.from, pk);
                    self.candidates[env.from.index()] = Some(interned);
                    let nonce = self.rng.next_u64();
                    self.issued[env.from.index()] = Some(nonce);
                    out.send(
                        env.from,
                        KdMsg::Challenge {
                            challenger: self.me,
                            challenged: env.from,
                            nonce,
                        }
                        .encode_to_vec(),
                    );
                }
                for peer in NodeId::all(self.n) {
                    if peer != self.me && self.candidates[peer.index()].is_none() {
                        self.anomalies.push(KdAnomaly::NoAnnounce(peer));
                    }
                }
            }
            // Round 2: sign challenges that name me and the true challenger.
            2 => {
                for env in inbox {
                    let Some(msg) = self.decode(env) else {
                        continue;
                    };
                    let KdMsg::Challenge {
                        challenger,
                        challenged,
                        nonce,
                    } = msg
                    else {
                        self.anomalies.push(KdAnomaly::Protocol(env.from));
                        continue;
                    };
                    // Paper Fig. 1: sign iff the challenge contains both my
                    // own name and that of the (actual) challenger.
                    if challenged != self.me || challenger != env.from {
                        self.anomalies.push(KdAnomaly::Protocol(env.from));
                        continue;
                    }
                    let bytes = challenge_bytes(challenger, challenged, nonce);
                    let sig = self
                        .scheme
                        .sign(&self.keyring.sk, &bytes)
                        .expect("own keyring is well-formed");
                    out.send(
                        env.from,
                        KdMsg::Response {
                            challenger,
                            challenged,
                            nonce,
                            sig: sig.0,
                        }
                        .encode_to_vec(),
                    );
                }
            }
            // Round 3: verify responses, accept predicates.
            3 => {
                for env in inbox {
                    let Some(msg) = self.decode(env) else {
                        continue;
                    };
                    let KdMsg::Response {
                        challenger,
                        challenged,
                        nonce,
                        sig,
                    } = msg
                    else {
                        self.anomalies.push(KdAnomaly::Protocol(env.from));
                        continue;
                    };
                    let peer = env.from;
                    let (Some(candidate), Some(issued)) = (
                        self.candidates[peer.index()].clone(),
                        self.issued[peer.index()],
                    ) else {
                        self.anomalies.push(KdAnomaly::Protocol(peer));
                        continue;
                    };
                    let echoed_ok = challenger == self.me && challenged == peer && nonce == issued;
                    let bytes = challenge_bytes(self.me, peer, issued);
                    let sig_ok = self.scheme.verify(&candidate, &bytes, &Signature(sig));
                    if echoed_ok && sig_ok {
                        self.store.accept(peer, candidate);
                    } else {
                        self.anomalies.push(KdAnomaly::BadResponse(peer));
                    }
                }
                for peer in NodeId::all(self.n) {
                    if peer != self.me
                        && self.store.accepted(peer).is_none()
                        && self.candidates[peer.index()].is_some()
                        && !self
                            .anomalies
                            .iter()
                            .any(|a| matches!(a, KdAnomaly::BadResponse(p) if *p == peer))
                    {
                        self.anomalies.push(KdAnomaly::NoResponse(peer));
                    }
                }
                self.done = true;
            }
            _ => {
                for env in inbox {
                    self.anomalies.push(KdAnomaly::Protocol(env.from));
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for KeyDistNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("KeyDistNode")
            .field("me", &self.me)
            .field("accepted", &self.store.accepted_count())
            .field("anomalies", &self.anomalies.len())
            .finish()
    }
}

/// Number of automaton rounds the protocol needs (sends happen in rounds
/// 0–2; round 3 only receives), i.e. 3 communication rounds as the paper
/// counts them.
pub const KEYDIST_ROUNDS: u32 = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use fd_crypto::SchnorrScheme;
    use fd_simnet::SyncNetwork;

    fn run_honest(n: usize) -> Vec<KeyDistNode> {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                let ring = Keyring::generate(scheme.as_ref(), me, 42);
                Box::new(KeyDistNode::new(me, n, Arc::clone(&scheme), ring, 42)) as Box<dyn Node>
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(KEYDIST_ROUNDS);
        net.into_nodes()
            .into_iter()
            .map(|b| *b.into_any().downcast::<KeyDistNode>().expect("KeyDistNode"))
            .collect()
    }

    #[test]
    fn honest_run_accepts_everyone() {
        let nodes = run_honest(5);
        for node in &nodes {
            assert_eq!(node.store().accepted_count(), 5);
            assert!(node.anomalies().is_empty());
        }
    }

    #[test]
    fn message_count_is_3n_n_minus_1() {
        let n = 6;
        let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                let ring = Keyring::generate(scheme.as_ref(), me, 7);
                Box::new(KeyDistNode::new(me, n, Arc::clone(&scheme), ring, 7)) as Box<dyn Node>
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(KEYDIST_ROUNDS);
        assert_eq!(net.stats().messages_total, 3 * n * (n - 1));
        // Sends happen in exactly rounds 0,1,2: 3 communication rounds.
        assert_eq!(net.stats().per_round.iter().filter(|&&c| c > 0).count(), 3);
    }

    #[test]
    fn stores_agree_on_correct_nodes_g2() {
        let nodes = run_honest(4);
        for a in &nodes {
            for b in &nodes {
                for peer in NodeId::all(4) {
                    assert_eq!(
                        a.store().accepted(peer),
                        b.store().accepted(peer),
                        "stores disagree on {peer}"
                    );
                }
            }
        }
    }

    #[test]
    fn challenge_bytes_bind_names_and_nonce() {
        let base = challenge_bytes(NodeId(1), NodeId(2), 99);
        assert_ne!(base, challenge_bytes(NodeId(2), NodeId(1), 99));
        assert_ne!(base, challenge_bytes(NodeId(1), NodeId(2), 98));
        assert_ne!(base, challenge_bytes(NodeId(1), NodeId(3), 99));
    }

    #[test]
    fn msg_codec_round_trips() {
        for msg in [
            KdMsg::Announce { pk: vec![1, 2, 3] },
            KdMsg::Challenge {
                challenger: NodeId(1),
                challenged: NodeId(2),
                nonce: 0xdeadbeef,
            },
            KdMsg::Response {
                challenger: NodeId(1),
                challenged: NodeId(2),
                nonce: 7,
                sig: vec![9; 12],
            },
        ] {
            let bytes = msg.encode_to_vec();
            assert_eq!(KdMsg::decode_exact(&bytes).unwrap(), msg);
        }
        assert!(KdMsg::decode_exact(&[0xff, 0, 0]).is_err());
    }
}
