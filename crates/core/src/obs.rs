//! Zero-dependency observability: phase spans, counters, trace export.
//!
//! The paper's economics live in *phases* — keydist amortized across runs,
//! then per-round message and verification cost — so this module breaks a
//! run into exactly those phases and exports them in two shapes:
//!
//! * [`PhaseBreakdown`] — attached to
//!   [`FdRunReport::phases`](crate::runner::FdRunReport::phases) when a
//!   cluster runs with [`Cluster::with_obs`]; `None` by default and never
//!   serialized by `to_json`, so every byte-identical equivalence surface
//!   is untouched by tracing.
//! * [`RunTrace`] — assembled by [`Cluster::run_traced`]; renders to
//!   Chrome trace-event JSON (Perfetto-viewable) and to the
//!   inferno-compatible folded-stack format.
//!
//! # Determinism discipline
//!
//! The two engines keep different clocks and the trace honors that split:
//!
//! * **Sync engine** — no virtual clock exists, so spans carry monotonic
//!   *wall-clock microseconds* ([`SpanClock::WallMicros`]). Wall time is
//!   not deterministic and never feeds an equivalence surface.
//! * **Event engine** — spans carry *virtual ticks*
//!   ([`SpanClock::VirtualTicks`]), a pure function of the seed, latency
//!   model, and fault plan. Traces are byte-identical across runs and
//!   machines for a fixed spec; every wall-clock-derived field (verify
//!   timing, report-assembly time, total wall) is omitted from the
//!   exported bytes so the determinism contract survives export.

use crate::runner::{Cluster, FdRunReport, KeyDistReport};
use crate::spec::RunSpec;
use fd_simnet::event::TICKS_PER_ROUND;
use fd_simnet::Engine;
use std::time::Instant;

/// Which clock produced a trace's timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanClock {
    /// Monotonic wall-clock microseconds (sync engine; not deterministic).
    WallMicros,
    /// Deterministic virtual ticks (event engine;
    /// [`TICKS_PER_ROUND`] per round).
    VirtualTicks,
}

impl SpanClock {
    /// The clock an engine's round marks are measured in.
    pub fn for_engine(engine: Engine) -> Self {
        match engine {
            Engine::Sync => SpanClock::WallMicros,
            Engine::Event => SpanClock::VirtualTicks,
        }
    }

    /// Stable lowercase name used in exported traces.
    pub fn name(self) -> &'static str {
        match self {
            SpanClock::WallMicros => "wall_us",
            SpanClock::VirtualTicks => "virtual_ticks",
        }
    }
}

/// Phase-attributed breakdown of one run, recorded when the cluster ran
/// with [`Cluster::with_obs`].
///
/// The engine fills the round structure during the drive; the dispatch
/// layer adds cache and predicate-table counters; [`Cluster::run_traced`]
/// adds the wall-clock phase envelope (keydist / run / report).
#[derive(Debug, Clone)]
pub struct PhaseBreakdown {
    /// Clock of [`PhaseBreakdown::round_marks`].
    pub clock: SpanClock,
    /// End-of-round timestamps, one per executed round, measured from the
    /// start of the round loop in [`PhaseBreakdown::clock`] units.
    pub round_marks: Vec<u64>,
    /// Peak delivery-queue depth observed at round boundaries.
    pub max_queue_depth: u64,
    /// Event-engine deliveries routed through the flat round-boundary
    /// ring (the fast path); 0 on the sync engine.
    pub ring_enqueued: u64,
    /// Event-engine deliveries routed through the binary-heap fallback
    /// (out-of-band timing, or all of them under the reference
    /// scheduler); 0 on the sync engine.
    pub heap_enqueued: u64,
    /// High-water mark of the per-node arena inbox (peak envelopes
    /// assembled for a single `on_round` call); 0 on the sync engine.
    pub arena_hwm: u64,
    /// Wall-clock µs spent inside signature-predicate evaluations on the
    /// verify-cache miss path (0 when no evaluation ran).
    pub verify_us: u64,
    /// Verify-cache hits during this run (signature + chain level).
    pub cache_hits: u64,
    /// Verify-cache misses during this run (= evaluations executed).
    pub cache_misses: u64,
    /// Predicate-table intern calls that reused a shared allocation.
    pub interned: u64,
    /// Predicate-table intern calls that allocated privately.
    pub fresh: u64,
    /// Wall-clock µs of the setup-phase key distribution, when one ran
    /// under [`Cluster::run_traced`] (`None` for key-free protocols or
    /// when only [`Cluster::with_obs`] was used).
    pub keydist_us: Option<u64>,
    /// Rounds the key distribution executed (0 when none ran).
    pub keydist_rounds: u32,
    /// Total wall-clock µs of keydist + run + report assembly, when
    /// measured by [`Cluster::run_traced`].
    pub wall_us: Option<u64>,
}

impl PhaseBreakdown {
    /// Build the engine-level skeleton from a drive's recorded marks;
    /// `None` when the drive ran without observability.
    pub(crate) fn from_drive(
        engine: Engine,
        round_marks: Option<Vec<u64>>,
        max_queue_depth: Option<usize>,
        sched: Option<fd_simnet::SchedCounters>,
    ) -> Option<Self> {
        round_marks.map(|marks| PhaseBreakdown {
            clock: SpanClock::for_engine(engine),
            round_marks: marks,
            max_queue_depth: max_queue_depth.unwrap_or(0) as u64,
            ring_enqueued: sched.map_or(0, |s| s.ring_enqueued),
            heap_enqueued: sched.map_or(0, |s| s.heap_enqueued),
            arena_hwm: sched.map_or(0, |s| s.arena_hwm as u64),
            verify_us: 0,
            cache_hits: 0,
            cache_misses: 0,
            interned: 0,
            fresh: 0,
            keydist_us: None,
            keydist_rounds: 0,
            wall_us: None,
        })
    }

    /// Per-round durations in [`PhaseBreakdown::clock`] units (differences
    /// of consecutive round marks).
    pub fn per_round(&self) -> Vec<u64> {
        let mut prev = 0;
        self.round_marks
            .iter()
            .map(|&mark| {
                let d = mark.saturating_sub(prev);
                prev = mark;
                d
            })
            .collect()
    }

    /// Verify-cache hit ratio in integer percent, or `None` when the run
    /// never consulted the cache.
    pub fn cache_hit_ratio_pct(&self) -> Option<u64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits * 100 / total)
    }

    /// Share of event-engine deliveries that took the flat-ring fast path,
    /// in integer percent; `None` when the run scheduled no deliveries
    /// (sync engine, or an empty run).
    pub fn ring_ratio_pct(&self) -> Option<u64> {
        let total = self.ring_enqueued + self.heap_enqueued;
        (total > 0).then(|| self.ring_enqueued * 100 / total)
    }
}

/// One named span on a trace timeline, in the trace's clock units.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span name (`keydist`, `round:12`, `assemble`, `report`, `verify`).
    pub name: String,
    /// Start timestamp.
    pub start: u64,
    /// Duration.
    pub dur: u64,
}

/// One counter sample exported with a trace.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Stable counter name.
    pub name: &'static str,
    /// Sampled value at the end of the run.
    pub value: u64,
}

/// A full phase trace of one run, ready for export.
///
/// The `spans` tile the run timeline without overlap, so their durations
/// sum to the run's total extent in the trace clock; `attributed` spans
/// (currently just `verify`) re-attribute time already counted inside the
/// round spans and live on a separate track.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Clock of every timestamp in this trace.
    pub clock: SpanClock,
    /// Protocol name (wire form, e.g. `dolev_strong`).
    pub protocol: String,
    /// System size.
    pub n: usize,
    /// Engine name (`sync` or `event`).
    pub engine: &'static str,
    /// Cluster seed.
    pub seed: u64,
    /// Non-overlapping phase spans tiling the timeline.
    pub spans: Vec<Span>,
    /// Attribution spans on a separate track (subsets of phase time).
    pub attributed: Vec<Span>,
    /// End-of-run counter samples.
    pub counters: Vec<CounterSample>,
    /// Total wall-clock µs (only on the wall clock; omitted from
    /// deterministic virtual-tick exports).
    pub wall_us: Option<u64>,
}

impl RunTrace {
    /// Sum of the tiling phase-span durations — equals the traced extent
    /// of the run in clock units.
    pub fn span_total(&self) -> u64 {
        self.spans.iter().map(|s| s.dur).sum()
    }

    /// Render as Chrome trace-event JSON (the `traceEvents` array format
    /// Perfetto and `chrome://tracing` load directly). Deterministic
    /// field order; on the virtual-tick clock the bytes are a pure
    /// function of the run spec and seed.
    pub fn to_chrome_json(&self) -> String {
        let mut s = String::from("{\"traceEvents\": [");
        let mut first = true;
        let mut push_event = |s: &mut String, body: String| {
            if !first {
                s.push_str(",\n");
            } else {
                s.push('\n');
                first = false;
            }
            s.push_str(&body);
        };
        for (tid, span) in self
            .spans
            .iter()
            .map(|sp| (0, sp))
            .chain(self.attributed.iter().map(|sp| (1, sp)))
        {
            push_event(
                &mut s,
                format!(
                    "{{\"name\": \"{}\", \"cat\": \"phase\", \"ph\": \"X\", \"pid\": 1, \
                     \"tid\": {}, \"ts\": {}, \"dur\": {}}}",
                    span.name, tid, span.start, span.dur
                ),
            );
        }
        let end = self
            .spans
            .iter()
            .map(|sp| sp.start + sp.dur)
            .max()
            .unwrap_or(0);
        for counter in &self.counters {
            push_event(
                &mut s,
                format!(
                    "{{\"name\": \"{}\", \"cat\": \"counter\", \"ph\": \"C\", \"pid\": 1, \
                     \"tid\": 0, \"ts\": {}, \"args\": {{\"value\": {}}}}}",
                    counter.name, end, counter.value
                ),
            );
        }
        s.push_str("\n], \"displayTimeUnit\": \"ms\", \"otherData\": {");
        s.push_str(&format!(
            "\"clock\": \"{}\", \"protocol\": \"{}\", \"n\": {}, \"engine\": \"{}\", \
             \"seed\": {}",
            self.clock.name(),
            self.protocol,
            self.n,
            self.engine,
            self.seed
        ));
        if let Some(wall) = self.wall_us {
            s.push_str(&format!(", \"wall_us\": {wall}"));
        }
        s.push_str("}}");
        s
    }

    /// Render as inferno-compatible folded stacks (`frame;frame weight`
    /// per line), for `inferno-flamegraph` or any FlameGraph-format tool.
    pub fn to_folded(&self) -> String {
        let mut s = String::new();
        for span in &self.spans {
            let frame = match span.name.as_str() {
                name if name.starts_with("round:") => format!("run;{name}"),
                "assemble" => "run;assemble".to_string(),
                name => name.to_string(),
            };
            s.push_str(&format!("lafd;{} {}\n", frame, span.dur));
        }
        for span in &self.attributed {
            s.push_str(&format!("lafd;{} {}\n", span.name, span.dur));
        }
        s
    }
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

impl Cluster {
    /// Execute one spec end to end with observability on, returning the
    /// report (with [`FdRunReport::phases`] populated) and a [`RunTrace`]
    /// ready for Chrome/folded export.
    ///
    /// The trace clock follows the engine: wall-clock microseconds on the
    /// sync engine (phase spans tile the measured wall time), virtual
    /// ticks on the event engine (byte-deterministic for a fixed seed —
    /// wall-derived spans are omitted there).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Cluster::run`].
    pub fn run_traced(&self, spec: &RunSpec) -> (FdRunReport, RunTrace) {
        let cluster = self.clone().with_obs();
        let kd_start = Instant::now();
        let keydist = cluster.keydist_for(spec.protocol);
        let kd_us = elapsed_us(kd_start);
        let run_start = Instant::now();
        let mut report = cluster.run_with_keys(spec, keydist.as_ref());
        let run_us = elapsed_us(run_start);
        // Report assembly: rendering the deterministic JSON the CLI and
        // service emit. Measured on a throwaway render so the phase
        // exists even when the caller never serializes.
        let asm_start = Instant::now();
        let _ = report.to_json();
        let asm_us = elapsed_us(asm_start);

        let kd_rounds = keydist.as_ref().map_or(0, |kd| kd.stats.rounds);
        if let Some(phases) = report.phases.as_mut() {
            phases.keydist_us = keydist.as_ref().map(|_| kd_us);
            phases.keydist_rounds = kd_rounds;
            phases.wall_us = Some(kd_us + run_us + asm_us);
        }
        let trace = assemble_trace(
            &cluster,
            spec,
            &report,
            keydist.as_ref(),
            kd_us,
            run_us,
            asm_us,
        );
        (report, trace)
    }
}

/// Build the exportable trace from a traced run's measurements.
fn assemble_trace(
    cluster: &Cluster,
    spec: &RunSpec,
    report: &FdRunReport,
    keydist: Option<&KeyDistReport>,
    kd_us: u64,
    run_us: u64,
    asm_us: u64,
) -> RunTrace {
    let clock = SpanClock::for_engine(cluster.engine);
    let mut spans = Vec::new();
    let mut attributed = Vec::new();
    let (phases_marks, verify_us) = match &report.phases {
        Some(p) => (p.round_marks.clone(), p.verify_us),
        None => (Vec::new(), 0),
    };
    let mut cursor = 0u64;
    match clock {
        SpanClock::WallMicros => {
            if keydist.is_some() {
                spans.push(Span {
                    name: "keydist".to_string(),
                    start: 0,
                    dur: kd_us,
                });
                cursor = kd_us;
            }
            let run_base = cursor;
            let mut prev = 0u64;
            for (r, &mark) in phases_marks.iter().enumerate() {
                spans.push(Span {
                    name: format!("round:{r}"),
                    start: run_base + prev,
                    dur: mark.saturating_sub(prev),
                });
                prev = mark;
            }
            // The run phase also covers node construction (keyrings,
            // stores) and outcome extraction around the round loop.
            spans.push(Span {
                name: "assemble".to_string(),
                start: run_base + prev,
                dur: run_us.saturating_sub(prev),
            });
            spans.push(Span {
                name: "report".to_string(),
                start: run_base + run_us,
                dur: asm_us,
            });
            if verify_us > 0 {
                attributed.push(Span {
                    name: "verify".to_string(),
                    start: run_base,
                    dur: verify_us,
                });
            }
        }
        SpanClock::VirtualTicks => {
            // Deterministic timeline: keydist rounds then run rounds, all
            // in virtual ticks. Wall-derived spans (verify, report) are
            // deliberately absent — see the module docs.
            if let Some(kd) = keydist {
                let kd_ticks = u64::from(kd.stats.rounds) * TICKS_PER_ROUND;
                spans.push(Span {
                    name: "keydist".to_string(),
                    start: 0,
                    dur: kd_ticks,
                });
                cursor = kd_ticks;
            }
            let run_base = cursor;
            let mut prev = 0u64;
            for (r, &mark) in phases_marks.iter().enumerate() {
                spans.push(Span {
                    name: format!("round:{r}"),
                    start: run_base + prev,
                    dur: mark.saturating_sub(prev),
                });
                prev = mark;
            }
        }
    }
    let mut counters = Vec::new();
    if let Some(p) = &report.phases {
        counters.push(CounterSample {
            name: "verify_cache_hits",
            value: p.cache_hits,
        });
        counters.push(CounterSample {
            name: "verify_cache_misses",
            value: p.cache_misses,
        });
        counters.push(CounterSample {
            name: "predicates_interned",
            value: p.interned,
        });
        counters.push(CounterSample {
            name: "predicates_fresh",
            value: p.fresh,
        });
        counters.push(CounterSample {
            name: "max_queue_depth",
            value: p.max_queue_depth,
        });
        counters.push(CounterSample {
            name: "ring_enqueued",
            value: p.ring_enqueued,
        });
        counters.push(CounterSample {
            name: "heap_enqueued",
            value: p.heap_enqueued,
        });
        counters.push(CounterSample {
            name: "arena_hwm",
            value: p.arena_hwm,
        });
    }
    counters.push(CounterSample {
        name: "messages_total",
        value: report.stats.messages_total as u64,
    });
    counters.push(CounterSample {
        name: "bytes_total",
        value: report.stats.bytes_total as u64,
    });
    RunTrace {
        clock,
        protocol: spec.protocol.name().to_string(),
        n: cluster.n,
        engine: match cluster.engine {
            Engine::Sync => "sync",
            Engine::Event => "event",
        },
        seed: cluster.seed,
        spans,
        attributed,
        counters,
        wall_us: match clock {
            SpanClock::WallMicros => Some(kd_us + run_us + asm_us),
            SpanClock::VirtualTicks => None,
        },
    }
}
