//! The crate's shared fan-out primitives: an order-preserving scoped
//! thread pool over an indexed work list, and a long-lived sharded worker
//! pool for the session service.
//!
//! Both embarrassingly parallel layers — the scenario sweep
//! ([`crate::sweep::run_sweep`]) and the scheduler search's random
//! restarts ([`crate::schedsearch::run_search_parallel`]) — drain a shared
//! atomic counter and write results into their original slots, so the
//! output order (and therefore every derived report byte) is identical
//! for any worker count. The service ([`crate::service`]) instead needs
//! *sticky* routing — every job for one shard must execute on that
//! shard's single thread, which is what makes per-shard session state
//! lock-free — so it runs on [`ShardWorkers`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread::JoinHandle;

/// Compute `f(0..count)` across `threads` workers, returning the results
/// in index order. `f` must be a pure function of its index for the
/// output to be thread-count invariant — which every caller's determinism
/// test asserts.
///
/// # Panics
///
/// Panics if a worker panicked (poisoning the slot mutex).
pub(crate) fn parallel_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(count.max(1));
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let result = f(index);
                slots.lock().expect("pool worker panicked")[index] = Some(result);
            });
        }
    });

    slots
        .into_inner()
        .expect("pool worker panicked")
        .into_iter()
        .map(|slot| slot.expect("every index produced a result"))
        .collect()
}

/// A fixed set of long-lived worker threads, one per shard, each draining
/// its own job queue in submission order.
///
/// Unlike [`parallel_indexed`] (scoped, transient, work-stealing), shard
/// workers are *sticky*: [`ShardWorkers::submit`] routes a job to one
/// specific worker, so all state that worker owns (the service's pooled
/// sessions) is accessed from a single thread without locking. Dropping
/// the senders — [`ShardWorkers::join`] — is the drain signal: each
/// worker finishes every job already queued, then exits.
pub(crate) struct ShardWorkers<J: Send + 'static> {
    // Senders are wrapped in a mutex so `submit` works through `&self`
    // from many client threads; the lock is held only to clone a handle.
    senders: Vec<Mutex<Option<mpsc::Sender<J>>>>,
    handles: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> ShardWorkers<J> {
    /// Spawn one worker thread per shard. `make_handler(shard)` builds the
    /// shard's job handler, which runs on that shard's thread for the
    /// worker's whole life (the handler owns the shard-local state).
    pub(crate) fn spawn<H>(shards: usize, mut make_handler: impl FnMut(usize) -> H) -> Self
    where
        H: FnMut(J) + Send + 'static,
    {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards.max(1) {
            let (tx, rx) = mpsc::channel::<J>();
            let mut handler = make_handler(shard);
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    handler(job);
                }
            }));
            senders.push(Mutex::new(Some(tx)));
        }
        ShardWorkers { senders, handles }
    }

    /// Number of shards.
    pub(crate) fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Queue a job on one shard's worker. Fails if the shard index is out
    /// of range or the pool is already draining.
    pub(crate) fn submit(&self, shard: usize, job: J) -> Result<(), String> {
        let slot = self
            .senders
            .get(shard)
            .ok_or_else(|| format!("shard {shard} out of range 0..{}", self.senders.len()))?;
        let sender = slot
            .lock()
            .expect("shard sender poisoned")
            .clone()
            .ok_or_else(|| format!("shard {shard} is draining"))?;
        sender
            .send(job)
            .map_err(|_| format!("shard {shard} worker is gone"))
    }

    /// Graceful drain: stop accepting jobs, let every worker finish its
    /// queue, and join the threads.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked (handlers are expected to catch
    /// their own unwinds and answer with an error instead).
    pub(crate) fn join(self) {
        for slot in &self.senders {
            *slot.lock().expect("shard sender poisoned") = None;
        }
        for handle in self.handles {
            handle.join().expect("shard worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_workers_route_sticky_and_drain_cleanly() {
        let results: std::sync::Arc<Mutex<Vec<(usize, usize)>>> =
            std::sync::Arc::new(Mutex::new(Vec::new()));
        let workers = ShardWorkers::spawn(3, |shard| {
            let results = std::sync::Arc::clone(&results);
            move |job: usize| results.lock().unwrap().push((shard, job))
        });
        for job in 0..30 {
            workers.submit(job % 3, job).unwrap();
        }
        assert!(workers.submit(7, 0).is_err(), "out-of-range shard");
        workers.join();
        let seen = results.lock().unwrap();
        assert_eq!(seen.len(), 30, "drain waited for every queued job");
        // Sticky routing: every job landed on the shard it was sent to.
        for &(shard, job) in seen.iter() {
            assert_eq!(job % 3, shard);
        }
    }

    #[test]
    fn preserves_index_order_for_any_worker_count() {
        let serial = parallel_indexed(37, 1, |i| i * i);
        for threads in [2, 4, 16, 64] {
            assert_eq!(parallel_indexed(37, threads, |i| i * i), serial);
        }
    }

    #[test]
    fn empty_and_single_item_lists_work() {
        assert_eq!(parallel_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_indexed(1, 4, |i| i + 1), vec![1]);
    }
}
